#!/usr/bin/env python3
"""Quickstart: run a few rounds of the paper's urban testbed.

Builds the Fig. 2 scenario (one AP in an office window, three cars
lapping the block at ~20 km/h), runs five rounds, and prints the Table-1
style loss summary — showing the headline result: Cooperative ARQ
roughly halves residual packet loss at zero AP-airtime cost.

Run:  python examples/quickstart.py
"""

from repro import paper_testbed_config, run_urban_experiment
from repro.analysis import compute_table1, optimality_gap, render_table1
from repro.experiments import PAPER_TABLE1


def main() -> None:
    config = paper_testbed_config(rounds=5)
    print(f"Running {config.rounds} rounds of the urban testbed …")
    result = run_urban_experiment(config)

    rows = compute_table1(result.matrices_by_round())
    print()
    print(render_table1(rows, paper_reference=PAPER_TABLE1))

    print()
    for car, row in sorted(rows.items()):
        gap = optimality_gap(result.matrices_for_flow(car))
        print(
            f"car {car}: cooperation removed {row.loss_reduction_pct:.0f}% of "
            f"losses; optimality gap vs the platoon's joint reception: {gap:.3f}"
        )
    print(
        "\nA gap near zero means each car recovered essentially every packet "
        "that any platoon member received — the paper's 'virtual car' result."
    )


if __name__ == "__main__":
    main()
