#!/usr/bin/env python3
"""Highway drive-thru: losses vs speed, with and without cooperation.

Reproduces the paper's motivation scenario (after Ott & Kutscher [1]):
a three-car platoon passes a road-side AP at highway speed using the
lossy 11 Mb/s rate.  Losses around 50–60 % grow with speed; the
Cooperative-ARQ phase in the dark area behind the AP claws a share back
(using the §3.3 batched-REQUEST optimisation — at highway scale the
missing lists are hundreds of packets long).

Run:  python examples/highway_platoon.py
"""

from repro.experiments.highway import HighwayConfig
from repro.experiments.sweeps import speed_sweep
from repro.units import kmh_to_ms, ms_to_kmh


def main() -> None:
    config = HighwayConfig(rounds=3, seed=101)
    speeds = [kmh_to_ms(v) for v in (40.0, 80.0, 120.0)]
    print("Sweeping drive-thru speed (3 rounds each) …\n")
    points = speed_sweep(config, speeds)

    print(f"{'speed':>10} {'pkts in window':>15} {'lost before':>12} "
          f"{'lost after':>11} {'coop gain':>10}")
    for point in points:
        print(
            f"{ms_to_kmh(point.parameter):>7.0f} km/h "
            f"{point.tx_by_ap_mean:>15.0f} "
            f"{100 * point.lost_before_fraction:>11.1f}% "
            f"{100 * point.lost_after_fraction:>10.1f}% "
            f"{100 * point.reduction_fraction:>9.0f}%"
        )

    print(
        "\nThe contact window shrinks roughly as 1/speed while the loss "
        "fraction worsens — the regime that motivates delay-tolerant "
        "cooperative recovery between infostations."
    )


if __name__ == "__main__":
    main()
