#!/usr/bin/env python3
"""Table-1 comparison as one paired-seed campaign over the mode axis.

The paper's evaluation is comparative: C-ARQ against no cooperation,
persistent in-coverage ARQ, and epidemic relaying.  Since the protocol is
just the ``mode`` field of the scenario configuration, the whole
comparison is a single campaign with ``mode`` as a grid axis — every arm
shares the campaign seed, so all four protocols see the same
trajectories and the same channel realisation structure.

Run:  python examples/protocol_comparison.py
"""

from repro.campaign import (
    CampaignSpec,
    MemoryStore,
    config_to_dict,
    run_campaign,
    sweep_points,
)
from repro.experiments.scenario import UrbanScenarioConfig
from repro.scenarios import PROTOCOL_MODES, get_scenario


def main() -> None:
    base = UrbanScenarioConfig(seed=2008, round_duration_s=85.0)
    spec = CampaignSpec.from_dict(
        {
            "name": "protocol-comparison",
            "scenario": "urban",
            "seed": base.seed,
            "rounds": 5,
            "base": config_to_dict(base),
            "axes": [
                {
                    "name": "mode",
                    "points": [
                        {"label": mode, "overrides": {"mode": mode}}
                        for mode in PROTOCOL_MODES
                    ],
                }
            ],
        }
    )
    print("Running 5 paired rounds per protocol mode …\n")
    store = MemoryStore()
    run_campaign(spec, store, workers=1)

    plugin = get_scenario(spec.scenario)
    print(plugin.report_header)
    for point in sweep_points(store, spec):
        print(plugin.report_line(point))

    print(
        "\nSame seeds in every arm: the before-coop columns differ only "
        "through each protocol's own airtime, and the after-coop column "
        "is the protocol's contribution.  The in-coverage ARQ baseline "
        "folds its gain into the before column (retransmissions are "
        "direct receptions), while epidemic relaying trades much higher "
        "vehicle airtime for its recovery — run "
        "benchmarks/bench_overhead_epidemic.py for the overhead side."
    )


if __name__ == "__main__":
    main()
