#!/usr/bin/env python3
"""Future-work study (§6): cooperator-selection strategies.

The prototype enlists every one-hop neighbour as a cooperator.  With a
five-car platoon this script compares that against keeping only the two
strongest neighbours (by mean HELLO RSSI) and a random-two control,
showing the trade-off the paper leaves open: fewer cooperators means
fewer responder transmissions but less reception diversity to draw on —
and "strongest RSSI" favours the *nearest* cars, whose losses are the
most correlated with yours, so BestK is not automatically better than
random selection.

Run:  python examples/cooperator_selection.py
"""

from dataclasses import replace

import numpy as np

from repro.analysis import compute_table1
from repro.core.selection import AllNeighbors, BestK, RandomK
from repro.experiments import paper_testbed_config, run_urban_experiment

ROUNDS = 4


def run(strategy, label):
    base = paper_testbed_config(seed=321, rounds=ROUNDS)
    config = replace(
        base,
        platoon=replace(
            base.platoon,
            n_cars=5,
            driver_styles=("normal", "timid", "aggressive", "normal", "timid"),
        ),
        carq=replace(base.carq, selection=strategy),
    )
    result = run_urban_experiment(config)
    rows = compute_table1(result.matrices_by_round())
    after = sum(r.lost_after_pct for r in rows.values()) / len(rows)
    responses = sum(
        stats.responses_sent
        for outcome in result.rounds
        for stats in outcome.stats.values()
    ) / ROUNDS
    print(f"{label:<28} loss after coop {after:5.1f}%   "
          f"responder frames/round {responses:5.0f}")


def main() -> None:
    print(f"Five-car platoon, {ROUNDS} rounds per strategy …\n")
    run(AllNeighbors(), "all neighbours (paper)")
    run(BestK(2), "best-2 by HELLO RSSI")
    run(RandomK(2, np.random.default_rng(7)), "random-2 (control)")


if __name__ == "__main__":
    main()
