#!/usr/bin/env python3
"""The full paper experiment: Table 1 and ASCII renderings of Figs 3–8.

Runs the urban testbed for a configurable number of rounds (default 15;
the paper used 30) and regenerates every evaluation artifact:

* Table 1 — per-car packets transmitted / lost before / lost after;
* Figures 3–5 — P(reception) per packet number of each car's flow, at
  all three cars, with Region I/II/III boundaries;
* Figures 6–8 — after-cooperation vs joint reception (near-optimality).

Run:  python examples/urban_testbed.py [rounds]
"""

import sys

from repro import paper_testbed_config, run_urban_experiment
from repro.analysis import (
    ascii_plot,
    compute_table1,
    coop_curves,
    estimate_regions,
    optimality_gap,
    reception_curves,
    render_table1,
)
from repro.experiments import PAPER_TABLE1
from repro.mac.frames import NodeId

CARS = [NodeId(1), NodeId(2), NodeId(3)]
NAMES = {car: f"car {car}" for car in CARS}


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    print(f"Simulating {rounds} rounds of the Fig. 2 urban loop …\n")
    result = run_urban_experiment(paper_testbed_config(rounds=rounds))

    print(render_table1(
        compute_table1(result.matrices_by_round()),
        paper_reference=PAPER_TABLE1,
    ))

    for flow in CARS:
        matrices = result.matrices_for_flow(flow)
        curves = reception_curves(matrices, CARS, car_names=NAMES)
        regions = estimate_regions(matrices, CARS)
        figure = 2 + int(flow)
        print(f"\nFigure {figure} — P(reception), packets addressed to car {flow}")
        print(
            f"Region I: pkt 1–{regions.region_i_end}   "
            f"Region II: –{regions.region_iii_start - 1}   "
            f"Region III: –{regions.window_length}"
        )
        print(ascii_plot([curves[car].smoothed(7) for car in CARS]))

    for flow in CARS:
        matrices = result.matrices_for_flow(flow)
        curves = coop_curves(matrices, car_name=f"car {flow}")
        figure = 5 + int(flow)
        print(f"\nFigure {figure} — after-coop vs joint reception, car {flow}")
        print(f"mean optimality gap: {optimality_gap(matrices):.4f}")
        print(ascii_plot([curves.joint.smoothed(7), curves.after_coop.smoothed(7)]))


if __name__ == "__main__":
    main()
