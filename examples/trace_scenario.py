#!/usr/bin/env python3
"""Trace-driven mobility: a recorded (here: synthesized) stream of cars.

Every other example synthesizes motion from parametric platoons; this
one drives the simulation from a *mobility trace* — the same path any
real SUMO FCD / ns-2 setdest / CSV recording takes.  To stay
self-contained it first writes a deterministic synthetic recording to
CSV (exactly what ``repro trace synth`` does), then loads it back
through the parser like a foreign dataset and runs the paired
C-ARQ vs no-cooperation comparison on it.

Run:  python examples/trace_scenario.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro.mobility.traceio import dump_traces, load_traces, synth_traces
from repro.scenarios.trace import TraceScenarioConfig, run_trace_experiment
from repro.scenarios.summaries import summarize_matrices


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "recording.csv"
        recording = synth_traces(
            vehicles=6, duration_s=90.0, road_length_m=1800.0, seed=42
        )
        dump_traces(recording, trace_path, fmt="csv")
        summary = load_traces(trace_path).summary()
        print(
            f"Recording: {summary['vehicles']} vehicles, "
            f"{summary['samples']} samples over {summary['duration_s']:.0f} s, "
            f"mean speed {summary['mean_speed_ms']:.1f} m/s\n"
        )

        base = TraceScenarioConfig(
            trace_file=str(trace_path), seed=2024, rounds=2
        )
        print(f"{'mode':>8} {'pkts':>7} {'before':>8} {'after':>7} {'gain':>6}")
        for mode in ("carq", "nocoop"):
            config = dataclasses.replace(base, mode=mode)
            rows = run_trace_experiment(config)
            point = summarize_matrices(rows, mode)
            print(
                f"{mode:>8} {point.tx_by_ap_mean:>7.0f} "
                f"{100 * point.lost_before_fraction:>7.1f}% "
                f"{100 * point.lost_after_fraction:>6.1f}% "
                f"{100 * point.reduction_fraction:>5.0f}%"
            )

    print(
        "\nThe AP sits early along the recording, so most of it is dark "
        "area: C-ARQ recovers a large share of the drive-thru losses, "
        "the no-cooperation baseline none.  Swap the CSV for any real "
        "recording (see `repro trace info`) to rerun the comparison on it."
    )


if __name__ == "__main__":
    main()
