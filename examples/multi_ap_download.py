#!/usr/bin/env python3
"""Future-work study (§6): how many infostations does a download need?

A platoon drives a long road with APs every 800 m, each cyclically
broadcasting the 250 blocks of a per-car file.  Between APs the cars run
the Cooperative-ARQ phase.  The script reports, per car, how many
infostations had to be passed before the file was complete — with
cooperation versus direct reception only (computed post-hoc from the
same simulation run, so the comparison is paired).

Run:  python examples/multi_ap_download.py
"""

import math

from repro.experiments.multi_ap import MultiApConfig, run_multi_ap_experiment


def fmt(aps: float) -> str:
    return "never" if math.isinf(aps) else f"{aps:.0f}"


def main() -> None:
    config = MultiApConfig(rounds=2, seed=42)
    n_aps = len(config.ap_positions())
    print(
        f"Road: {config.road_length_m / 1000:.0f} km, {n_aps} infostations "
        f"every {config.ap_spacing_m:.0f} m, file of {config.file_blocks} "
        f"blocks per car, platoon at {config.speed_ms * 3.6:.0f} km/h\n"
    )
    rounds = run_multi_ap_experiment(config)

    print(f"{'round':>5} {'car':>4} {'APs (C-ARQ)':>12} {'APs (direct)':>13}")
    coop_total, direct_total, pairs = 0.0, 0.0, 0
    for round_index, outcomes in enumerate(rounds):
        for outcome in outcomes:
            print(
                f"{round_index:>5} {outcome.car:>4} "
                f"{fmt(outcome.aps_visited_coop):>12} "
                f"{fmt(outcome.aps_visited_direct):>13}"
            )
            if math.isfinite(outcome.aps_visited_direct):
                coop_total += outcome.aps_visited_coop
                direct_total += outcome.aps_visited_direct
                pairs += 1

    if pairs:
        saving = 100.0 * (1.0 - coop_total / direct_total)
        print(
            f"\nMean: {coop_total / pairs:.1f} APs with C-ARQ vs "
            f"{direct_total / pairs:.1f} without — {saving:.0f}% fewer "
            "infostation visits thanks to dark-area cooperation."
        )


if __name__ == "__main__":
    main()
