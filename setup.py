"""Legacy setup shim.

The evaluation environment has setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets ``python setup.py develop`` (which pip falls
back to) work offline.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
