"""Packaging for the C-ARQ reproduction.

Metadata lives here (not in a ``pyproject.toml``) because the evaluation
environment has setuptools 65 without the ``wheel`` package, so PEP 660
editable installs cannot build the editable wheel; ``python setup.py
develop`` (which pip falls back to) works offline with this classic
layout.
"""

from setuptools import find_packages, setup

setup(
    name="repro-carq",
    version="1.0.0",
    description=(
        "Reproduction of 'A Cooperative ARQ for Delay-Tolerant Vehicular "
        "Networks' (Morillo-Pozo et al., ICDCS Workshops 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
