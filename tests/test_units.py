"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestDecibels:
    def test_db_to_linear_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_inverse(self):
        assert units.linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-3.0)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_roundtrip(self, value_db):
        assert units.linear_to_db(units.db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )

    def test_dbm_watts_known_point(self):
        # 30 dBm = 1 W.
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)
        assert units.watts_to_dbm(1.0) == pytest.approx(30.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_dbm_sum_of_equal_powers_adds_three_db(self):
        assert units.dbm_sum(0.0, 0.0) == pytest.approx(3.0103, abs=1e-3)

    def test_dbm_sum_single_value_identity(self):
        assert units.dbm_sum(-42.0) == pytest.approx(-42.0)

    def test_dbm_sum_requires_values(self):
        with pytest.raises(ValueError):
            units.dbm_sum()

    def test_dbm_sum_dominated_by_strongest(self):
        total = units.dbm_sum(-50.0, -90.0)
        assert total == pytest.approx(-50.0, abs=0.01)


class TestConversions:
    def test_kmh_roundtrip(self):
        assert units.ms_to_kmh(units.kmh_to_ms(72.0)) == pytest.approx(72.0)

    def test_twenty_kmh_in_ms(self):
        assert units.kmh_to_ms(20.0) == pytest.approx(5.5556, abs=1e-3)

    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(1000) == 8000

    def test_transmission_time_1000_bytes_at_1mbps(self):
        assert units.transmission_time(1000, units.MBPS) == pytest.approx(0.008)

    def test_transmission_time_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time(100, 0.0)

    def test_transmission_time_rejects_negative_size(self):
        with pytest.raises(ValueError):
            units.transmission_time(-1, units.MBPS)


class TestThermalNoise:
    def test_noise_floor_22mhz(self):
        # kTB at 290 K over 22 MHz ≈ -100.5 dBm.
        assert units.thermal_noise_dbm(22e6) == pytest.approx(-100.55, abs=0.1)

    def test_noise_figure_adds_directly(self):
        base = units.thermal_noise_dbm(20e6)
        assert units.thermal_noise_dbm(20e6, 5.0) == pytest.approx(base + 5.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_dbm(0.0)

    def test_psd_constant_is_minus_174(self):
        assert units.THERMAL_NOISE_DBM_PER_HZ == pytest.approx(-173.98, abs=0.05)


class TestDbmSumBatch:
    """dbm_sum_batch must equal dbm_sum bit for bit, any size."""

    def test_matches_scalar_for_random_sets(self):
        import numpy as np

        from repro.units import dbm_sum, dbm_sum_batch

        rng = np.random.default_rng(17)
        for n in [1, 2, 3, 7, 8, 9, 31, 64, 257]:
            powers = rng.uniform(-120.0, 20.0, n)
            assert dbm_sum_batch(powers) == dbm_sum(*powers.tolist())

    def test_single_element_is_identity_of_scalar(self):
        from repro.units import dbm_sum, dbm_sum_batch

        assert dbm_sum_batch([-87.35]) == dbm_sum(-87.35)

    def test_accepts_lists_and_tuples(self):
        from repro.units import dbm_sum, dbm_sum_batch

        assert dbm_sum_batch([-10.0, -13.0]) == dbm_sum(-10.0, -13.0)
        assert dbm_sum_batch((-10.0, -13.0)) == dbm_sum(-10.0, -13.0)

    def test_empty_raises_like_scalar(self):
        import numpy as np
        import pytest

        from repro.units import dbm_sum_batch

        with pytest.raises(ValueError):
            dbm_sum_batch(np.array([]))
        with pytest.raises(ValueError):
            dbm_sum_batch([])
