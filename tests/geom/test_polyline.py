"""Polyline arc-length parameterisation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geom import Polyline, Vec2


@pytest.fixture
def rect():
    return Polyline.rectangle(100.0, 50.0)


@pytest.fixture
def open_line():
    return Polyline([Vec2(0, 0), Vec2(10, 0), Vec2(10, 10)])


class TestConstruction:
    def test_needs_two_points(self):
        with pytest.raises(GeometryError):
            Polyline([Vec2(0, 0)])

    def test_rejects_zero_length_segment(self):
        with pytest.raises(GeometryError):
            Polyline([Vec2(0, 0), Vec2(0, 0), Vec2(1, 1)])

    def test_closed_drops_repeated_closing_point(self):
        p = Polyline(
            [Vec2(0, 0), Vec2(1, 0), Vec2(1, 1), Vec2(0, 0)], closed=True
        )
        assert len(p.points) == 3

    def test_rectangle_dimensions_validated(self):
        with pytest.raises(GeometryError):
            Polyline.rectangle(0.0, 10.0)

    def test_straight_length_validated(self):
        with pytest.raises(GeometryError):
            Polyline.straight(-5.0)


class TestLength:
    def test_open_length(self, open_line):
        assert open_line.length == pytest.approx(20.0)

    def test_rectangle_perimeter(self, rect):
        assert rect.length == pytest.approx(300.0)

    def test_segment_count_open(self, open_line):
        assert open_line.segment_count == 2

    def test_segment_count_closed(self, rect):
        assert rect.segment_count == 4


class TestPointAt:
    def test_start(self, open_line):
        assert open_line.point_at(0.0) == Vec2(0, 0)

    def test_mid_segment(self, open_line):
        assert open_line.point_at(5.0) == Vec2(5, 0)

    def test_vertex(self, open_line):
        assert open_line.point_at(10.0) == Vec2(10, 0)

    def test_end(self, open_line):
        assert open_line.point_at(20.0) == Vec2(10, 10)

    def test_open_out_of_range_raises(self, open_line):
        with pytest.raises(GeometryError):
            open_line.point_at(20.1)
        with pytest.raises(GeometryError):
            open_line.point_at(-0.1)

    def test_closed_wraps(self, rect):
        assert rect.point_at(rect.length + 25.0) == rect.point_at(25.0)

    def test_closed_negative_wraps(self, rect):
        assert rect.point_at(-10.0) == rect.point_at(rect.length - 10.0)


class TestHeadings:
    def test_heading_first_segment(self, open_line):
        assert open_line.heading_at(5.0) == pytest.approx(0.0)

    def test_heading_second_segment(self, open_line):
        assert open_line.heading_at(15.0) == pytest.approx(math.pi / 2)

    def test_tangent_unit_length(self, rect):
        for s in (0.0, 60.0, 120.0, 250.0):
            assert rect.tangent_at(s).norm() == pytest.approx(1.0)

    def test_rectangle_turn_angles_are_right_angles(self, rect):
        for vertex in range(4):
            assert rect.turn_angle_at_vertex(vertex) == pytest.approx(math.pi / 2)

    def test_open_endpoint_turn_angle_raises(self, open_line):
        with pytest.raises(GeometryError):
            open_line.turn_angle_at_vertex(0)

    def test_vertex_arc_length(self, rect):
        assert rect.vertex_arc_length(1) == pytest.approx(100.0)
        assert rect.vertex_arc_length(2) == pytest.approx(150.0)


class TestDistanceAlong:
    def test_open_signed(self, open_line):
        assert open_line.distance_along(5.0, 15.0) == pytest.approx(10.0)
        assert open_line.distance_along(15.0, 5.0) == pytest.approx(-10.0)

    def test_closed_always_forward(self, rect):
        assert rect.distance_along(290.0, 10.0) == pytest.approx(20.0)


class TestProperties:
    @given(st.floats(min_value=0.0, max_value=10_000.0))
    def test_closed_points_inside_bounding_box(self, s):
        rect = Polyline.rectangle(100.0, 50.0)
        p = rect.point_at(s)
        assert -1e-9 <= p.x <= 100.0 + 1e-9
        assert -1e-9 <= p.y <= 50.0 + 1e-9

    @given(st.floats(min_value=0.0, max_value=299.0), st.floats(min_value=0.0, max_value=1.0))
    def test_consecutive_points_close(self, s, ds):
        rect = Polyline.rectangle(100.0, 50.0)
        a = rect.point_at(s)
        b = rect.point_at(s + ds)
        # Arc-length parameterisation: straight-line distance <= arc distance.
        assert a.distance_to(b) <= ds + 1e-9


class TestPointsAtBatch:
    """Batch projection is bit-identical to scalar point_at per lane."""

    def test_straight_open_matches_scalar(self):
        import numpy as np

        line = Polyline([Vec2(0, 0), Vec2(120, 50)])
        arcs = np.linspace(0.0, line.length, 257)
        xs, ys = line.points_at(arcs)
        for s, x, y in zip(arcs.tolist(), xs.tolist(), ys.tolist()):
            p = line.point_at(s)
            assert (x, y) == (p.x, p.y)

    def test_multi_segment_closed_matches_scalar(self):
        import numpy as np

        rect = Polyline.rectangle(90.0, 40.0)
        arcs = np.linspace(-50.0, 3.0 * rect.length, 509)
        xs, ys = rect.points_at(arcs)
        for s, x, y in zip(arcs.tolist(), xs.tolist(), ys.tolist()):
            p = rect.point_at(s)
            assert (x, y) == (p.x, p.y)

    def test_multi_segment_open_matches_scalar(self):
        import numpy as np

        path = Polyline([Vec2(0, 0), Vec2(10, 0), Vec2(10, 25), Vec2(-5, 25)])
        arcs = np.linspace(0.0, path.length, 401)
        xs, ys = path.points_at(arcs)
        for s, x, y in zip(arcs.tolist(), xs.tolist(), ys.tolist()):
            p = path.point_at(s)
            assert (x, y) == (p.x, p.y)

    def test_open_out_of_range_raises(self):
        import numpy as np
        import pytest

        from repro.errors import GeometryError

        line = Polyline([Vec2(0, 0), Vec2(10, 0)])
        with pytest.raises(GeometryError):
            line.points_at(np.array([0.0, 11.0]))
        with pytest.raises(GeometryError):
            line.points_at(np.array([-0.5]))
