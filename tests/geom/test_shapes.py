"""AxisRect containment and segment intersection."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geom import Vec2
from repro.geom.shapes import AxisRect


@pytest.fixture
def unit():
    return AxisRect(0.0, 0.0, 10.0, 10.0)


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            AxisRect(0, 0, 0, 10)

    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            AxisRect(5, 0, 1, 10)

    def test_center(self, unit):
        assert unit.center == Vec2(5.0, 5.0)


class TestContains:
    def test_inside(self, unit):
        assert unit.contains(Vec2(5, 5))

    def test_boundary(self, unit):
        assert unit.contains(Vec2(0, 0))
        assert unit.contains(Vec2(10, 10))

    def test_outside(self, unit):
        assert not unit.contains(Vec2(-0.1, 5))
        assert not unit.contains(Vec2(5, 10.1))


class TestSegmentIntersection:
    def test_crossing_through(self, unit):
        assert unit.intersects_segment(Vec2(-5, 5), Vec2(15, 5))

    def test_diagonal_through(self, unit):
        assert unit.intersects_segment(Vec2(-1, -1), Vec2(11, 11))

    def test_fully_inside(self, unit):
        assert unit.intersects_segment(Vec2(2, 2), Vec2(8, 8))

    def test_one_endpoint_inside(self, unit):
        assert unit.intersects_segment(Vec2(5, 5), Vec2(50, 50))

    def test_miss_above(self, unit):
        assert not unit.intersects_segment(Vec2(-5, 20), Vec2(15, 20))

    def test_miss_parallel_left(self, unit):
        assert not unit.intersects_segment(Vec2(-1, 0), Vec2(-1, 10))

    def test_miss_diagonal_near_corner(self, unit):
        assert not unit.intersects_segment(Vec2(11, 0), Vec2(20, 5))

    def test_stops_short_of_rect(self, unit):
        assert not unit.intersects_segment(Vec2(-10, 5), Vec2(-1, 5))

    def test_grazes_edge(self, unit):
        # Segment along the boundary line counts as intersecting.
        assert unit.intersects_segment(Vec2(-5, 0), Vec2(15, 0))

    def test_degenerate_segment_inside(self, unit):
        assert unit.intersects_segment(Vec2(5, 5), Vec2(5, 5))

    def test_degenerate_segment_outside(self, unit):
        assert not unit.intersects_segment(Vec2(50, 50), Vec2(50, 50))


coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestIntersectionProperties:
    @given(coords, coords, coords, coords)
    def test_symmetric_in_endpoints(self, x1, y1, x2, y2):
        rect = AxisRect(-10.0, -10.0, 10.0, 10.0)
        a, b = Vec2(x1, y1), Vec2(x2, y2)
        assert rect.intersects_segment(a, b) == rect.intersects_segment(b, a)

    @given(coords, coords, coords, coords)
    def test_endpoint_inside_implies_intersection(self, x1, y1, x2, y2):
        rect = AxisRect(-10.0, -10.0, 10.0, 10.0)
        a, b = Vec2(x1, y1), Vec2(x2, y2)
        if rect.contains(a) or rect.contains(b):
            assert rect.intersects_segment(a, b)

    @given(coords, coords, coords, coords)
    def test_both_beyond_same_slab_means_miss(self, x1, x2, y1, y2):
        rect = AxisRect(-10.0, -10.0, 10.0, 10.0)
        a = Vec2(x1, 50.0 + abs(y1))
        b = Vec2(x2, 50.0 + abs(y2))
        assert not rect.intersects_segment(a, b)
