"""Vec2 arithmetic and metric properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geom import Vec2

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
vectors = st.builds(Vec2, finite, finite)


class TestArithmetic:
    def test_add(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_sub(self):
        assert Vec2(5, 5) - Vec2(2, 3) == Vec2(3, 2)

    def test_scalar_mul_both_sides(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)

    def test_div(self):
        assert Vec2(4, 8) / 2 == Vec2(2, 4)

    def test_neg(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_frozen(self):
        with pytest.raises(Exception):
            Vec2(0, 0).x = 1.0  # type: ignore[misc]

    def test_hashable(self):
        assert len({Vec2(1, 2), Vec2(1, 2), Vec2(2, 1)}) == 2


class TestMetrics:
    def test_norm_345(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_norm_squared(self):
        assert Vec2(3, 4).norm_squared() == pytest.approx(25.0)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)

    def test_dot_perpendicular_is_zero(self):
        assert Vec2(1, 0).dot(Vec2(0, 5)) == 0.0

    def test_cross_sign(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0

    def test_normalized(self):
        n = Vec2(0, 7).normalized()
        assert n == Vec2(0, 1)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(0, 0).normalized()

    def test_perpendicular_is_ccw(self):
        assert Vec2(1, 0).perpendicular() == Vec2(0, 1)

    def test_angle(self):
        assert Vec2(0, 1).angle() == pytest.approx(math.pi / 2)

    def test_rotated_quarter_turn(self):
        r = Vec2(1, 0).rotated(math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)

    def test_lerp_endpoints_and_middle(self):
        a, b = Vec2(0, 0), Vec2(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(5, 10)

    def test_zero(self):
        assert Vec2.zero() == Vec2(0.0, 0.0)


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors)
    def test_rotation_preserves_norm(self, v):
        assert v.rotated(1.234).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-9)

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vectors, vectors)
    def test_dot_symmetric(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a))

    @given(vectors, st.floats(min_value=0.0, max_value=1.0))
    def test_lerp_stays_on_segment(self, a, t):
        b = Vec2(a.x + 10.0, a.y - 5.0)
        p = a.lerp(b, t)
        # Collinearity: cross product of (p-a) and (b-a) is ~0.
        assert (p - a).cross(b - a) == pytest.approx(0.0, abs=1e-3)
