"""Reception-probability curves, joint/after-coop curves, regions."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.joint import coop_curves, optimality_gap
from repro.analysis.reception_prob import ProbabilityCurve, reception_curves
from repro.analysis.regions import estimate_regions
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix

CAR1, CAR2, CAR3 = NodeId(1), NodeId(2), NodeId(3)


def matrix(d1, d2, d3=frozenset(), recovered=frozenset()):
    return ReceptionMatrix.build(
        CAR1, {CAR1: set(d1), CAR2: set(d2), CAR3: set(d3)}, set(recovered)
    )


class TestReceptionCurves:
    def test_probabilities_across_rounds(self):
        rounds = [
            matrix({1, 2, 3}, {1}),
            matrix({1, 3}, {1, 2, 3}),
        ]
        curves = reception_curves(rounds, [CAR1, CAR2])
        assert curves[CAR1].probabilities == (1.0, 0.5, 1.0)
        assert curves[CAR2].probabilities == (1.0, 0.5, 0.5)

    def test_samples_counted_per_packet_number(self):
        rounds = [matrix({1, 2}, set()), matrix({1, 2, 3}, set())]
        curves = reception_curves(rounds, [CAR1])
        assert curves[CAR1].samples == (2, 2, 1)

    def test_labels_use_car_names(self):
        rounds = [matrix({1}, {1})]
        curves = reception_curves(rounds, [CAR1], car_names={CAR1: "car 1"})
        assert curves[CAR1].label == "Rx in car 1"

    def test_mixed_flows_rejected(self):
        a = matrix({1}, set())
        b = ReceptionMatrix.build(CAR2, {CAR2: {1}, CAR1: set()}, set())
        with pytest.raises(AnalysisError):
            reception_curves([a, b], [CAR1])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            reception_curves([], [CAR1])


class TestSmoothing:
    def test_moving_average(self):
        curve = ProbabilityCurve("x", (0.0, 1.0, 0.0, 1.0, 0.0), (1,) * 5)
        smoothed = curve.smoothed(3)
        assert smoothed.probabilities[1] == pytest.approx(1.0 / 3.0)
        assert smoothed.probabilities[2] == pytest.approx(2.0 / 3.0)

    def test_edges_use_partial_windows(self):
        curve = ProbabilityCurve("x", (1.0, 0.0, 0.0), (1,) * 3)
        smoothed = curve.smoothed(3)
        assert smoothed.probabilities[0] == pytest.approx(0.5)

    def test_window_one_is_identity(self):
        curve = ProbabilityCurve("x", (0.3, 0.7), (1, 1))
        assert curve.smoothed(1) is curve

    def test_invalid_window(self):
        with pytest.raises(AnalysisError):
            ProbabilityCurve("x", (0.5,), (1,)).smoothed(0)


class TestCoopCurves:
    def test_after_coop_vs_joint(self):
        rounds = [matrix({1, 3}, {2}, recovered={2})]
        curves = coop_curves(rounds, car_name="car 1")
        assert curves.after_coop.probabilities == (1.0, 1.0, 1.0)
        assert curves.joint.probabilities == (1.0, 1.0, 1.0)
        assert "after coop" in curves.after_coop.label

    def test_gap_visible_when_recovery_incomplete(self):
        rounds = [matrix({1, 3}, {2}, recovered=set())]
        curves = coop_curves(rounds)
        assert curves.after_coop.probabilities == (1.0, 0.0, 1.0)
        assert curves.joint.probabilities == (1.0, 1.0, 1.0)

    def test_optimality_gap_zero_when_optimal(self):
        rounds = [matrix({1, 3}, {2}, recovered={2})]
        assert optimality_gap(rounds) == pytest.approx(0.0)

    def test_optimality_gap_positive_when_suboptimal(self):
        rounds = [matrix({1, 3}, {2}, recovered=set())]
        assert optimality_gap(rounds) == pytest.approx(1.0 / 3.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            coop_curves([])
        with pytest.raises(AnalysisError):
            optimality_gap([])


class TestRegions:
    def test_staggered_entry_and_exit(self):
        # Car 1 receives 1-6, car 2 receives 3-8, car 3 receives 4-10.
        rounds = [
            matrix(set(range(1, 7)), set(range(3, 9)), set(range(4, 11)))
        ]
        regions = estimate_regions(rounds, [CAR1, CAR2, CAR3])
        assert regions.region_i_end == 4     # latest first reception
        assert regions.region_iii_start == 6  # earliest last reception
        assert regions.window_length == 10

    def test_labels(self):
        rounds = [
            matrix(set(range(1, 7)), set(range(3, 9)), set(range(4, 11)))
        ]
        regions = estimate_regions(rounds, [CAR1, CAR2, CAR3])
        assert regions.label_for(1) == "I"
        assert regions.label_for(5) == "II"
        assert regions.label_for(9) == "III"

    def test_cars_without_receptions_ignored(self):
        rounds = [matrix({1, 2, 3}, set())]
        regions = estimate_regions(rounds, [CAR1, CAR2])
        assert regions.region_i_end == 1

    def test_no_receptions_anywhere_raises(self):
        with pytest.raises(AnalysisError):
            estimate_regions([], [CAR1])
