"""Report rendering: tables, series, CSV, ASCII plots."""

import csv
import io

import pytest

from repro.errors import AnalysisError
from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.report import (
    format_series,
    format_table,
    render_table1,
    write_csv,
)
from repro.analysis.reception_prob import ProbabilityCurve
from repro.analysis.stats import Table1Row
from repro.mac.frames import NodeId


def sample_row(car=1):
    return Table1Row(
        car=NodeId(car), rounds=30,
        tx_by_ap_mean=130.4, tx_by_ap_std=17.7,
        lost_before_mean=30.5, lost_before_std=12.9, lost_before_pct=23.4,
        lost_after_mean=13.7, lost_after_std=9.1, lost_after_pct=10.5,
    )


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["A", "Bee"], [[1, "x"], [22, "yy"]])
        assert "A" in text and "Bee" in text
        assert "22" in text and "yy" in text

    def test_columns_aligned(self):
        text = format_table(["A", "B"], [["looooong", "x"]])
        lines = text.splitlines()
        assert lines[0].index("B") == lines[2].index("x")

    def test_title_prepended(self):
        text = format_table(["A"], [[1]], title="My title")
        assert text.splitlines()[0] == "My title"


class TestRenderTable1:
    def test_contains_means_and_percentages(self):
        text = render_table1({NodeId(1): sample_row()})
        assert "130.4" in text
        assert "23.4%" in text
        assert "10.5%" in text

    def test_paper_reference_columns(self):
        text = render_table1(
            {NodeId(1): sample_row()},
            paper_reference={NodeId(1): (23.4, 10.5)},
        )
        assert "Paper before" in text

    def test_reduction_column(self):
        text = render_table1({NodeId(1): sample_row()})
        assert "55%" in text  # 1 - 13.7/30.5


class TestSeries:
    def test_subsampling(self):
        curve = ProbabilityCurve("Rx", tuple([0.5] * 100), tuple([1] * 100))
        text = format_series([curve], every=10)
        lines = [l for l in text.splitlines() if l and l[0].isdigit()]
        assert len(lines) == 10

    def test_short_curve_shows_dash(self):
        long = ProbabilityCurve("L", (0.1, 0.2, 0.3), (1, 1, 1))
        short = ProbabilityCurve("S", (0.9,), (1,))
        text = format_series([long, short], every=1)
        assert "-" in text


class TestCsv:
    def test_round_trip(self):
        curves = [
            ProbabilityCurve("a", (0.1, 0.2), (1, 1)),
            ProbabilityCurve("b", (0.9,), (1,)),
        ]
        text = write_csv(curves)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["packet_number", "a", "b"]
        assert rows[1] == ["1", "0.1", "0.9"]
        assert rows[2] == ["2", "0.2", ""]


class TestAsciiPlot:
    def test_plot_contains_markers_and_labels(self):
        curve = ProbabilityCurve("Rx in car 1", tuple([0.5] * 20), tuple([1] * 20))
        text = ascii_plot([curve], title="Figure 3")
        assert "Figure 3" in text
        assert "X = Rx in car 1" in text
        assert "X" in text

    def test_high_curve_plots_near_top(self):
        high = ProbabilityCurve("high", tuple([1.0] * 10), tuple([1] * 10))
        text = ascii_plot([high], height=5, width=20)
        data_lines = [l for l in text.splitlines() if "|" in l]
        assert "X" in data_lines[0]
        assert "X" not in data_lines[-1]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot([])

    def test_tiny_area_rejected(self):
        curve = ProbabilityCurve("x", (0.5,), (1,))
        with pytest.raises(AnalysisError):
            ascii_plot([curve], height=1)
