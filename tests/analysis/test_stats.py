"""Table 1 aggregation."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.stats import Table1Row, compute_table1
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix

CAR1, CAR2 = NodeId(1), NodeId(2)


def matrix(flow, direct_own, direct_other, recovered, other=CAR2):
    return ReceptionMatrix.build(
        flow, {flow: set(direct_own), other: set(direct_other)}, set(recovered)
    )


class TestComputeTable1:
    def test_single_round_counts(self):
        m = matrix(CAR1, {1, 2, 5}, {3}, {3})  # window 1..5
        rows = compute_table1([{CAR1: m}])
        row = rows[CAR1]
        assert row.rounds == 1
        assert row.tx_by_ap_mean == 5.0
        assert row.lost_before_mean == 2.0  # seqs 3, 4
        assert row.lost_after_mean == 1.0   # seq 4
        assert row.lost_before_pct == pytest.approx(40.0)
        assert row.lost_after_pct == pytest.approx(20.0)

    def test_mean_and_std_across_rounds(self):
        m1 = matrix(CAR1, {1, 2, 3, 4}, set(), set())      # window 1..4, lost 0
        m2 = matrix(CAR1, {1, 6}, set(), set())            # window 1..6, lost 4
        rows = compute_table1([{CAR1: m1}, {CAR1: m2}])
        row = rows[CAR1]
        assert row.tx_by_ap_mean == 5.0
        assert row.lost_before_mean == 2.0
        assert row.lost_before_std == pytest.approx(2.8284, abs=1e-3)

    def test_rounds_missing_a_car_skipped_for_that_car(self):
        m1 = matrix(CAR1, {1, 2}, set(), set())
        rows = compute_table1([{CAR1: m1}, {}])
        assert rows[CAR1].rounds == 1

    def test_multiple_cars_sorted(self):
        m1 = matrix(CAR1, {1, 2}, set(), set())
        m2 = matrix(CAR2, {1, 2, 3}, set(), set(), other=CAR1)
        rows = compute_table1([{CAR1: m1, CAR2: m2}])
        assert list(rows) == [CAR1, CAR2]

    def test_empty_input_raises(self):
        with pytest.raises(AnalysisError):
            compute_table1([])
        with pytest.raises(AnalysisError):
            compute_table1([{}])

    def test_loss_reduction_pct(self):
        row = Table1Row(
            car=CAR1, rounds=1,
            tx_by_ap_mean=100.0, tx_by_ap_std=0.0,
            lost_before_mean=30.0, lost_before_std=0.0, lost_before_pct=30.0,
            lost_after_mean=15.0, lost_after_std=0.0, lost_after_pct=15.0,
        )
        assert row.loss_reduction_pct == pytest.approx(50.0)

    def test_loss_reduction_with_zero_before(self):
        row = Table1Row(
            car=CAR1, rounds=1,
            tx_by_ap_mean=100.0, tx_by_ap_std=0.0,
            lost_before_mean=0.0, lost_before_std=0.0, lost_before_pct=0.0,
            lost_after_mean=0.0, lost_after_std=0.0, lost_after_pct=0.0,
        )
        assert row.loss_reduction_pct == 0.0
