"""Docs stay true: generated references in sync, intra-repo links resolve.

These are the local half of the CI ``docs`` job — a drifted
``docs/SCENARIOS.md`` or a broken markdown link fails tier-1 before any
workflow runs.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.scenarios.registry import (
    scenario_reference_markdown,
    scenario_table_markdown,
)

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "tools"))

from check_markdown_links import broken_links, markdown_files  # noqa: E402


class TestScenarioReference:
    def test_scenarios_md_matches_the_registry(self):
        """docs/SCENARIOS.md is generated; regenerate on drift with
        ``PYTHONPATH=src python -m repro scenarios --doc > docs/SCENARIOS.md``."""
        committed = (REPO / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
        assert committed == scenario_reference_markdown() + "\n"

    def test_reference_covers_every_registered_scenario(self):
        from repro.scenarios import scenario_names

        doc = scenario_reference_markdown()
        for name in scenario_names():
            assert f"## `{name}`" in doc

    def test_reference_lists_every_preset(self):
        from repro.scenarios import all_scenarios

        doc = scenario_reference_markdown()
        for plugin in all_scenarios():
            for preset in plugin.presets:
                assert f"`{preset.name}`" in doc

    def test_cli_doc_flag_emits_the_same_document(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--doc"]) == 0
        assert capsys.readouterr().out == scenario_reference_markdown() + "\n"


class TestReadme:
    def test_readme_links_architecture_and_scenarios_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SCENARIOS.md" in readme

    def test_readme_links_the_linting_doc(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/LINTING.md" in readme

    def test_linting_doc_catalogs_every_rule(self):
        from repro.lint import FRAMEWORK_CODES, all_rules

        doc = (REPO / "docs" / "LINTING.md").read_text(encoding="utf-8")
        for rule in all_rules():
            assert f"`{rule.code}`" in doc, rule.code
        for code in FRAMEWORK_CODES:
            assert f"`{code}`" in doc, code
        for section in ("Waivers", "Baseline workflow", "lint-ok"):
            assert section in doc

    def test_architecture_doc_cross_links_linting(self):
        doc = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "LINTING.md" in doc

    def test_architecture_doc_exists_and_maps_the_layers(self):
        doc = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        for module in (
            "repro.sim",
            "repro.radio",
            "repro.mac",
            "repro.mobility",
            "repro.scenarios",
            "repro.campaign",
            "traceio",
        ):
            assert module in doc
        assert "medium.transmit" in doc  # the broadcast data-flow diagram


class TestMarkdownLinks:
    def test_all_intra_repo_links_resolve(self):
        bad = broken_links(REPO)
        assert not bad, f"broken markdown links: {bad}"

    def test_the_checker_actually_scans_this_repo(self):
        names = {p.name for p in markdown_files(REPO)}
        assert {
            "README.md",
            "ARCHITECTURE.md",
            "SCENARIOS.md",
            "LINTING.md",
        } <= names

    def test_inline_code_spans_are_not_link_checked(self, tmp_path):
        # docs/LINTING.md quotes `table[key](#anchor)`-ish shapes in
        # backticks; those are code examples, not links.
        (tmp_path / "doc.md").write_text(
            "use `rows[code](#fake)` and see [real](exists.md)"
        )
        (tmp_path / "exists.md").write_text("ok")
        from check_markdown_links import broken_links as check

        assert check(tmp_path) == []

    def test_checker_cli_entrypoint(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_markdown_links.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_checker_flags_broken_links(self, tmp_path):
        (tmp_path / "bad.md").write_text("see [missing](does-not-exist.md)")
        bad = broken_links(tmp_path)
        assert bad == [(tmp_path / "bad.md", "does-not-exist.md")]
