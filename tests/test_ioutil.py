"""Atomic file writes: readers never observe a half-written artifact."""

import json
import os

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text(encoding="utf-8") == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old", encoding="utf-8")
        atomic_write_text(path, "new")
        assert path.read_text(encoding="utf-8") == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious", encoding="utf-8")

        class Boom:
            def __str__(self):
                raise RuntimeError("mid-serialisation failure")

        with pytest.raises(TypeError):
            atomic_write_text(path, Boom())  # not a str: write() rejects it
        assert path.read_text(encoding="utf-8") == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestAtomicWriteJson:
    def test_round_trips_payload(self, tmp_path):
        path = tmp_path / "out.json"
        payload = {"b": [1, 2], "a": {"nested": True}}
        atomic_write_json(path, payload)
        assert json.loads(path.read_text(encoding="utf-8")) == payload

    def test_output_is_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"b": 1, "a": 2})
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

    def test_unserialisable_payload_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.loads(path.read_text(encoding="utf-8")) == {"ok": True}
        assert os.listdir(tmp_path) == ["out.json"]
