"""Reception matrix: the paper's core post-processing structure."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix

CAR1, CAR2, CAR3 = NodeId(1), NodeId(2), NodeId(3)


def build(direct1, direct2, direct3, recovered):
    return ReceptionMatrix.build(
        CAR1,
        {CAR1: set(direct1), CAR2: set(direct2), CAR3: set(direct3)},
        set(recovered),
    )


class TestBuild:
    def test_window_spans_all_receptions(self):
        matrix = build({5, 6}, {3}, {9}, set())
        assert matrix.window == (3, 9)
        assert matrix.tx_by_ap == 7

    def test_empty_round_returns_none(self):
        assert build(set(), set(), set(), set()) is None

    def test_recovered_outside_window_clipped(self):
        matrix = build({5}, {6}, set(), {100})
        assert 100 not in matrix.after_coop

    def test_invalid_window_rejected(self):
        with pytest.raises(AnalysisError):
            ReceptionMatrix(
                flow=CAR1, window=(5, 3), direct={}, after_coop=frozenset()
            )


class TestTable1Columns:
    def test_lost_before(self):
        matrix = build({1, 3}, {2}, set(), set())
        # Window [1,3]; destination has 1 and 3 → lost 1 (seq 2).
        assert matrix.lost_before_coop == 1

    def test_lost_after(self):
        matrix = build({1, 3}, {2}, set(), {2})
        assert matrix.lost_after_coop == 0

    def test_joint(self):
        matrix = build({1}, {3}, {5}, set())
        assert matrix.joint == {1, 3, 5}
        assert matrix.lost_joint == 2  # seqs 2 and 4

    def test_after_coop_counts_direct_plus_recovered(self):
        matrix = build({1, 5}, {2, 3}, set(), {3})
        assert matrix.after_coop == {1, 3, 5}
        assert matrix.lost_after_coop == 2  # 2 and 4


class TestIndicators:
    def test_direct_indicator(self):
        matrix = build({1, 3}, {2}, set(), set())
        assert matrix.direct_indicator(CAR1) == [True, False, True]
        assert matrix.direct_indicator(CAR2) == [False, True, False]

    def test_after_coop_indicator(self):
        matrix = build({1, 3}, {2}, set(), {2})
        assert matrix.after_coop_indicator() == [True, True, True]

    def test_joint_indicator(self):
        matrix = build({1}, {3}, set(), set())
        assert matrix.joint_indicator() == [True, False, True]

    def test_packet_number(self):
        matrix = build({10, 20}, set(), set(), set())
        assert matrix.packet_number(10) == 1
        assert matrix.packet_number(20) == 11
        with pytest.raises(AnalysisError):
            matrix.packet_number(9)

    def test_unknown_observer_all_false(self):
        matrix = build({1, 2}, set(), set(), set())
        assert matrix.direct_indicator(NodeId(42)) == [False, False]


class TestOptimality:
    def test_no_violations_when_recovered_from_platoon(self):
        matrix = build({1}, {2, 3}, set(), {2, 3})
        assert matrix.optimality_violations() == frozenset()

    def test_violation_detected(self):
        matrix = build({1, 4}, set(), set(), {2})
        # Seq 2 was received by nobody yet appears recovered.
        assert matrix.optimality_violations() == {2}


seq_sets = st.sets(st.integers(min_value=1, max_value=60), max_size=30)


class TestInvariants:
    @given(seq_sets, seq_sets, seq_sets)
    def test_joint_superset_of_each_car(self, d1, d2, d3):
        matrix = build(d1, d2, d3, set())
        if matrix is None:
            return
        for car in (CAR1, CAR2, CAR3):
            direct = matrix.direct.get(car, frozenset())
            assert direct <= matrix.joint

    @given(seq_sets, seq_sets, seq_sets)
    def test_loss_accounting_consistent(self, d1, d2, d3):
        matrix = build(d1, d2, d3, set())
        if matrix is None:
            return
        assert 0 <= matrix.lost_joint <= matrix.lost_after_coop
        assert matrix.lost_after_coop <= matrix.lost_before_coop <= matrix.tx_by_ap

    @given(seq_sets, seq_sets)
    def test_recovering_joint_closes_gap_exactly(self, d1, d2):
        """Recovering everything cooperators hold makes after == joint."""
        matrix = build(d1, d2, set(), set(d2) - set(d1))
        if matrix is None:
            return
        assert matrix.after_coop == matrix.joint
        assert matrix.lost_after_coop == matrix.lost_joint

    @given(seq_sets, seq_sets, seq_sets)
    def test_indicator_lengths_match_window(self, d1, d2, d3):
        matrix = build(d1, d2, d3, set())
        if matrix is None:
            return
        assert len(matrix.direct_indicator(CAR1)) == matrix.tx_by_ap
        assert len(matrix.joint_indicator()) == matrix.tx_by_ap
