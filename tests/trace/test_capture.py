"""Trace collector: record-keeping and queries."""

from repro.mac.frames import DataFrame, HelloFrame, NodeId
from repro.mac.medium import LossCause
from repro.radio.modulation import rate_by_name
from repro.trace.capture import TraceCollector

RATE = rate_by_name("dsss-1")
AP, CAR1, CAR2 = NodeId(100), NodeId(1), NodeId(2)


def data(seq, flow=CAR1):
    return DataFrame(src=AP, dst=flow, size_bytes=1062, flow_dst=flow, seq=seq)


class TestRecording:
    def test_tx_recorded(self):
        trace = TraceCollector()
        trace.on_tx(1.0, AP, data(1), RATE)
        assert len(trace.tx_records) == 1
        assert trace.transmitted_seqs(CAR1) == {1}

    def test_rx_delivered_recorded(self):
        trace = TraceCollector()
        trace.on_rx(1.1, CAR1, data(1), LossCause.DELIVERED, 10.0, -80.0)
        assert trace.delivered_seqs(CAR1, CAR1) == {1}

    def test_rx_loss_not_counted_as_delivery(self):
        trace = TraceCollector()
        trace.on_rx(1.1, CAR1, data(1), LossCause.CHANNEL, -5.0, -95.0)
        assert trace.delivered_seqs(CAR1, CAR1) == set()
        assert len(trace.rx_records) == 1

    def test_first_delivery_time_kept(self):
        trace = TraceCollector()
        trace.on_rx(1.0, CAR1, data(4), LossCause.DELIVERED, 10.0, -80.0)
        trace.on_rx(9.0, CAR1, data(4), LossCause.DELIVERED, 10.0, -80.0)
        assert trace.delivery_time(CAR1, CAR1, 4) == 1.0

    def test_delivery_time_missing(self):
        assert TraceCollector().delivery_time(CAR1, CAR1, 9) is None

    def test_non_data_frames_not_in_flow_queries(self):
        trace = TraceCollector()
        hello = HelloFrame(src=CAR1, dst=NodeId(-1), size_bytes=50)
        trace.on_tx(0.0, CAR1, hello, RATE)
        trace.on_rx(0.1, CAR2, hello, LossCause.DELIVERED, 20.0, -60.0)
        assert trace.transmitted_seqs(CAR1) == set()
        assert len(trace.tx_records) == 1

    def test_flows_separated(self):
        trace = TraceCollector()
        trace.on_rx(1.0, CAR1, data(1, flow=CAR1), LossCause.DELIVERED, 10.0, -80.0)
        trace.on_rx(1.2, CAR1, data(1, flow=CAR2), LossCause.DELIVERED, 10.0, -80.0)
        assert trace.delivered_seqs(CAR1, CAR1) == {1}
        assert trace.delivered_seqs(CAR1, CAR2) == {1}


class TestAggregates:
    def test_loss_causes_histogram(self):
        trace = TraceCollector()
        trace.on_rx(1.0, CAR1, data(1), LossCause.DELIVERED, 10.0, -80.0)
        trace.on_rx(1.2, CAR1, data(2), LossCause.CHANNEL, -3.0, -94.0)
        trace.on_rx(1.4, CAR1, data(3), LossCause.CHANNEL, -4.0, -95.0)
        histogram = trace.loss_causes(CAR1)
        assert histogram[LossCause.DELIVERED] == 1
        assert histogram[LossCause.CHANNEL] == 2

    def test_frames_sent_by(self):
        trace = TraceCollector()
        trace.on_tx(0.0, AP, data(1), RATE)
        trace.on_tx(0.2, AP, data(2), RATE)
        assert trace.frames_sent_by(AP) == 2
        assert trace.frames_sent_by(CAR1) == 0

    def test_clear(self):
        trace = TraceCollector()
        trace.on_tx(0.0, AP, data(1), RATE)
        trace.on_rx(0.1, CAR1, data(1), LossCause.DELIVERED, 10.0, -80.0)
        trace.clear()
        assert trace.tx_records == []
        assert trace.rx_records == []
        assert trace.delivered_seqs(CAR1, CAR1) == set()

    def test_rx_record_delivered_property(self):
        trace = TraceCollector()
        trace.on_rx(1.0, CAR1, data(1), LossCause.DELIVERED, 10.0, -80.0)
        trace.on_rx(1.1, CAR1, data(2), LossCause.INTERFERENCE, 0.0, -85.0)
        assert trace.rx_records[0].delivered
        assert not trace.rx_records[1].delivered


class TestSlots:
    def test_collector_has_no_instance_dict(self):
        # Touched on every TX/RX: slotted like the other hot-path objects.
        assert not hasattr(TraceCollector(), "__dict__")

    def test_collector_is_smaller_than_dict_control(self):
        import sys
        from collections import defaultdict

        class DictCollector:  # same shape, no __slots__ — the control
            def __init__(self):
                self.tx_records = []
                self.rx_records = []
                self._data_deliveries = defaultdict(dict)
                self._data_transmissions = defaultdict(dict)

        slotted = TraceCollector()
        control = DictCollector()
        assert sys.getsizeof(slotted) < (
            sys.getsizeof(control) + sys.getsizeof(control.__dict__)
        )
