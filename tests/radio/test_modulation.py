"""802.11 rate ladder and BER curves."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RadioError
from repro.radio.modulation import (
    DSSS_RATES,
    OFDM_RATES,
    PhyScheme,
    rate_by_name,
)

ALL_RATES = DSSS_RATES + OFDM_RATES


class TestRegistry:
    def test_lookup_known(self):
        rate = rate_by_name("dsss-1")
        assert rate.bitrate_bps == 1_000_000.0
        assert rate.scheme is PhyScheme.DSSS

    def test_lookup_ofdm(self):
        rate = rate_by_name("ofdm-54")
        assert rate.bitrate_bps == 54_000_000.0
        assert rate.scheme is PhyScheme.OFDM

    def test_unknown_raises(self):
        with pytest.raises(RadioError):
            rate_by_name("dsss-99")

    def test_ladder_complete(self):
        assert len(DSSS_RATES) == 4
        assert len(OFDM_RATES) == 8

    def test_bitrates_strictly_increasing_within_families(self):
        for family in (DSSS_RATES, OFDM_RATES):
            rates = [r.bitrate_bps for r in family]
            assert rates == sorted(rates)
            assert len(set(rates)) == len(rates)


class TestBerCurves:
    @pytest.mark.parametrize("rate", ALL_RATES, ids=lambda r: r.name)
    def test_ber_bounded(self, rate):
        for snr_db in (-20.0, -5.0, 0.0, 5.0, 15.0, 30.0):
            ber = rate.bit_error_rate(snr_db)
            assert 0.0 <= ber <= 0.5 + 1e-12

    @pytest.mark.parametrize("rate", ALL_RATES, ids=lambda r: r.name)
    def test_ber_monotone_decreasing_in_snr(self, rate):
        snrs = [-10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0]
        bers = [rate.bit_error_rate(snr) for snr in snrs]
        for lo, hi in zip(bers, bers[1:]):
            assert hi <= lo + 1e-12

    def test_ber_high_snr_negligible(self):
        assert rate_by_name("dsss-1").bit_error_rate(10.0) < 1e-9
        assert rate_by_name("ofdm-54").bit_error_rate(35.0) < 1e-6

    def test_faster_rates_need_more_snr(self):
        """At a fixed mid-range SNR, higher rates have higher BER."""
        snr = 6.0
        assert rate_by_name("dsss-1").bit_error_rate(snr) < rate_by_name(
            "dsss-11"
        ).bit_error_rate(snr)
        assert rate_by_name("ofdm-6").bit_error_rate(snr) < rate_by_name(
            "ofdm-54"
        ).bit_error_rate(snr)

    def test_dsss1_spreading_gain(self):
        """1 Mb/s works at SNRs where 11 Mb/s is dead."""
        snr = -3.0
        assert rate_by_name("dsss-1").bit_error_rate(snr) < 5e-3
        assert rate_by_name("dsss-11").bit_error_rate(snr) > 1e-2

    @given(st.floats(min_value=-30.0, max_value=40.0))
    def test_ber_finite_everywhere(self, snr_db):
        for rate in ALL_RATES:
            ber = rate.bit_error_rate(snr_db)
            assert 0.0 <= ber <= 0.5 + 1e-12
