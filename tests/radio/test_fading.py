"""Small-scale fading statistics."""

import numpy as np
import pytest

from repro.errors import RadioError
from repro.radio.fading import NoFading, RayleighFading, RicianFading


class TestNoFading:
    def test_zero(self):
        assert NoFading().sample_db() == 0.0


class TestRayleigh:
    def test_mean_linear_power_is_unity(self):
        model = RayleighFading(np.random.default_rng(1))
        gains = [10 ** (model.sample_db() / 10.0) for _ in range(20_000)]
        assert np.mean(gains) == pytest.approx(1.0, rel=0.05)

    def test_produces_deep_fades(self):
        model = RayleighFading(np.random.default_rng(2))
        samples = [model.sample_db() for _ in range(5_000)]
        assert min(samples) < -15.0  # deep fades exist

    def test_no_infinities(self):
        model = RayleighFading(np.random.default_rng(3))
        assert all(np.isfinite(model.sample_db()) for _ in range(1000))


class TestRician:
    def test_mean_linear_power_is_unity(self):
        model = RicianFading(np.random.default_rng(4), k_factor=4.0)
        gains = [10 ** (model.sample_db() / 10.0) for _ in range(20_000)]
        assert np.mean(gains) == pytest.approx(1.0, rel=0.05)

    def test_large_k_approaches_no_fading(self):
        model = RicianFading(np.random.default_rng(5), k_factor=1000.0)
        samples = [model.sample_db() for _ in range(1000)]
        assert np.std(samples) < 0.5

    def test_small_k_has_more_spread_than_large_k(self):
        low = RicianFading(np.random.default_rng(6), k_factor=0.5)
        high = RicianFading(np.random.default_rng(6), k_factor=20.0)
        spread_low = np.std([low.sample_db() for _ in range(5000)])
        spread_high = np.std([high.sample_db() for _ in range(5000)])
        assert spread_low > spread_high

    def test_negative_k_rejected(self):
        with pytest.raises(RadioError):
            RicianFading(np.random.default_rng(7), k_factor=-1.0)
