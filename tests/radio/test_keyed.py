"""Counter-based randomness: determinism, independence, statistics."""

import numpy as np
import pytest

from repro.radio.keyed import KeyedRandom, stable_hash64


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash64(("ap", 3)) == stable_hash64(("ap", 3))

    def test_distinct_inputs_distinct_hashes(self):
        values = [1, 2, "a", "b", ("a", 1), ("a", 2), (1, "a")]
        hashes = {stable_hash64(v) for v in values}
        assert len(hashes) == len(values)

    def test_int_and_string_forms_differ(self):
        assert stable_hash64(1) != stable_hash64("1")


class TestKeyedRandom:
    def test_pure_function_of_keys(self):
        keyed = KeyedRandom(42)
        assert keyed.normal(1, 2, 3) == keyed.normal(1, 2, 3)
        assert keyed.uniform(7) == keyed.uniform(7)

    def test_same_seed_same_values(self):
        assert KeyedRandom(9).normal(1, 2) == KeyedRandom(9).normal(1, 2)

    def test_different_seeds_different_values(self):
        assert KeyedRandom(1).normal(5) != KeyedRandom(2).normal(5)

    def test_call_order_is_irrelevant(self):
        forward = KeyedRandom(3)
        backward = KeyedRandom(3)
        a = [forward.normal(i) for i in range(50)]
        b = [backward.normal(i) for i in reversed(range(50))]
        assert a == list(reversed(b))

    def test_uniform_range_and_moments(self):
        keyed = KeyedRandom(11)
        values = [keyed.uniform(i) for i in range(20_000)]
        assert all(0.0 < v < 1.0 for v in values)
        assert np.mean(values) == pytest.approx(0.5, abs=0.01)
        assert np.var(values) == pytest.approx(1.0 / 12.0, rel=0.05)

    def test_normal_moments(self):
        keyed = KeyedRandom(12)
        values = [keyed.normal(i) for i in range(20_000)]
        assert np.mean(values) == pytest.approx(0.0, abs=0.03)
        assert np.std(values) == pytest.approx(1.0, rel=0.03)

    def test_exponential_moments(self):
        keyed = KeyedRandom(13)
        values = [keyed.exponential(i) for i in range(20_000)]
        assert np.mean(values) == pytest.approx(1.0, rel=0.05)

    def test_key_dimensions_are_independent(self):
        keyed = KeyedRandom(14)
        # (a, b) must not collide with (b, a) or with (a+1, b-1) patterns.
        pairs = [(a, b) for a in range(100) for b in range(100)]
        values = {keyed.normal(a, b) for a, b in pairs}
        assert len(values) == len(pairs)

    def test_from_rng_is_reproducible(self):
        a = KeyedRandom.from_rng(np.random.default_rng(5))
        b = KeyedRandom.from_rng(np.random.default_rng(5))
        assert a.normal(1) == b.normal(1)
