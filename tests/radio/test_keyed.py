"""Counter-based randomness: determinism, independence, statistics."""

import numpy as np
import pytest

from repro.radio.keyed import KeyedRandom, stable_hash64


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash64(("ap", 3)) == stable_hash64(("ap", 3))

    def test_distinct_inputs_distinct_hashes(self):
        values = [1, 2, "a", "b", ("a", 1), ("a", 2), (1, "a")]
        hashes = {stable_hash64(v) for v in values}
        assert len(hashes) == len(values)

    def test_int_and_string_forms_differ(self):
        assert stable_hash64(1) != stable_hash64("1")


class TestKeyedRandom:
    def test_pure_function_of_keys(self):
        keyed = KeyedRandom(42)
        assert keyed.normal(1, 2, 3) == keyed.normal(1, 2, 3)
        assert keyed.uniform(7) == keyed.uniform(7)

    def test_same_seed_same_values(self):
        assert KeyedRandom(9).normal(1, 2) == KeyedRandom(9).normal(1, 2)

    def test_different_seeds_different_values(self):
        assert KeyedRandom(1).normal(5) != KeyedRandom(2).normal(5)

    def test_call_order_is_irrelevant(self):
        forward = KeyedRandom(3)
        backward = KeyedRandom(3)
        a = [forward.normal(i) for i in range(50)]
        b = [backward.normal(i) for i in reversed(range(50))]
        assert a == list(reversed(b))

    def test_uniform_range_and_moments(self):
        keyed = KeyedRandom(11)
        values = [keyed.uniform(i) for i in range(20_000)]
        assert all(0.0 < v < 1.0 for v in values)
        assert np.mean(values) == pytest.approx(0.5, abs=0.01)
        assert np.var(values) == pytest.approx(1.0 / 12.0, rel=0.05)

    def test_normal_moments(self):
        keyed = KeyedRandom(12)
        values = [keyed.normal(i) for i in range(20_000)]
        assert np.mean(values) == pytest.approx(0.0, abs=0.03)
        assert np.std(values) == pytest.approx(1.0, rel=0.03)

    def test_exponential_moments(self):
        keyed = KeyedRandom(13)
        values = [keyed.exponential(i) for i in range(20_000)]
        assert np.mean(values) == pytest.approx(1.0, rel=0.05)

    def test_key_dimensions_are_independent(self):
        keyed = KeyedRandom(14)
        # (a, b) must not collide with (b, a) or with (a+1, b-1) patterns.
        pairs = [(a, b) for a in range(100) for b in range(100)]
        values = {keyed.normal(a, b) for a, b in pairs}
        assert len(values) == len(pairs)

    def test_from_rng_is_reproducible(self):
        a = KeyedRandom.from_rng(np.random.default_rng(5))
        b = KeyedRandom.from_rng(np.random.default_rng(5))
        assert a.normal(1) == b.normal(1)


class TestKeyedBatch:
    """The vectorized batch variants must be bit-identical to the scalar
    methods for every key — including full-64-bit link hashes, whose
    ``word + GAMMA`` sums exercise the 65-bit carry the scalar code's
    unmasked Python ints carry implicitly."""

    def _keys(self, n=4096, seed=0):
        rng = np.random.default_rng(seed)
        hashes = rng.integers(0, 1 << 63, n, dtype=np.int64).astype(
            np.uint64
        ) * np.uint64(2) + rng.integers(0, 2, n, dtype=np.int64).astype(np.uint64)
        signed = rng.integers(-(10**9), 10**9, n)
        return hashes, signed

    def test_words_batch_matches_scalar(self):
        keyed = KeyedRandom(1234)
        hashes, signed = self._keys()
        words = keyed.words_batch([hashes, 17, signed], hashes.shape)
        for i in (0, 1, 5, 77, 4095):
            assert int(words[i]) == keyed._word(
                (int(hashes[i]), 17, int(signed[i]))
            )

    def test_uniform_batch_matches_scalar(self):
        keyed = KeyedRandom(9)
        hashes, signed = self._keys(seed=1)
        batch = keyed.uniform_batch([hashes, signed], hashes.shape)
        reference = np.array(
            [
                keyed.uniform(int(h), int(k))
                for h, k in zip(hashes.tolist(), signed.tolist())
            ]
        )
        assert np.array_equal(batch, reference)

    def test_normal_batch_matches_scalar(self):
        keyed = KeyedRandom(10)
        hashes, signed = self._keys(seed=2)
        batch = keyed.normal_batch([hashes, 3, signed], hashes.shape)
        reference = np.array(
            [
                keyed.normal(int(h), 3, int(k))
                for h, k in zip(hashes.tolist(), signed.tolist())
            ]
        )
        assert np.array_equal(batch, reference)

    def test_normal_pair_batch_matches_scalar(self):
        keyed = KeyedRandom(11)
        hashes, _ = self._keys(n=2048, seed=3)
        batch_re, batch_im = keyed.normal_pair_batch([hashes, 5], hashes.shape)
        reference = [keyed.normal_pair(int(h), 5) for h in hashes.tolist()]
        assert np.array_equal(batch_re, np.array([re for re, _ in reference]))
        assert np.array_equal(batch_im, np.array([im for _, im in reference]))

    def test_exponential_batch_matches_scalar(self):
        keyed = KeyedRandom(12)
        _, signed = self._keys(n=2048, seed=4)
        batch = keyed.exponential_batch([signed, 1], signed.shape)
        reference = np.array(
            [keyed.exponential(int(k), 1) for k in signed.tolist()]
        )
        assert np.array_equal(batch, reference)

    def test_2d_shapes_broadcast_columns(self):
        keyed = KeyedRandom(13)
        hashes, _ = self._keys(n=16, seed=5)
        rows = np.arange(3, dtype=np.int64)[:, None]
        words = keyed.words_batch([hashes, rows], (3, 16))
        for r in range(3):
            for c in (0, 7, 15):
                assert int(words[r, c]) == keyed._word((int(hashes[c]), r))


class TestLibmMaps:
    """np SIMD transcendentals differ from libm in the last ulp; the maps
    below are what keeps the batch kernel bit-identical."""

    def test_libm_map_log_matches_math(self):
        import math

        from repro.radio.keyed import libm_map

        values = np.random.default_rng(0).uniform(1e-12, 1e6, 10_000)
        out = libm_map(math.log, values)
        assert out.shape == values.shape
        assert all(
            a == math.log(b) for a, b in zip(out.tolist(), values.tolist())
        )

    def test_libm_map_preserves_2d_shape(self):
        import math

        from repro.radio.keyed import libm_map

        values = np.random.default_rng(1).uniform(0.1, 10.0, (8, 5))
        out = libm_map(math.log10, values)
        assert out.shape == (8, 5)
        assert out[3, 2] == math.log10(float(values[3, 2]))

    def test_hypot_map_matches_math(self):
        import math

        from repro.radio.keyed import hypot_map

        rng = np.random.default_rng(2)
        dx = rng.uniform(-1e5, 1e5, 10_000)
        dy = rng.uniform(-1e5, 1e5, 10_000)
        out = hypot_map(dx, dy)
        assert all(
            h == math.hypot(a, b)
            for h, a, b in zip(out.tolist(), dx.tolist(), dy.tolist())
        )
