"""Shadowing processes: correlation structure and composition."""

import numpy as np
import pytest

from repro.errors import RadioError
from repro.geom import Vec2
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    NoShadowing,
    TemporalTxShadowing,
)


def rng():
    return np.random.default_rng(123)


class TestNoShadowing:
    def test_always_zero(self):
        model = NoShadowing()
        assert model.sample_db(("a", "b"), Vec2(0, 0), Vec2(5, 5)) == 0.0

    def test_reset_is_noop(self):
        NoShadowing().reset()


class TestGudmundson:
    def test_stationary_link_keeps_value(self):
        model = GudmundsonShadowing(rng(), sigma_db=6.0)
        link = ("ap", "car")
        first = model.sample_db(link, Vec2(0, 0), Vec2(10, 0))
        second = model.sample_db(link, Vec2(0, 0), Vec2(10, 0))
        assert second == pytest.approx(first)

    def test_long_movement_decorrelates(self):
        model = GudmundsonShadowing(
            rng(), sigma_db=6.0, decorrelation_distance_m=10.0
        )
        link = ("ap", "car")
        values = [model.sample_db(link, Vec2(0, 0), Vec2(1000.0 * i, 0)) for i in range(300)]
        # Essentially i.i.d. N(0, 6²): sample std close to 6.
        assert np.std(values) == pytest.approx(6.0, rel=0.25)

    def test_small_steps_are_correlated(self):
        model = GudmundsonShadowing(
            rng(), sigma_db=6.0, decorrelation_distance_m=50.0
        )
        link = ("ap", "car")
        previous = model.sample_db(link, Vec2(0, 0), Vec2(0, 0))
        diffs = []
        for i in range(1, 200):
            value = model.sample_db(link, Vec2(0, 0), Vec2(0.5 * i, 0))
            diffs.append(value - previous)
            previous = value
        # Step-to-step changes must be much smaller than the marginal std.
        assert np.std(diffs) < 2.5

    def test_different_links_independent(self):
        model = GudmundsonShadowing(rng(), sigma_db=6.0)
        a = [model.sample_db(("ap", f"c{i}"), Vec2(0, 0), Vec2(5, 0)) for i in range(200)]
        assert np.std(a) == pytest.approx(6.0, rel=0.3)

    def test_reset_forgets_state(self):
        model = GudmundsonShadowing(rng(), sigma_db=6.0)
        link = ("ap", "car")
        first = model.sample_db(link, Vec2(0, 0), Vec2(0, 0))
        model.reset()
        second = model.sample_db(link, Vec2(0, 0), Vec2(0, 0))
        assert first != second  # fresh draw, not the stored value

    def test_head_on_pass_decorrelates(self):
        """Two cars passing each other must not share one frozen draw.

        In a head-on pass the endpoint position *sum* is stationary —
        only the separation changes — so the field must also be indexed
        by separation (regression for the bidirectional scenario's
        oncoming-car links).
        """
        model = GudmundsonShadowing(
            rng(), sigma_db=6.0, decorrelation_distance_m=10.0
        )
        link = ("east", "west")
        values = [
            model.sample_db(link, Vec2(25.0 * t, 0.0), Vec2(1000.0 - 25.0 * t, 3.0))
            for t in range(40)
        ]
        assert np.std(values) > 2.0  # decorrelates over the pass
        assert len(set(values)) > 10  # not one frozen realisation

    def test_reciprocal_in_endpoint_order(self):
        model = GudmundsonShadowing(rng(), sigma_db=6.0)
        link = ("a", "b")
        forward = model.sample_db(link, Vec2(3, 1), Vec2(40, 2))
        reverse = model.sample_db(link, Vec2(40, 2), Vec2(3, 1))
        assert forward == pytest.approx(reverse)

    def test_validation(self):
        with pytest.raises(RadioError):
            GudmundsonShadowing(rng(), sigma_db=-1.0)
        with pytest.raises(RadioError):
            GudmundsonShadowing(rng(), decorrelation_distance_m=0.0)


class TestTemporalTx:
    def test_same_instant_same_value_for_all_hub_links(self):
        model = TemporalTxShadowing(rng(), sigma_db=4.0, tau_s=2.0, hub="ap")
        a = model.sample_db(("ap", "car1"), Vec2(0, 0), Vec2(5, 0), time=1.0)
        b = model.sample_db(("car2", "ap"), Vec2(0, 0), Vec2(9, 0), time=1.0)
        assert b == pytest.approx(a)

    def test_non_hub_links_have_own_processes(self):
        model = TemporalTxShadowing(rng(), sigma_db=4.0, tau_s=2.0, hub="ap")
        a = model.sample_db(("car1", "car2"), Vec2(0, 0), Vec2(5, 0), time=1.0)
        b = model.sample_db(("car1", "car3"), Vec2(0, 0), Vec2(5, 0), time=1.0)
        assert a != b

    def test_long_gap_decorrelates(self):
        model = TemporalTxShadowing(rng(), sigma_db=4.0, tau_s=1.0, hub="ap")
        values = [
            model.sample_db(("ap", "c"), Vec2(0, 0), Vec2(0, 0), time=100.0 * i)
            for i in range(300)
        ]
        assert np.std(values) == pytest.approx(4.0, rel=0.25)

    def test_short_gap_correlated(self):
        model = TemporalTxShadowing(rng(), sigma_db=4.0, tau_s=10.0, hub="ap")
        v0 = model.sample_db(("ap", "c"), Vec2(0, 0), Vec2(0, 0), time=0.0)
        v1 = model.sample_db(("ap", "c"), Vec2(0, 0), Vec2(0, 0), time=0.01)
        assert abs(v1 - v0) < 1.0

    def test_validation(self):
        with pytest.raises(RadioError):
            TemporalTxShadowing(rng(), sigma_db=-1.0)
        with pytest.raises(RadioError):
            TemporalTxShadowing(rng(), tau_s=0.0)

    def test_reset(self):
        model = TemporalTxShadowing(rng(), sigma_db=4.0, hub="ap")
        first = model.sample_db(("ap", "c"), Vec2(0, 0), Vec2(0, 0), time=0.0)
        model.reset()
        second = model.sample_db(("ap", "c"), Vec2(0, 0), Vec2(0, 0), time=0.0)
        assert first != second


class TestComposite:
    def test_sums_components(self):
        class Constant(NoShadowing):
            def __init__(self, value):
                self.value = value

            def sample_db(self, link, tx_pos, rx_pos, time=0.0):
                return self.value

        model = CompositeShadowing([Constant(2.0), Constant(-0.5)])
        assert model.sample_db(("a", "b"), Vec2(0, 0), Vec2(0, 0)) == pytest.approx(1.5)

    def test_requires_components(self):
        with pytest.raises(RadioError):
            CompositeShadowing([])

    def test_reset_propagates(self):
        inner = GudmundsonShadowing(rng(), sigma_db=6.0)
        model = CompositeShadowing([inner])
        link = ("a", "b")
        first = model.sample_db(link, Vec2(0, 0), Vec2(0, 0))
        model.reset()
        second = model.sample_db(link, Vec2(0, 0), Vec2(0, 0))
        assert first != second
