"""Property pin: the batch channel kernel is bit-identical to the scalar path.

Every ``*_batch`` method must return, lane for lane, *exactly* the float
the scalar reference produces — ``==``, never ``isclose``.  Hypothesis
drives random topologies, link identities, and keys through each layer
(path loss, obstruction, shadowing, fading, the channel façade, the FER
curve) and the full medium broadcast, so any reordering of float
operations or NumPy/libm divergence fails loudly here before it can rot
the scenario-level A/B pins.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom import Vec2
from repro.geom.shapes import AxisRect
from repro.radio.batch import broadcast_samples
from repro.radio.channel import Channel
from repro.radio.error_models import frame_error_rate, frame_error_rate_batch
from repro.radio.fading import NoFading, RayleighFading, RicianFading
from repro.radio.modulation import rate_by_name
from repro.radio.obstruction import BuildingObstruction
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MemoizedPathLoss,
    TwoRayGroundPathLoss,
)
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    NoShadowing,
    TemporalTxShadowing,
)

coords = st.floats(
    min_value=-5e3, max_value=5e3, allow_nan=False, allow_infinity=False
)
distances = st.lists(
    st.floats(min_value=0.0, max_value=2e4, allow_nan=False),
    min_size=1,
    max_size=40,
)


def positions_strategy(max_size=24):
    return st.lists(st.tuples(coords, coords), min_size=1, max_size=max_size)


@st.composite
def topology(draw, max_nodes=24):
    tx = draw(st.tuples(coords, coords))
    rxs = draw(positions_strategy(max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return tx, rxs, seed


class TestPathLossBatchParity:
    @given(distances)
    def test_log_distance(self, values):
        model = LogDistancePathLoss(exponent=3.2, reference_loss_db=41.0)
        arr = np.array(values)
        assert np.array_equal(
            model.loss_db_batch(arr), np.array([model.loss_db(d) for d in values])
        )

    @given(distances)
    def test_free_space(self, values):
        model = FreeSpacePathLoss()
        arr = np.array(values)
        assert np.array_equal(
            model.loss_db_batch(arr), np.array([model.loss_db(d) for d in values])
        )

    @given(distances)
    def test_two_ray(self, values):
        model = TwoRayGroundPathLoss(tx_height_m=6.0, rx_height_m=1.5)
        arr = np.array(values)
        assert np.array_equal(
            model.loss_db_batch(arr), np.array([model.loss_db(d) for d in values])
        )

    @given(distances)
    def test_memoized_with_warm_and_cold_cache(self, values):
        model = MemoizedPathLoss(LogDistancePathLoss(exponent=2.9))
        # Warm half the cache through the scalar path first.
        for d in values[::2]:
            model.loss_db(d)
        arr = np.array(values)
        assert np.array_equal(
            model.loss_db_batch(arr), np.array([model.loss_db(d) for d in values])
        )


class TestObstructionBatchParity:
    @given(topology(max_nodes=12))
    def test_buildings(self, topo):
        (tx_x, tx_y), rxs, _ = topo
        model = BuildingObstruction(
            [AxisRect(-50.0, -50.0, 60.0, 40.0)],
            loss_per_building_db=28.0,
        )
        tx = Vec2(tx_x, tx_y)
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        expected = np.array(
            [model.extra_loss_db(tx, Vec2(x, y)) for x, y in rxs]
        )
        assert np.array_equal(model.extra_loss_db_batch(tx, xs, ys), expected)


def _links_for(rxs):
    links = [(0, i + 1) for i in range(len(rxs))]
    from repro.radio.keyed import stable_hash64

    hashes = np.empty(len(rxs), dtype=np.uint64)
    for i, link in enumerate(links):
        hashes[i] = stable_hash64(link)
    return links, hashes


class TestShadowingBatchParity:
    @settings(deadline=None)
    @given(topology())
    def test_gudmundson(self, topo):
        (tx_x, tx_y), rxs, seed = topo
        model = GudmundsonShadowing(
            np.random.default_rng(seed), sigma_db=5.0, decorrelation_distance_m=17.0
        )
        tx = Vec2(tx_x, tx_y)
        links, hashes = _links_for(rxs)
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        dists = np.array([tx.distance_to(Vec2(x, y)) for x, y in rxs])
        batch = model.sample_db_batch(links, hashes, tx, xs, ys, dists)
        reference = np.array(
            [model.sample_db(link, tx, Vec2(x, y)) for link, (x, y) in zip(links, rxs)]
        )
        assert np.array_equal(batch, reference)
        # Second pass hits the corner-block memo — still identical.
        assert np.array_equal(
            model.sample_db_batch(links, hashes, tx, xs, ys, dists), reference
        )

    @settings(deadline=None)
    @given(topology(), st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    def test_temporal_tx_with_hub(self, topo, time):
        (tx_x, tx_y), rxs, seed = topo
        model = TemporalTxShadowing(
            np.random.default_rng(seed), sigma_db=4.0, tau_s=2.0, hub=0
        )
        tx = Vec2(tx_x, tx_y)
        links, hashes = _links_for(rxs)
        # Make some links hub-free so both process shapes are exercised.
        links = [
            link if i % 3 else (i + 1, i + 100) for i, link in enumerate(links)
        ]
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        dists = np.array([tx.distance_to(Vec2(x, y)) for x, y in rxs])
        batch = model.sample_db_batch(links, hashes, tx, xs, ys, dists, time)
        reference = np.array(
            [
                model.sample_db(link, tx, Vec2(x, y), time)
                for link, (x, y) in zip(links, rxs)
            ]
        )
        assert np.array_equal(batch, reference)

    def test_temporal_tx_advances_like_scalar_over_time(self):
        scalar = TemporalTxShadowing(
            np.random.default_rng(3), sigma_db=4.0, tau_s=1.0, hub=None
        )
        batch = TemporalTxShadowing(
            np.random.default_rng(3), sigma_db=4.0, tau_s=1.0, hub=None
        )
        rxs = [(10.0 * i, 0.0) for i in range(8)]
        links, hashes = _links_for(rxs)
        tx = Vec2(0.0, 0.0)
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        dists = np.hypot(xs, ys)
        # Interleaved queries at increasing times: the lazily advanced
        # chains must stay in lockstep between the two instances.
        for time in [0.0, 0.3, 1.7, 1.8, 6.0, 6.1, 30.0]:
            reference = np.array(
                [
                    scalar.sample_db(link, tx, Vec2(x, y), time)
                    for link, (x, y) in zip(links, rxs)
                ]
            )
            got = batch.sample_db_batch(links, hashes, tx, xs, ys, dists, time)
            assert np.array_equal(got, reference)

    @settings(deadline=None)
    @given(topology())
    def test_composite(self, topo):
        (tx_x, tx_y), rxs, seed = topo
        model = CompositeShadowing(
            [
                GudmundsonShadowing(np.random.default_rng(seed), sigma_db=3.0),
                TemporalTxShadowing(
                    np.random.default_rng(seed + 1), sigma_db=2.0, hub=0
                ),
            ]
        )
        tx = Vec2(tx_x, tx_y)
        links, hashes = _links_for(rxs)
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        dists = np.array([tx.distance_to(Vec2(x, y)) for x, y in rxs])
        batch = model.sample_db_batch(links, hashes, tx, xs, ys, dists)
        reference = np.array(
            [model.sample_db(link, tx, Vec2(x, y)) for link, (x, y) in zip(links, rxs)]
        )
        assert np.array_equal(batch, reference)


class TestFadingBatchParity:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=40),
    )
    def test_rician(self, seed, tx_seq, n):
        model = RicianFading(np.random.default_rng(seed), k_factor=4.0)
        hashes = np.random.default_rng(seed + 1).integers(
            0, 1 << 63, n
        ).astype(np.uint64)
        batch = model.sample_db_batch(hashes, tx_seq)
        reference = np.array(
            [model.sample_db((int(h), tx_seq)) for h in hashes.tolist()]
        )
        assert np.array_equal(batch, reference)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=1, max_value=10_000),
    )
    def test_rayleigh(self, seed, tx_seq):
        model = RayleighFading(np.random.default_rng(seed))
        hashes = np.random.default_rng(seed + 1).integers(
            0, 1 << 63, 32
        ).astype(np.uint64)
        batch = model.sample_db_batch(hashes, tx_seq)
        reference = np.array(
            [model.sample_db((int(h), tx_seq)) for h in hashes.tolist()]
        )
        assert np.array_equal(batch, reference)


class TestErrorModelBatchParity:
    @given(
        st.sampled_from(
            ["dsss-1", "dsss-2", "dsss-5.5", "dsss-11", "ofdm-6", "ofdm-24", "ofdm-54"]
        ),
        st.lists(
            st.floats(min_value=-60.0, max_value=60.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=2000),
    )
    def test_frame_error_rate(self, rate_name, snrs, size):
        rate = rate_by_name(rate_name)
        arr = np.array(snrs)
        batch = frame_error_rate_batch(rate, arr, size)
        reference = np.array([frame_error_rate(rate, snr, size) for snr in snrs])
        assert np.array_equal(batch, reference)


def _full_channel(seed):
    return Channel(
        pathloss=LogDistancePathLoss(exponent=3.4, reference_loss_db=40.0),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(np.random.default_rng(seed), sigma_db=4.0),
                TemporalTxShadowing(
                    np.random.default_rng(seed + 1), sigma_db=3.0, hub=0
                ),
            ]
        ),
        fading=RicianFading(np.random.default_rng(seed + 2), k_factor=4.0),
        rng=np.random.default_rng(seed + 3),
    )


class TestChannelBatchParity:
    """The satellite property pin: for random topologies and keys, the
    batch kernel's output arrays equal the scalar reference lane for
    lane — ``==``, not ``isclose``."""

    @settings(deadline=None, max_examples=60)
    @given(topology(), st.integers(min_value=1, max_value=100_000))
    def test_sample_batch_equals_scalar_samples(self, topo, tx_seq):
        (tx_x, tx_y), rxs, seed = topo
        channel = _full_channel(seed)
        tx = Vec2(tx_x, tx_y)
        rx_ids = [i + 1 for i in range(len(rxs))]
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        budget = channel.link_budget_batch(tx, xs, ys)
        rx_power, mean_power = channel.sample_batch(
            0, rx_ids, tx, xs, ys, 17.0, np.zeros(len(rxs)), 0.25, tx_seq, budget
        )
        for i, (x, y) in enumerate(rxs):
            sample = channel.sample(
                0, rx_ids[i], tx, Vec2(x, y), 17.0, 0.0, time=0.25, tx_seq=tx_seq
            )
            assert rx_power[i] == sample.rx_power_dbm
            assert mean_power[i] == sample.mean_rx_power_dbm
            assert budget[0][i] == sample.distance_m

    @settings(deadline=None, max_examples=60)
    @given(topology())
    def test_link_budget_batch_equals_scalar(self, topo):
        (tx_x, tx_y), rxs, seed = topo
        channel = _full_channel(seed)
        tx = Vec2(tx_x, tx_y)
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        dists, losses = channel.link_budget_batch(tx, xs, ys)
        for i, (x, y) in enumerate(rxs):
            d, loss = channel.link_budget(tx, Vec2(x, y))
            assert dists[i] == d
            assert losses[i] == loss

    @settings(deadline=None, max_examples=40)
    @given(topology(), st.integers(min_value=1, max_value=100_000))
    def test_broadcast_samples_equals_scalar_pipeline(self, topo, tx_seq):
        """The whole kernel: cull + sample + sensitivity filter."""
        (tx_x, tx_y), rxs, seed = topo
        channel = _full_channel(seed)
        tx = Vec2(tx_x, tx_y)
        rx_ids = [i + 1 for i in range(len(rxs))]
        xs = np.array([x for x, _ in rxs])
        ys = np.array([y for _, y in rxs])
        thresholds = np.full(len(rxs), -105.0)
        headroom = 12.0
        result = broadcast_samples(
            channel, 0, rx_ids, tx, xs, ys, np.zeros(len(rxs)), thresholds,
            17.0, headroom, 0.25, tx_seq,
        )
        kept = []
        for i, (x, y) in enumerate(rxs):
            budget = channel.link_budget(tx, Vec2(x, y))
            reachable = 17.0 + 0.0 - budget[1] + headroom >= -105.0
            if not reachable:
                continue
            sample = channel.sample(
                0, rx_ids[i], tx, Vec2(x, y), 17.0, 0.0,
                time=0.25, tx_seq=tx_seq, budget=budget,
            )
            if sample.mean_rx_power_dbm < -105.0:
                continue
            kept.append((i, sample))
        assert result.kept.tolist() == [i for i, _ in kept]
        assert result.rx_power_dbm.tolist() == [
            s.rx_power_dbm for _, s in kept
        ]
        assert result.mean_rx_power_dbm.tolist() == [
            s.mean_rx_power_dbm for _, s in kept
        ]
        assert result.distance_m.tolist() == [s.distance_m for _, s in kept]


class TestSimpleModelsBatch:
    def test_no_shadowing_and_no_fading_zero_lanes(self):
        links, hashes = _links_for([(1.0, 2.0), (3.0, 4.0)])
        xs = np.array([1.0, 3.0])
        ys = np.array([2.0, 4.0])
        assert np.array_equal(
            NoShadowing().sample_db_batch(
                links, hashes, Vec2(0, 0), xs, ys, np.hypot(xs, ys)
            ),
            np.zeros(2),
        )
        assert np.array_equal(NoFading().sample_db_batch(hashes, 7), np.zeros(2))
