"""Channel façade: link budget assembly and delivery draws."""

import numpy as np
import pytest

from repro.geom import Vec2
from repro.radio.channel import Channel
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.obstruction import BuildingObstruction
from repro.geom.shapes import AxisRect
from repro.radio.shadowing import NoShadowing

RATE = rate_by_name("dsss-1")


def ideal_channel():
    return Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        shadowing=NoShadowing(),
        rng=np.random.default_rng(0),
    )


class TestLinkKey:
    def test_symmetric(self):
        assert Channel.link_key(1, 2) == Channel.link_key(2, 1)

    def test_distinct_links_distinct_keys(self):
        assert Channel.link_key(1, 2) != Channel.link_key(1, 3)


class TestSample:
    def test_deterministic_without_random_components(self):
        channel = ideal_channel()
        s1 = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        s2 = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        assert s1.rx_power_dbm == s2.rx_power_dbm

    def test_budget_arithmetic(self):
        channel = ideal_channel()
        sample = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        # 15 dBm - (40 + 30·log10(10)) = 15 - 70 = -55 dBm.
        assert sample.rx_power_dbm == pytest.approx(-55.0)
        assert sample.mean_rx_power_dbm == pytest.approx(-55.0)
        assert sample.distance_m == pytest.approx(10.0)

    def test_rx_gain_adds(self):
        channel = ideal_channel()
        with_gain = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0, rx_gain_db=6.0)
        assert with_gain.rx_power_dbm == pytest.approx(-49.0)

    def test_power_decreases_with_distance(self):
        channel = ideal_channel()
        near = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        far = channel.sample("a", "b", Vec2(0, 0), Vec2(100, 0), 15.0)
        assert far.rx_power_dbm < near.rx_power_dbm

    def test_obstruction_applied(self):
        blocked = Channel(
            pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
            obstruction=BuildingObstruction(
                [AxisRect(4.0, -1.0, 6.0, 1.0)], loss_per_building_db=30.0
            ),
            rng=np.random.default_rng(0),
        )
        clear = ideal_channel()
        b = blocked.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        c = clear.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        assert b.rx_power_dbm == pytest.approx(c.rx_power_dbm - 30.0)


class TestDelivery:
    def test_strong_signal_always_delivered(self):
        channel = ideal_channel()
        sample = channel.sample("a", "b", Vec2(0, 0), Vec2(5, 0), 15.0)

        class F:
            size_bytes = 1000

        assert all(
            channel.frame_delivered(sample, RATE, F(), -95.0) for _ in range(100)
        )

    def test_buried_signal_never_delivered(self):
        channel = ideal_channel()
        sample = channel.sample("a", "b", Vec2(0, 0), Vec2(5000, 0), 15.0)

        class F:
            size_bytes = 1000

        assert not any(
            channel.frame_delivered(sample, RATE, F(), -95.0) for _ in range(100)
        )

    def test_reset_clears_shadowing(self):
        from repro.radio.shadowing import GudmundsonShadowing

        shadowing = GudmundsonShadowing(np.random.default_rng(1), sigma_db=6.0)
        channel = Channel(shadowing=shadowing, rng=np.random.default_rng(2))
        s1 = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        channel.reset()
        s2 = channel.sample("a", "b", Vec2(0, 0), Vec2(10, 0), 15.0)
        assert s1.rx_power_dbm != s2.rx_power_dbm
