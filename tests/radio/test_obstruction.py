"""Building obstruction model."""

import pytest

from repro.errors import RadioError
from repro.geom import Vec2
from repro.geom.shapes import AxisRect
from repro.radio.obstruction import BuildingObstruction, NoObstruction


class TestNoObstruction:
    def test_zero(self):
        assert NoObstruction().extra_loss_db(Vec2(0, 0), Vec2(100, 100)) == 0.0


class TestBuildingObstruction:
    @pytest.fixture
    def model(self):
        return BuildingObstruction(
            [AxisRect(10, 10, 20, 20), AxisRect(30, 10, 40, 20)],
            loss_per_building_db=25.0,
            max_buildings=2,
        )

    def test_clear_path(self, model):
        assert model.extra_loss_db(Vec2(0, 0), Vec2(50, 0)) == 0.0

    def test_one_building(self, model):
        assert model.extra_loss_db(Vec2(0, 15), Vec2(25, 15)) == 25.0

    def test_two_buildings(self, model):
        assert model.extra_loss_db(Vec2(0, 15), Vec2(50, 15)) == 50.0

    def test_cap_at_max_buildings(self):
        model = BuildingObstruction(
            [AxisRect(10 * i, 0, 10 * i + 5, 10) for i in range(1, 6)],
            loss_per_building_db=20.0,
            max_buildings=2,
        )
        assert model.extra_loss_db(Vec2(0, 5), Vec2(100, 5)) == 40.0

    def test_validation(self):
        with pytest.raises(RadioError):
            BuildingObstruction([], loss_per_building_db=-1.0)
        with pytest.raises(RadioError):
            BuildingObstruction([], max_buildings=0)

    def test_empty_building_list_is_clear(self):
        model = BuildingObstruction([])
        assert model.extra_loss_db(Vec2(0, 0), Vec2(1, 1)) == 0.0
