"""Property pin: the cross-broadcast kernel equals one-at-a-time evaluation.

The medium's coalescer concatenates the candidate lanes of several
same-instant broadcasts and evaluates them in one keyed pass
(:mod:`repro.radio.multibatch`).  Because every stochastic draw — the
Gudmundson corner probes, the temporal OU innovations, the fading
variates — is a pure function of its ``(link, transmission)`` key, any
partition of the lane set into passes must realise exactly the same
floats.  Hypothesis drives random topologies *and random partitions*
(including one-broadcast and zero-candidate slices) and asserts ``==``
lane for lane, never ``isclose``; the sequential Bernoulli delivery
stream gets its own pin at the bottom.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geom import Vec2
from repro.mac.frames import DataFrame
from repro.radio.batch import broadcast_samples
from repro.radio.channel import Channel, LinkSample
from repro.radio.error_models import frame_error_rate_batch
from repro.radio.fading import RicianFading
from repro.radio.keyed import hypot_map, stable_hash64
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)

coords = st.floats(
    min_value=-5e3, max_value=5e3, allow_nan=False, allow_infinity=False
)

HEADROOM_DB = 12.0
THRESHOLD_DBM = -105.0


@st.composite
def partitioned_broadcasts(draw, max_broadcasts=6, max_lanes=10):
    """A list of broadcasts: (tx position, tx power, candidate positions).

    Candidate lists may be empty (a broadcast whose only candidate was
    the transmitter itself), and a single-element outer list exercises
    the degenerate one-broadcast partition.
    """
    n = draw(st.integers(min_value=1, max_value=max_broadcasts))
    broadcasts = []
    for _ in range(n):
        tx = draw(st.tuples(coords, coords))
        power = draw(st.floats(min_value=5.0, max_value=30.0, allow_nan=False))
        rxs = draw(
            st.lists(st.tuples(coords, coords), min_size=0, max_size=max_lanes)
        )
        broadcasts.append((tx, power, rxs))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return broadcasts, seed


def _full_channel(seed):
    """The worst-case composite: grid-correlated + temporal shadowing,
    Rician fading — every keyed draw family the coalescer regroups."""
    return Channel(
        pathloss=LogDistancePathLoss(exponent=3.4, reference_loss_db=40.0),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(np.random.default_rng(seed), sigma_db=4.0),
                TemporalTxShadowing(
                    np.random.default_rng(seed + 1), sigma_db=3.0, hub=0
                ),
            ]
        ),
        fading=RicianFading(np.random.default_rng(seed + 2), k_factor=4.0),
        rng=np.random.default_rng(seed + 3),
    )


def _flatten(broadcasts):
    """Gather a partition into the flat lane columns the medium builds."""
    from repro.radio.multibatch import PendingSlice

    slices = []
    rx_ids, tx_xs, tx_ys, rx_xs, rx_ys = [], [], [], [], []
    powers, seqs = [], []
    lane = 0
    next_rx_id = 1000
    for k, ((txx, txy), power, rxs) in enumerate(broadcasts):
        start = lane
        for x, y in rxs:
            rx_ids.append(next_rx_id)
            next_rx_id += 1
            tx_xs.append(txx)
            tx_ys.append(txy)
            rx_xs.append(x)
            rx_ys.append(y)
            powers.append(power)
            seqs.append(k + 1)
            lane += 1
        slices.append(
            PendingSlice(k, Vec2(txx, txy), power, k + 1, start, lane)
        )
    return slices, rx_ids, (
        np.array(tx_xs), np.array(tx_ys), np.array(rx_xs), np.array(rx_ys),
        np.array(powers), np.array(seqs, dtype=np.int64),
    )


def _reference(channel, slices, rx_ids, columns, time):
    """One-at-a-time evaluation: broadcast_samples per pending slice."""
    tx_xs, tx_ys, rx_xs, rx_ys, powers, seqs = columns
    results = []
    for b in slices:
        sl = slice(b.start, b.stop)
        results.append(
            broadcast_samples(
                channel,
                b.tx_id,
                rx_ids[sl],
                b.tx_pos,
                rx_xs[sl],
                rx_ys[sl],
                np.zeros(b.stop - b.start),
                np.full(b.stop - b.start, THRESHOLD_DBM),
                b.tx_power_dbm,
                HEADROOM_DB,
                time,
                b.tx_seq,
            )
        )
    return results


def _run_multibatch(channel, slices, rx_ids, columns, time):
    from repro.radio.multibatch import multibroadcast_samples

    tx_xs, tx_ys, rx_xs, rx_ys, powers, seqs = columns
    total = len(rx_ids)
    return multibroadcast_samples(
        channel, slices, rx_ids, tx_xs, tx_ys, rx_xs, rx_ys,
        np.zeros(total), np.full(total, THRESHOLD_DBM), powers, seqs,
        HEADROOM_DB, time,
    )


def _assert_batches_equal(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.kept.tolist() == e.kept.tolist()
        assert g.rx_power_dbm.tolist() == e.rx_power_dbm.tolist()
        assert g.mean_rx_power_dbm.tolist() == e.mean_rx_power_dbm.tolist()
        assert g.distance_m.tolist() == e.distance_m.tolist()


class TestMultibroadcastParity:
    @settings(deadline=None, max_examples=60)
    @given(partitioned_broadcasts(), st.floats(min_value=0.0, max_value=30.0))
    def test_concatenated_pass_equals_one_at_a_time(self, drawn, time):
        broadcasts, seed = drawn
        slices, rx_ids, columns = _flatten(broadcasts)
        # Two channels seeded identically: the shadowing models carry
        # caches (corner blocks, OU chains), so each arm gets its own.
        got = _run_multibatch(_full_channel(seed), slices, rx_ids, columns, time)
        expected = _reference(_full_channel(seed), slices, rx_ids, columns, time)
        _assert_batches_equal(got, expected)

    @settings(deadline=None, max_examples=30)
    @given(partitioned_broadcasts(), st.floats(min_value=0.0, max_value=30.0))
    def test_warm_caches_do_not_break_parity(self, drawn, time):
        """Second evaluation of the same partition hits the Gudmundson
        corner memo and the advanced OU chains on both arms alike."""
        broadcasts, seed = drawn
        slices, rx_ids, columns = _flatten(broadcasts)
        multibatch = _full_channel(seed)
        reference = _full_channel(seed)
        _run_multibatch(multibatch, slices, rx_ids, columns, time)
        _reference(reference, slices, rx_ids, columns, time)
        got = _run_multibatch(multibatch, slices, rx_ids, columns, time)
        expected = _reference(reference, slices, rx_ids, columns, time)
        _assert_batches_equal(got, expected)

    def test_single_broadcast_partition(self):
        broadcasts = [((0.0, 0.0), 17.0, [(30.0, 0.0), (0.0, 55.0), (200.0, 90.0)])]
        slices, rx_ids, columns = _flatten(broadcasts)
        got = _run_multibatch(_full_channel(7), slices, rx_ids, columns, 1.5)
        expected = _reference(_full_channel(7), slices, rx_ids, columns, 1.5)
        _assert_batches_equal(got, expected)

    def test_zero_candidate_slices_yield_empty_batches(self):
        broadcasts = [
            ((0.0, 0.0), 17.0, []),
            ((10.0, 10.0), 17.0, [(40.0, 10.0), (10.0, 80.0)]),
            ((-5.0, 3.0), 20.0, []),
        ]
        slices, rx_ids, columns = _flatten(broadcasts)
        got = _run_multibatch(_full_channel(11), slices, rx_ids, columns, 0.0)
        expected = _reference(_full_channel(11), slices, rx_ids, columns, 0.0)
        _assert_batches_equal(got, expected)
        assert got[0].kept.size == 0
        assert got[2].kept.size == 0

    def test_all_lanes_unreachable_is_all_empty(self):
        broadcasts = [
            ((0.0, 0.0), 5.0, [(1e7, 1e7)]),
            ((3.0, 0.0), 5.0, [(-1e7, 1e7)]),
        ]
        slices, rx_ids, columns = _flatten(broadcasts)
        # Far beyond any loss budget: the reachability cull must empty
        # the pass before a single stochastic draw happens.
        got = _run_multibatch(_full_channel(3), slices, rx_ids, columns, 0.0)
        assert all(batch.kept.size == 0 for batch in got)

    @settings(deadline=None, max_examples=25)
    @given(partitioned_broadcasts(max_broadcasts=4, max_lanes=6))
    def test_overridden_channel_falls_back_per_broadcast(self, drawn):
        """Scripted channel physics must not ride the flat pass."""
        broadcasts, seed = drawn

        calls = []

        class ScriptedChannel(Channel):
            def sample(self, tx_id, rx_id, *args, **kwargs):
                calls.append((tx_id, rx_id))
                return super().sample(tx_id, rx_id, *args, **kwargs)

        def scripted(s):
            return ScriptedChannel(
                pathloss=LogDistancePathLoss(exponent=3.4, reference_loss_db=40.0),
                shadowing=GudmundsonShadowing(
                    np.random.default_rng(s), sigma_db=4.0
                ),
                fading=RicianFading(np.random.default_rng(s + 2), k_factor=4.0),
                rng=np.random.default_rng(s + 3),
            )

        slices, rx_ids, columns = _flatten(broadcasts)
        got = _run_multibatch(scripted(seed), slices, rx_ids, columns, 0.5)
        expected = _reference(scripted(seed), slices, rx_ids, columns, 0.5)
        _assert_batches_equal(got, expected)


class TestSampleMultibatchParity:
    @settings(deadline=None, max_examples=50)
    @given(partitioned_broadcasts(), st.floats(min_value=0.0, max_value=30.0))
    def test_lanes_equal_scalar_sample(self, drawn, time):
        """``Channel.sample_multibatch`` itself, pinned per lane against
        scalar ``channel.sample`` with per-lane transmitter facts."""
        broadcasts, seed = drawn
        slices, rx_ids, columns = _flatten(broadcasts)
        tx_xs, tx_ys, rx_xs, rx_ys, powers, seqs = columns
        if len(rx_ids) == 0:
            return
        multibatch = _full_channel(seed)
        scalar = _full_channel(seed)
        n = len(rx_ids)
        # hypot_map, not np.hypot: the scalar arm's distances come from
        # math.hypot and the two can differ in the last ulp.
        budget_d = hypot_map(tx_xs - rx_xs, tx_ys - rx_ys)
        budget_l = multibatch.pathloss.loss_db_batch(budget_d)
        tx_ids = []
        for b in slices:
            tx_ids.extend([b.tx_id] * (b.stop - b.start))
        rx_power, mean_power = multibatch.sample_multibatch(
            tx_ids, rx_ids, tx_xs, tx_ys, rx_xs, rx_ys, powers,
            np.zeros(n), time, seqs, (budget_d, budget_l),
        )
        for i in range(n):
            sample = scalar.sample(
                tx_ids[i],
                rx_ids[i],
                Vec2(tx_xs[i], tx_ys[i]),
                Vec2(rx_xs[i], rx_ys[i]),
                float(powers[i]),
                0.0,
                time=time,
                tx_seq=int(seqs[i]),
            )
            assert rx_power[i] == sample.rx_power_dbm
            assert mean_power[i] == sample.mean_rx_power_dbm


class TestShadowingMultibatchParity:
    @settings(deadline=None, max_examples=50)
    @given(partitioned_broadcasts(), st.floats(min_value=0.0, max_value=30.0))
    def test_per_lane_tx_columns_equal_scalar(self, drawn, time):
        broadcasts, seed = drawn
        slices, rx_ids, columns = _flatten(broadcasts)
        tx_xs, tx_ys, rx_xs, rx_ys, _, _ = columns
        n = len(rx_ids)
        if n == 0:
            return
        links = [(0, i + 1) for i in range(n)]
        hashes = np.empty(n, dtype=np.uint64)
        for i, link in enumerate(links):
            hashes[i] = stable_hash64(link)
        dists = hypot_map(tx_xs - rx_xs, tx_ys - rx_ys)
        model = CompositeShadowing(
            [
                GudmundsonShadowing(np.random.default_rng(seed), sigma_db=4.0),
                TemporalTxShadowing(
                    np.random.default_rng(seed + 1), sigma_db=3.0, hub=0
                ),
            ]
        )
        reference = CompositeShadowing(
            [
                GudmundsonShadowing(np.random.default_rng(seed), sigma_db=4.0),
                TemporalTxShadowing(
                    np.random.default_rng(seed + 1), sigma_db=3.0, hub=0
                ),
            ]
        )
        got = model.sample_db_multibatch(
            links, hashes, tx_xs, tx_ys, rx_xs, rx_ys, dists, time
        )
        expected = np.array(
            [
                reference.sample_db(
                    links[i],
                    Vec2(tx_xs[i], tx_ys[i]),
                    Vec2(rx_xs[i], rx_ys[i]),
                    time,
                )
                for i in range(n)
            ]
        )
        assert np.array_equal(got, expected)


class TestDeliveryDrawParity:
    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-40.0, max_value=40.0, allow_nan=False),
                st.sampled_from(["dsss-1", "dsss-11", "ofdm-24"]),
                st.integers(min_value=1, max_value=1500),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_bucketed_fers_preserve_the_bernoulli_stream(self, lanes, seed):
        """The coalesced frame-end recipe — FER bucketed per (rate,
        size), Bernoulli drawn sequentially in flat order — consumes the
        channel RNG exactly like per-lane ``frame_delivered`` calls."""
        scalar = Channel(
            pathloss=LogDistancePathLoss(), rng=np.random.default_rng(seed)
        )
        coalesced = Channel(
            pathloss=LogDistancePathLoss(), rng=np.random.default_rng(seed)
        )
        npi = -95.0
        samples = [
            LinkSample(
                rx_power_dbm=npi + sinr, mean_rx_power_dbm=npi + sinr,
                distance_m=10.0,
            )
            for sinr, _, _ in lanes
        ]
        expected = [
            scalar.frame_delivered(
                sample,
                rate_by_name(rate_name),
                DataFrame(src=0, dst=1, flow_dst=1, seq=i, size_bytes=size),
                npi,
            )
            for i, (sample, (_, rate_name, size)) in enumerate(
                zip(samples, lanes)
            )
        ]
        buckets = {}
        for i, (sinr, rate_name, size) in enumerate(lanes):
            buckets.setdefault((rate_name, size), []).append(i)
        fers = np.empty(len(lanes))
        for (rate_name, size), members in buckets.items():
            sinr = np.array([lanes[i][0] for i in members])
            fers[members] = frame_error_rate_batch(
                rate_by_name(rate_name), sinr, size
            )
        got = coalesced.delivery_draws(fers.tolist())
        assert got == expected
