"""Path-loss model properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import RadioError
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    TwoRayGroundPathLoss,
)

distances = st.floats(min_value=0.0, max_value=50_000.0)


class TestFreeSpace:
    def test_friis_at_known_point(self):
        # 2.4 GHz at 1 m ≈ 40.05 dB.
        model = FreeSpacePathLoss(frequency_hz=2.4e9)
        assert model.loss_db(1.0) == pytest.approx(40.05, abs=0.1)

    def test_20db_per_decade(self):
        model = FreeSpacePathLoss()
        assert model.loss_db(100.0) - model.loss_db(10.0) == pytest.approx(20.0)

    def test_clamps_below_min_distance(self):
        model = FreeSpacePathLoss(min_distance_m=1.0)
        assert model.loss_db(0.0) == model.loss_db(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(RadioError):
            FreeSpacePathLoss().loss_db(-1.0)

    @given(distances, distances)
    def test_monotone(self, d1, d2):
        model = FreeSpacePathLoss()
        lo, hi = sorted((d1, d2))
        assert model.loss_db(lo) <= model.loss_db(hi) + 1e-9


class TestLogDistance:
    def test_exponent_sets_slope(self):
        model = LogDistancePathLoss(exponent=3.5)
        assert model.loss_db(100.0) - model.loss_db(10.0) == pytest.approx(35.0)

    def test_reference_loss_override(self):
        model = LogDistancePathLoss(exponent=2.0, reference_loss_db=50.0)
        assert model.loss_db(1.0) == pytest.approx(50.0)

    def test_default_reference_matches_free_space(self):
        model = LogDistancePathLoss(exponent=3.0, frequency_hz=2.412e9)
        fs = FreeSpacePathLoss(frequency_hz=2.412e9)
        assert model.loss_db(1.0) == pytest.approx(fs.loss_db(1.0))

    def test_invalid_exponent(self):
        with pytest.raises(RadioError):
            LogDistancePathLoss(exponent=0.0)

    def test_invalid_reference_distance(self):
        with pytest.raises(RadioError):
            LogDistancePathLoss(reference_distance_m=0.0)

    @given(distances, distances)
    def test_monotone(self, d1, d2):
        model = LogDistancePathLoss(exponent=3.7, reference_loss_db=40.0)
        lo, hi = sorted((d1, d2))
        assert model.loss_db(lo) <= model.loss_db(hi) + 1e-9


class TestTwoRay:
    def test_free_space_regime_below_crossover(self):
        model = TwoRayGroundPathLoss(tx_height_m=5.0, rx_height_m=1.5)
        d = model.crossover_distance_m * 0.5
        fs = FreeSpacePathLoss(model.frequency_hz, model.min_distance_m)
        assert model.loss_db(d) == pytest.approx(fs.loss_db(d))

    def test_40db_per_decade_beyond_crossover(self):
        model = TwoRayGroundPathLoss()
        d = model.crossover_distance_m * 2.0
        assert model.loss_db(10.0 * d) - model.loss_db(d) == pytest.approx(40.0)

    def test_crossover_formula(self):
        model = TwoRayGroundPathLoss(
            tx_height_m=5.0, rx_height_m=1.5, frequency_hz=2.412e9
        )
        wavelength = 299_792_458.0 / 2.412e9
        expected = 4.0 * math.pi * 5.0 * 1.5 / wavelength
        assert model.crossover_distance_m == pytest.approx(expected)

    def test_invalid_heights(self):
        with pytest.raises(RadioError):
            TwoRayGroundPathLoss(tx_height_m=0.0)

    @given(st.floats(min_value=1.0, max_value=50_000.0))
    def test_loss_positive_and_finite(self, d):
        model = TwoRayGroundPathLoss()
        loss = model.loss_db(d)
        assert math.isfinite(loss)
        assert loss > 0.0
