"""SNR → frame-error-rate computation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RadioError
from repro.radio.error_models import frame_error_rate, frame_success_probability
from repro.radio.modulation import rate_by_name

RATE = rate_by_name("dsss-1")


class TestFrameErrorRate:
    def test_high_snr_no_errors(self):
        assert frame_error_rate(RATE, 20.0, 1000) == pytest.approx(0.0, abs=1e-9)

    def test_low_snr_certain_loss(self):
        assert frame_error_rate(RATE, -15.0, 1000) == pytest.approx(1.0, abs=1e-6)

    def test_longer_frames_more_fragile(self):
        snr = -1.0
        assert frame_error_rate(RATE, snr, 1500) > frame_error_rate(RATE, snr, 100)

    def test_monotone_in_snr(self):
        fers = [frame_error_rate(RATE, snr, 1000) for snr in range(-15, 16)]
        for lo, hi in zip(fers, fers[1:]):
            assert hi <= lo + 1e-12

    def test_success_is_complement(self):
        snr = 0.0
        assert frame_success_probability(RATE, snr, 500) == pytest.approx(
            1.0 - frame_error_rate(RATE, snr, 500)
        )

    def test_invalid_size(self):
        with pytest.raises(RadioError):
            frame_error_rate(RATE, 0.0, 0)

    def test_matches_independent_bit_model(self):
        snr = -2.0
        ber = RATE.bit_error_rate(snr)
        expected = 1.0 - (1.0 - ber) ** (100 * 8)
        assert frame_error_rate(RATE, snr, 100) == pytest.approx(expected, rel=1e-9)

    @given(
        st.floats(min_value=-30.0, max_value=30.0),
        st.integers(min_value=1, max_value=4000),
    )
    def test_bounded(self, snr_db, size):
        fer = frame_error_rate(RATE, snr_db, size)
        assert 0.0 <= fer <= 1.0
