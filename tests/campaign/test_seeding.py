"""Deterministic seed derivation."""

from repro.campaign.seeding import derive_seed, point_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(42, f"key-{i}") for i in range(200)}
        assert len(seeds) == 200

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "k") != derive_seed(2, "k")

    def test_fits_in_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(7, f"{i}") < 2**63


class TestPointSeed:
    def test_depends_on_labels(self):
        assert point_seed(5, (1,)) != point_seed(5, (2,))
        assert point_seed(5, (1, "dsss-1")) != point_seed(5, (1, "dsss-11"))

    def test_stable_across_calls(self):
        assert point_seed(5, (3, 0.5)) == point_seed(5, (3, 0.5))
