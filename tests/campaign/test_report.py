"""Report folds: sweep parity with the legacy serial path, Table-1 shapes."""

from dataclasses import replace

import pytest

from repro.analysis import compute_table1
from repro.campaign.executor import run_campaign
from repro.campaign.report import (
    DownloadSummary,
    aggregate_matrices,
    download_summaries,
    matrices_by_round,
    sweep_points,
)
from repro.campaign.spec import CampaignSpec, config_to_dict
from repro.campaign.store import MemoryStore
from repro.errors import CampaignError
from repro.experiments.multi_ap import MultiApConfig
from repro.experiments.runner import run_urban_experiment
from repro.experiments.scenario import UrbanScenarioConfig
from repro.experiments.sweeps import platoon_size_spec, platoon_size_sweep


BASE = UrbanScenarioConfig(seed=55, round_duration_s=40.0)


class TestSweepParity:
    """The acceptance bar: campaign == legacy serial sweep, bit for bit."""

    def test_platoon_sweep_matches_legacy_serial_loop(self):
        legacy = []
        for size in [1, 2]:
            styles = tuple(
                ("normal", "timid", "aggressive")[i % 3] for i in range(size)
            )
            cfg = replace(
                BASE,
                rounds=2,
                platoon=replace(BASE.platoon, n_cars=size, driver_styles=styles),
            )
            result = run_urban_experiment(cfg)
            legacy.append(aggregate_matrices(result.matrices_by_round(), size))

        assert platoon_size_sweep(BASE, [1, 2], rounds=2) == legacy

    def test_parallel_store_reports_identical_points(self, tmp_path):
        from repro.campaign.store import JsonlStore

        spec = platoon_size_spec(BASE, [1, 2], rounds=2)
        with JsonlStore(tmp_path / "s.jsonl") as store:
            run_campaign(spec, store, workers=2)
            parallel_points = sweep_points(store, spec)
        assert parallel_points == platoon_size_sweep(BASE, [1, 2], rounds=2)


class TestMatricesByRound:
    @pytest.fixture(scope="class")
    def executed(self):
        spec = CampaignSpec(
            name="single",
            scenario="urban",
            seed=55,
            rounds=2,
            base=config_to_dict(BASE),
        )
        store = MemoryStore()
        run_campaign(spec, store, workers=1)
        return spec, store

    def test_feeds_compute_table1(self, executed):
        spec, store = executed
        rounds = matrices_by_round(store, spec)
        assert len(rounds) == 2
        rows = compute_table1(rounds)
        assert rows  # one row per car that associated

    def test_matches_direct_runner_output(self, executed):
        spec, store = executed
        stored = matrices_by_round(store, spec)
        direct = run_urban_experiment(replace(BASE, rounds=2)).matrices_by_round()
        assert stored == direct

    def test_requires_labels_when_gridded(self, tmp_path):
        spec = platoon_size_spec(BASE, [1, 2], rounds=1)
        with pytest.raises(CampaignError, match="grid point"):
            matrices_by_round(MemoryStore(), spec)

    def test_unknown_labels_rejected(self, executed):
        spec, store = executed
        with pytest.raises(CampaignError, match="not part"):
            matrices_by_round(store, spec, labels=(99,))


class TestIncompleteStore:
    def test_missing_row_names_point_and_round(self):
        spec = platoon_size_spec(BASE, [1], rounds=1)
        with pytest.raises(CampaignError, match="resume"):
            sweep_points(MemoryStore(), spec)


class TestDownloadSummaries:
    def spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="dl",
            scenario="multi_ap",
            seed=77,
            rounds=1,
            base=config_to_dict(MultiApConfig()),
        )

    def put_row(self, store, spec, outcomes):
        task = spec.expand()[0]
        store.put(task.task_id(), task.key(), {"outcomes": outcomes})

    def test_aggregates_paired_outcomes(self):
        spec = self.spec()
        store = MemoryStore()
        self.put_row(
            store,
            spec,
            [
                {"aps_visited_coop": 2, "aps_visited_direct": 4},
                {"aps_visited_coop": 3, "aps_visited_direct": 5},
                {"aps_visited_coop": 1, "aps_visited_direct": None},  # unpaired
            ],
        )
        (summary,) = download_summaries(store, spec)
        assert summary.completed_pairs == 2
        assert summary.aps_visited_coop_mean == pytest.approx(2.5)
        assert summary.aps_visited_direct_mean == pytest.approx(4.5)
        assert summary.visit_reduction_fraction == pytest.approx(1 - 2.5 / 4.5)

    def test_no_completions_raises(self):
        spec = self.spec()
        store = MemoryStore()
        self.put_row(store, spec, [{"aps_visited_coop": None, "aps_visited_direct": None}])
        with pytest.raises(CampaignError, match="no car completed"):
            download_summaries(store, spec)

    def test_wrong_scenario_rejected(self):
        spec = platoon_size_spec(BASE, [1], rounds=1)
        with pytest.raises(CampaignError, match="multi_ap"):
            download_summaries(MemoryStore(), spec)

    def test_sweep_points_reject_multi_ap(self):
        with pytest.raises(CampaignError, match="DownloadSummary"):
            sweep_points(MemoryStore(), self.spec())


class TestDownloadSummaryShape:
    def test_zero_direct_mean_reduction(self):
        summary = DownloadSummary("x", 0.0, 0.0, 1)
        assert summary.visit_reduction_fraction == 0.0
