"""Sidecar logs (metrics, failures) and the chaos tear/reload hooks.

The satellite fix this pins: ``MetricsLog`` now shares the store's
torn-tail discipline — a defective final line (torn JSON *or* a
wrong-shaped record) is truncated away on reopen, while interior
corruption still fails loudly.
"""

import json

import pytest

from repro.campaign.store import FailureLog, JsonlStore, MetricsLog
from repro.errors import CampaignError


class TestMetricsLogTornTail:
    def test_torn_final_line_is_truncated_on_reopen(self, tmp_path):
        path = tmp_path / "s.jsonl.metrics"
        with MetricsLog(path) as log:
            log.put_task("a", "ka", 0.5, {"counters": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "task", "task_id"')
        reopened = MetricsLog(path)
        assert len(reopened.task_records()) == 1
        # ...and the next append starts on a clean line.
        reopened.put_task("b", "kb", 0.1, {"counters": {}})
        reopened.close()
        assert len(MetricsLog(path).task_records()) == 2

    def test_valid_json_wrong_shape_final_line_is_truncated(self, tmp_path):
        # The satellite-1 bug shape: json.loads succeeds but the record
        # is not a kind-tagged dict (e.g. a bare number from a torn
        # write that happens to parse).  KeyError/TypeError must get the
        # same torn-tail treatment as JSONDecodeError.
        path = tmp_path / "s.jsonl.metrics"
        with MetricsLog(path) as log:
            log.put_campaign({"total": 4})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("42\n")
        reopened = MetricsLog(path)
        assert len(reopened.campaign_records()) == 1

    def test_final_record_without_newline_is_kept(self, tmp_path):
        path = tmp_path / "s.jsonl.metrics"
        record = {"kind": "task", "task_id": "a", "key": "k",
                  "elapsed_s": 0.5, "metrics": {}}
        path.write_text(json.dumps(record), encoding="utf-8")  # no \n
        log = MetricsLog(path)
        assert len(log.task_records()) == 1
        log.put_task("b", "kb", 0.1, {})
        log.close()
        reopened = MetricsLog(path)
        assert [r["task_id"] for r in reopened.task_records()] == ["a", "b"]

    def test_interior_corruption_still_raises(self, tmp_path):
        path = tmp_path / "s.jsonl.metrics"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("junk\n")
            handle.write(json.dumps({"kind": "task"}) + "\n")
        with pytest.raises(CampaignError, match="metrics log"):
            MetricsLog(path)


class TestFailureLog:
    def test_sidecar_path_derivation(self):
        assert FailureLog.sidecar_path("x/s.jsonl") == "x/s.jsonl.failures"

    def test_attempt_and_quarantine_records_round_trip(self, tmp_path):
        path = tmp_path / "s.jsonl.failures"
        with FailureLog(path) as log:
            log.put_attempt("a", "ka", 1, "worker-lost", "died",
                            traceback=None)
            log.put_attempt("a", "ka", 2, "task-error", "ValueError: x",
                            traceback="Traceback ...")
            log.put_quarantine("a", "ka", 2, "task-error", "ValueError: x")
        reopened = FailureLog(path)
        attempts = reopened.attempt_records()
        assert [r["attempt"] for r in attempts] == [1, 2]
        assert "traceback" not in attempts[0]
        assert attempts[1]["traceback"].startswith("Traceback")
        quarantined = reopened.quarantine_records()
        assert len(quarantined) == 1
        assert quarantined[0]["attempts"] == 2

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl.failures"
        with FailureLog(path) as log:
            log.put_attempt("a", "ka", 1, "transient", "boom")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "qua')
        assert len(FailureLog(path).attempt_records()) == 1


class TestTearAndReload:
    def test_tear_leaves_row_unindexed_and_reload_recovers(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = JsonlStore(path)
        store.put("a", "ka", {"v": 1})
        store.tear("b", "kb", {"v": 2})
        assert not store.has("b"), "a torn append must not be indexed"
        store.reload()
        assert store.has("a")
        assert not store.has("b")
        # The torn fragment is gone: the re-put lands cleanly.
        store.put("b", "kb", {"v": 2})
        store.close()
        reopened = JsonlStore(path)
        assert reopened.get("b") == {"v": 2}
        with open(path, encoding="utf-8") as handle:
            assert all(json.loads(line) for line in handle)

    def test_tear_on_empty_store_then_reload(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = JsonlStore(path)
        store.tear("a", "ka", {"v": 1})
        store.reload()
        assert len(store) == 0
        store.put("a", "ka", {"v": 1})
        store.close()
        assert JsonlStore(path).get("a") == {"v": 1}
