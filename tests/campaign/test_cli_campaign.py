"""The ``repro campaign`` CLI: run, resume, report, spec files."""

import pytest

from repro.cli import build_parser, main


RUN_ARGS = [
    "campaign",
    "run",
    "--preset",
    "platoon-size",
    "--points",
    "1,2",
    "--rounds",
    "1",
    "--set",
    "round_duration_s=40",
    "--seed",
    "55",
]


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["campaign", "run", "--preset", "speed"])
        assert args.workers == 1
        assert args.preset == "speed"
        assert args.store is None

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--preset", "nope"])

    def test_report_subcommand(self):
        args = build_parser().parse_args(
            ["campaign", "report", "--preset", "bitrate", "--store", "x.jsonl"]
        )
        assert args.store == "x.jsonl"


class TestRun:
    def test_run_two_workers_then_cached_resume(self, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        spec_file = str(tmp_path / "spec.json")
        argv = RUN_ARGS + [
            "--workers", "2", "--store", store, "--save-spec", spec_file,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached on 2 worker(s)" in out
        assert "parameter" in out

        # Resume from the spec file: everything is a cache hit.
        assert main(
            ["campaign", "run", "--spec", spec_file, "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "0 executed, 2 cached" in out

    def test_report_reads_existing_store(self, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        spec_file = str(tmp_path / "spec.json")
        assert main(RUN_ARGS + ["--store", store, "--save-spec", spec_file]) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "report", "--spec", spec_file, "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 3  # header + one line per grid point

    def test_report_on_empty_store_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "campaign", "report", "--preset", "platoon-size",
                "--store", str(tmp_path / "missing.jsonl"),
            ]
        )
        assert code == 2
        assert "resume" in capsys.readouterr().err

    def test_missing_spec_and_preset_fails_cleanly(self, capsys):
        assert main(["campaign", "run"]) == 2
        assert "--preset" in capsys.readouterr().err

    def test_bad_points_filter_fails_cleanly(self, capsys):
        assert main(
            ["campaign", "run", "--preset", "platoon-size", "--points", "42"]
        ) == 2
        assert "matches nothing" in capsys.readouterr().err

    def test_bad_set_syntax_fails_cleanly(self, capsys):
        assert main(
            ["campaign", "run", "--preset", "platoon-size", "--set", "oops"]
        ) == 2
        assert "PATH=VALUE" in capsys.readouterr().err

    def test_set_seed_is_rejected_with_redirect(self, capsys):
        assert main(
            ["campaign", "run", "--preset", "platoon-size", "--set", "seed=9"]
        ) == 2
        assert "--seed" in capsys.readouterr().err

    def test_set_rounds_is_rejected_with_redirect(self, capsys):
        assert main(
            ["campaign", "run", "--preset", "platoon-size", "--set", "rounds=9"]
        ) == 2
        assert "--rounds" in capsys.readouterr().err

    def test_workers_zero_fails_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "campaign", "run", "--preset", "platoon-size",
                "--workers", "0", "--store", str(tmp_path / "s.jsonl"),
            ]
        )
        assert code == 2
        assert "worker" in capsys.readouterr().err

    def test_run_on_corrupt_store_fails_cleanly(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        store.write_text("garbage\n" + '{"task_id": "a", "row": {}}\n')
        assert main(
            ["campaign", "run", "--preset", "platoon-size", "--store", str(store)]
        ) == 2
        assert "corrupt" in capsys.readouterr().err


class TestPointsFiltering:
    def spec_for(self, argv):
        from repro.cli import _campaign_spec

        return _campaign_spec(build_parser().parse_args(argv))

    def test_speed_preset_selects_by_kmh(self):
        spec = self.spec_for(
            ["campaign", "run", "--preset", "speed", "--points", "80"]
        )
        (ax,) = spec.axes
        assert [p.label for p in ax.points] == [80.0]

    def test_numeric_tolerant_match(self):
        spec = self.spec_for(
            ["campaign", "run", "--preset", "hello-period", "--points", "0.50,3"]
        )
        (ax,) = spec.axes
        assert [p.label for p in ax.points] == [0.5, 3.0]
