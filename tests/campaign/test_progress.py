"""Progress reporting: ticks, throttling, ETA, summary."""

import io

from repro.campaign.progress import ProgressReporter, _format_duration


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestFormatDuration:
    def test_minutes_seconds(self):
        assert _format_duration(83.2) == "1:23"

    def test_hours(self):
        assert _format_duration(3723) == "1:02:03"


class TestProgressReporter:
    def make(self, total=4, interval=10.0):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total, name="camp", stream=stream, min_interval_s=interval, clock=clock
        )
        return reporter, clock, stream

    def test_counts_cached_and_executed(self):
        reporter, clock, _ = self.make()
        reporter.tick(cached=True)
        clock.now = 1.0
        reporter.tick()
        assert reporter.done == 2
        assert reporter.cached == 1
        assert reporter.executed == 1

    def test_throttles_between_emits(self):
        reporter, clock, stream = self.make(total=10, interval=10.0)
        reporter.tick()          # first tick emits (last_emit = -inf)
        clock.now = 1.0
        reporter.tick()          # throttled
        clock.now = 2.0
        reporter.tick()          # throttled
        assert len(stream.getvalue().splitlines()) == 1

    def test_final_tick_always_emits(self):
        reporter, clock, stream = self.make(total=2, interval=100.0)
        reporter.tick()
        clock.now = 0.5
        reporter.tick()
        lines = stream.getvalue().splitlines()
        assert lines[-1].startswith("camp: 2/2 tasks")

    def test_eta_appears_once_rate_known(self):
        reporter, clock, stream = self.make(total=4, interval=0.0)
        clock.now = 1.0
        reporter.tick()
        assert "ETA" in stream.getvalue()

    def test_summary_line(self):
        reporter, clock, _ = self.make(total=3)
        reporter.tick(cached=True)
        reporter.tick()
        reporter.tick()
        clock.now = 65.0
        assert reporter.summary() == "camp: 2 executed, 1 cached of 3 tasks in 1:05"


class TestExecutedVsCachedRates:
    """The resume case: a near-instant cached prefix must not skew the ETA.

    Cache-hit replays are store lookups (milliseconds); executions are
    full simulation rounds (seconds).  The reporter keeps two rates —
    everything remaining is an execution, so the ETA must come from the
    execution rate alone.
    """

    def make(self, total, interval=0.0):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total, name="camp", stream=stream, min_interval_s=interval, clock=clock
        )
        return reporter, clock, stream

    def test_cached_prefix_does_not_skew_eta(self):
        # 2 cached ticks land in the first second, then executions take
        # 10 s each.  Naive rate over the whole window would be
        # 4 done / 21 s; the ETA must instead use 2 executed / 20 s
        # = 0.1/s → 20 s for the 2 remaining tasks.
        reporter, clock, stream = self.make(total=6)
        clock.now = 0.5
        reporter.tick(cached=True)
        clock.now = 1.0
        reporter.tick(cached=True)
        clock.now = 11.0
        reporter.tick()
        clock.now = 21.0
        reporter.tick()
        assert "ETA 0:20" in stream.getvalue().splitlines()[-1]

    def test_cached_rate_reported_separately(self):
        reporter, clock, stream = self.make(total=6)
        clock.now = 0.5
        reporter.tick(cached=True)
        clock.now = 1.0
        reporter.tick(cached=True)
        clock.now = 11.0
        reporter.tick()
        line = stream.getvalue().splitlines()[-1]
        # Cached prefix: 2 replays over the 1 s before execution began.
        assert "(2 cached @ 2/s)" in line
        # Execution rate: 1 task over the 10 s since.
        assert "0.1/s" in line

    def test_all_cached_shows_no_eta(self):
        reporter, clock, stream = self.make(total=4)
        clock.now = 1.0
        reporter.tick(cached=True)
        reporter.tick(cached=True)
        line = stream.getvalue().splitlines()[-1]
        assert "ETA" not in line
        assert "(2 cached @ 2/s)" in line

    def test_cached_ticks_after_first_execution_keep_base(self):
        # Interleaved cache hits mid-run (workers racing a warm store)
        # must not move the execution-rate base once real work started.
        reporter, clock, stream = self.make(total=8)
        clock.now = 10.0
        reporter.tick()            # execution: base stays at start (0.0)
        clock.now = 12.0
        reporter.tick(cached=True)
        clock.now = 20.0
        reporter.tick()
        line = stream.getvalue().splitlines()[-1]
        # 2 executed over 20 s from the original base → 0.1/s.
        assert "0.1/s" in line
