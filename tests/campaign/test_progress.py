"""Progress reporting: ticks, throttling, ETA, summary."""

import io

from repro.campaign.progress import ProgressReporter, _format_duration


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestFormatDuration:
    def test_minutes_seconds(self):
        assert _format_duration(83.2) == "1:23"

    def test_hours(self):
        assert _format_duration(3723) == "1:02:03"


class TestProgressReporter:
    def make(self, total=4, interval=10.0):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total, name="camp", stream=stream, min_interval_s=interval, clock=clock
        )
        return reporter, clock, stream

    def test_counts_cached_and_executed(self):
        reporter, clock, _ = self.make()
        reporter.tick(cached=True)
        clock.now = 1.0
        reporter.tick()
        assert reporter.done == 2
        assert reporter.cached == 1
        assert reporter.executed == 1

    def test_throttles_between_emits(self):
        reporter, clock, stream = self.make(total=10, interval=10.0)
        reporter.tick()          # first tick emits (last_emit = -inf)
        clock.now = 1.0
        reporter.tick()          # throttled
        clock.now = 2.0
        reporter.tick()          # throttled
        assert len(stream.getvalue().splitlines()) == 1

    def test_final_tick_always_emits(self):
        reporter, clock, stream = self.make(total=2, interval=100.0)
        reporter.tick()
        clock.now = 0.5
        reporter.tick()
        lines = stream.getvalue().splitlines()
        assert lines[-1].startswith("camp: 2/2 tasks")

    def test_eta_appears_once_rate_known(self):
        reporter, clock, stream = self.make(total=4, interval=0.0)
        clock.now = 1.0
        reporter.tick()
        assert "ETA" in stream.getvalue()

    def test_summary_line(self):
        reporter, clock, _ = self.make(total=3)
        reporter.tick(cached=True)
        reporter.tick()
        reporter.tick()
        clock.now = 65.0
        assert reporter.summary() == "camp: 2 executed, 1 cached of 3 tasks in 1:05"
