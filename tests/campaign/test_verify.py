"""``repro campaign verify``: read-only store/sidecar integrity checks."""

import json
import os

import pytest

from repro.campaign.spec import CampaignSpec, axis, config_to_dict
from repro.campaign.store import FailureLog, JsonlStore, MetricsLog
from repro.campaign.verify import verify_store
from repro.errors import CampaignError
from repro.experiments.scenario import UrbanScenarioConfig


def small_spec(seed: int = 55) -> CampaignSpec:
    base = UrbanScenarioConfig(seed=seed, round_duration_s=40.0)
    return CampaignSpec(
        name="verify-test",
        scenario="urban",
        seed=seed,
        rounds=2,
        base=config_to_dict(base),
        axes=(axis("platoon.n_cars", [1, 2]),),
    )


def fill_store(path, spec, skip=0):
    tasks = spec.expand()
    with JsonlStore(path) as store:
        for task in tasks[skip:]:
            store.put(task.task_id(), task.key(), {"v": 1})
    return tasks


class TestCleanStores:
    def test_complete_store_verifies_ok(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        fill_store(path, spec)
        report = verify_store(path, spec=spec)
        assert report.ok
        assert (report.rows, report.distinct_tasks) == (4, 4)
        assert not report.missing
        assert "OK" in report.render()

    def test_store_without_spec_checks_shape_only(self, tmp_path):
        path = tmp_path / "s.jsonl"
        fill_store(path, small_spec())
        report = verify_store(path)
        assert report.ok
        assert report.missing == ()

    def test_duplicates_are_counted_not_failed(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        tasks = fill_store(path, spec)
        with JsonlStore(path) as store:  # re-run appends a second row
            store.put(tasks[0].task_id(), tasks[0].key(), {"v": 2})
        report = verify_store(path, spec=spec)
        assert report.ok
        assert report.duplicates == 1
        assert report.rows == 5


class TestDefects:
    def test_missing_file_is_a_usage_error(self, tmp_path):
        with pytest.raises(CampaignError, match="no result store"):
            verify_store(tmp_path / "absent.jsonl")

    def test_torn_tail_is_a_warning(self, tmp_path):
        path = tmp_path / "s.jsonl"
        fill_store(path, small_spec())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task_id": "x", "key"')  # torn mid-append
        report = verify_store(path)
        assert report.ok
        assert any("torn final line" in w.message for w in report.warnings)
        # ...and verification healed nothing: the torn bytes are intact.
        with open(path, encoding="utf-8") as handle:
            assert handle.read().endswith('{"task_id": "x", "key"')

    def test_interior_corruption_is_an_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps(
                {"task_id": "a", "key": "k", "row": {}}
            ) + "\n")
        report = verify_store(path)
        assert not report.ok
        assert any("corrupt at line 1" in e.message for e in report.errors)
        assert "CORRUPT" in report.render()

    def test_wrong_shape_row_is_flagged(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"task_id": 7, "row": {}}) + "\n")
            handle.write(json.dumps(
                {"task_id": "a", "key": "k", "row": {}}
            ) + "\n")
        report = verify_store(path)
        assert not report.ok


class TestAccounting:
    def test_missing_tasks_are_errors(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        fill_store(path, spec, skip=1)
        report = verify_store(path, spec=spec)
        assert not report.ok
        assert len(report.missing) == 1
        assert any("incomplete campaign" in e.message for e in report.errors)

    def test_quarantined_tasks_count_as_accounted(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        tasks = fill_store(path, spec, skip=1)
        with FailureLog(FailureLog.sidecar_path(path)) as failures:
            failures.put_quarantine(
                tasks[0].task_id(), tasks[0].key(), 3, "transient", "boom"
            )
        report = verify_store(path, spec=spec)
        assert report.ok
        assert report.quarantined == 1
        assert not report.missing

    def test_fully_quarantined_campaign_without_store_file(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        with FailureLog(FailureLog.sidecar_path(path)) as failures:
            for task in spec.expand():
                failures.put_quarantine(
                    task.task_id(), task.key(), 2, "transient", "boom"
                )
        report = verify_store(path, spec=spec)
        assert report.ok
        assert report.rows == 0
        assert any("store file absent" in w.message for w in report.warnings)

    def test_unknown_rows_are_warnings(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        fill_store(path, spec)
        with JsonlStore(path) as store:
            store.put("deadbeef", "{}", {"v": 1})
        report = verify_store(path, spec=spec)
        assert report.ok
        assert report.unknown == ("deadbeef",)

    def test_stale_quarantine_is_a_warning(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "s.jsonl"
        tasks = fill_store(path, spec)
        with FailureLog(FailureLog.sidecar_path(path)) as failures:
            failures.put_quarantine(
                tasks[0].task_id(), tasks[0].key(), 3, "transient", "boom"
            )
        report = verify_store(path, spec=spec)
        assert report.ok
        assert any("stale" in w.message for w in report.warnings)

    def test_metrics_sidecar_is_scanned(self, tmp_path):
        path = tmp_path / "s.jsonl"
        fill_store(path, small_spec())
        with MetricsLog(MetricsLog.sidecar_path(path)) as metrics:
            metrics.put_task("a", "k", 0.5, {"counters": {}})
        report = verify_store(path)
        assert report.metrics_records == 1

    def test_verify_accepts_path_objects(self, tmp_path):
        path = tmp_path / "s.jsonl"
        fill_store(path, small_spec())
        assert verify_store(path).ok
        assert os.path.samefile(verify_store(path).store_path, path)
