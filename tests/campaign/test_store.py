"""Result stores: persistence, resume tolerance, matrix codec."""

import json

import pytest

from repro.campaign.store import (
    JsonlStore,
    MemoryStore,
    decode_matrix,
    encode_matrix,
)
from repro.errors import CampaignError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix


class TestMemoryStore:
    def test_put_get_has(self):
        store = MemoryStore()
        assert not store.has("t1")
        store.put("t1", "key", {"x": 1})
        assert store.has("t1")
        assert "t1" in store
        assert store.get("t1") == {"x": 1}
        assert len(store) == 1

    def test_get_missing_raises(self):
        with pytest.raises(CampaignError, match="no stored row"):
            MemoryStore().get("absent")


class TestJsonlStore:
    def test_rows_survive_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            store.put("a", "ka", {"v": 1})
            store.put("b", "kb", {"v": 2})
        reopened = JsonlStore(path)
        assert len(reopened) == 2
        assert reopened.get("a") == {"v": 1}
        assert reopened.get("b") == {"v": 2}

    def test_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "store.jsonl"
        with JsonlStore(path) as store:
            store.put("a", "ka", {})
        assert path.exists()

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            store.put("a", "ka", {"v": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task_id": "b", "row": {"v"')  # torn write
        reopened = JsonlStore(path)
        assert reopened.has("a")
        assert not reopened.has("b")

    def test_append_after_torn_line_stays_clean(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            store.put("a", "ka", {"v": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task_id": "b", "row": {"v"')  # torn write
        with JsonlStore(path) as store:  # resume: drops the torn tail...
            store.put("c", "kc", {"v": 3})  # ...and appends cleanly
        final = JsonlStore(path)  # a later open must see both rows
        assert final.get("a") == {"v": 1}
        assert final.get("c") == {"v": 3}
        assert not final.has("b")

    def test_valid_final_line_without_newline_is_kept_and_terminated(
        self, tmp_path
    ):
        path = tmp_path / "store.jsonl"
        path.write_text('{"task_id": "a", "key": "ka", "row": {"v": 1}}')
        with JsonlStore(path) as store:
            assert store.get("a") == {"v": 1}
            store.put("b", "kb", {"v": 2})
        final = JsonlStore(path)
        assert final.get("a") == {"v": 1}
        assert final.get("b") == {"v": 2}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps({"task_id": "a", "key": "ka", "row": {}})
        path.write_text("garbage\n" + good + "\n")
        with pytest.raises(CampaignError, match="corrupt"):
            JsonlStore(path)

    def test_duplicate_task_last_line_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            store.put("a", "ka", {"v": 1})
        with JsonlStore(path) as store:
            store.put("a", "ka", {"v": 2})
        assert JsonlStore(path).get("a") == {"v": 2}

    def test_rows_iterates_pairs(self, tmp_path):
        with JsonlStore(tmp_path / "s.jsonl") as store:
            store.put("a", "ka", {"v": 1})
            assert dict(store.rows()) == {"a": {"v": 1}}


class TestMatrixCodec:
    def matrix(self) -> ReceptionMatrix:
        return ReceptionMatrix(
            flow=NodeId(2),
            window=(10, 15),
            direct={
                NodeId(1): frozenset({10, 11, 14}),
                NodeId(2): frozenset({12}),
            },
            after_coop=frozenset({11, 12, 14}),
        )

    def test_round_trip(self):
        matrix = self.matrix()
        assert decode_matrix(encode_matrix(matrix)) == matrix

    def test_json_shape_is_serialisable(self):
        encoded = encode_matrix(self.matrix())
        assert decode_matrix(json.loads(json.dumps(encoded))) == self.matrix()

    def test_summaries_survive(self):
        decoded = decode_matrix(encode_matrix(self.matrix()))
        assert decoded.tx_by_ap == 6
        assert decoded.lost_before_coop == 5
        assert decoded.lost_after_coop == 3
