"""Campaign specs: expansion, serialisation, config materialisation."""

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    GridAxis,
    GridPoint,
    apply_override,
    axis,
    config_from_dict,
    config_to_dict,
)
from repro.core.config import CarqConfig
from repro.errors import CampaignError
from repro.experiments.highway import HighwayConfig
from repro.experiments.scenario import UrbanScenarioConfig


def urban_spec(**kwargs) -> CampaignSpec:
    defaults = dict(
        name="t",
        scenario="urban",
        seed=7,
        rounds=2,
        base=config_to_dict(UrbanScenarioConfig()),
        axes=(axis("platoon.n_cars", [1, 2]),),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestConfigCodec:
    def test_round_trip_urban(self):
        cfg = UrbanScenarioConfig(seed=9, round_duration_s=41.5)
        assert config_from_dict(UrbanScenarioConfig, config_to_dict(cfg)) == cfg

    def test_round_trip_highway_preserves_nested_carq(self):
        cfg = HighwayConfig(speed_ms=22.0)
        rebuilt = config_from_dict(HighwayConfig, config_to_dict(cfg))
        assert rebuilt == cfg
        assert rebuilt.carq.batch_requests is True

    def test_tuple_fields_survive_json_shape(self):
        cfg = UrbanScenarioConfig()
        data = config_to_dict(cfg)
        assert isinstance(data["platoon"]["driver_styles"], list)
        rebuilt = config_from_dict(UrbanScenarioConfig, data)
        assert rebuilt.platoon.driver_styles == cfg.platoon.driver_styles

    def test_unknown_key_is_rejected(self):
        with pytest.raises(CampaignError, match="platon"):
            config_from_dict(UrbanScenarioConfig, {"platon": {"n_cars": 8}})

    def test_unknown_nested_key_is_rejected(self):
        with pytest.raises(CampaignError, match="n_carz"):
            config_from_dict(UrbanScenarioConfig, {"platoon": {"n_carz": 8}})

    def test_partial_base_takes_defaults(self):
        cfg = config_from_dict(UrbanScenarioConfig, {"seed": 5})
        assert cfg.seed == 5
        assert cfg.rounds == UrbanScenarioConfig().rounds

    def test_non_json_field_is_rejected(self):
        class FakeSelection:
            pass

        cfg = CarqConfig(selection=FakeSelection())
        with pytest.raises(CampaignError, match="selection"):
            config_to_dict(cfg)


class TestApplyOverride:
    def test_nested_path(self):
        cfg = apply_override(UrbanScenarioConfig(), "platoon.n_cars", 5)
        assert cfg.platoon.n_cars == 5

    def test_list_converts_for_tuple_field(self):
        cfg = apply_override(
            UrbanScenarioConfig(), "platoon.driver_styles", ["normal", "normal"]
        )
        assert cfg.platoon.driver_styles == ("normal", "normal")

    def test_unknown_path_raises(self):
        with pytest.raises(CampaignError, match="nonsense"):
            apply_override(UrbanScenarioConfig(), "nonsense", 1)

    def test_descending_into_leaf_raises(self):
        with pytest.raises(CampaignError, match="leaf"):
            apply_override(UrbanScenarioConfig(), "seed.deeper", 1)


class TestExpansion:
    def test_one_task_per_point_and_round(self):
        tasks = urban_spec().expand()
        assert len(tasks) == 4
        assert [(t.labels, t.round_index) for t in tasks] == [
            ((1,), 0),
            ((1,), 1),
            ((2,), 0),
            ((2,), 1),
        ]

    def test_multi_axis_product(self):
        spec = urban_spec(
            axes=(
                axis("platoon.n_cars", [1, 2]),
                axis("carq.hello_period_s", [0.5, 1.0]),
            ),
            rounds=1,
        )
        assert [t.labels for t in spec.expand()] == [
            (1, 0.5),
            (1, 1.0),
            (2, 0.5),
            (2, 1.0),
        ]

    def test_task_config_applies_overrides_and_seed(self):
        task = urban_spec(seed=123).expand()[-1]
        cfg = task.config()
        assert cfg.platoon.n_cars == 2
        assert cfg.seed == 123

    def test_task_id_is_stable_and_distinct(self):
        tasks_a = urban_spec().expand()
        tasks_b = urban_spec().expand()
        ids_a = [t.task_id() for t in tasks_a]
        assert ids_a == [t.task_id() for t in tasks_b]
        assert len(set(ids_a)) == len(ids_a)

    def test_task_id_ignores_campaign_name(self):
        renamed = urban_spec(name="other")
        assert [t.task_id() for t in urban_spec().expand()] == [
            t.task_id() for t in renamed.expand()
        ]

    def test_independent_seeds_differ_per_point(self):
        tasks = urban_spec(independent_seeds=True).expand()
        seeds = {t.labels: t.seed for t in tasks}
        assert seeds[(1,)] != seeds[(2,)]


class TestSerialisation:
    def test_json_round_trip(self):
        spec = urban_spec(independent_seeds=True)
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = urban_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert CampaignSpec.load(path) == spec

    def test_invalid_json_raises(self):
        with pytest.raises(CampaignError, match="JSON"):
            CampaignSpec.from_json("{nope")

    def test_missing_field_raises(self):
        with pytest.raises(CampaignError, match="missing"):
            CampaignSpec.from_dict({"name": "x"})


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(CampaignError, match="scenario"):
            urban_spec(scenario="martian")

    def test_zero_rounds_rejected(self):
        with pytest.raises(CampaignError, match="round"):
            urban_spec(rounds=0)

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError, match="points"):
            GridAxis(name="x", points=())

    def test_point_label_reaches_sweep_parameter(self):
        point = GridPoint(label="dsss-11", overrides={"radio.rate_name": "dsss-11"})
        assert GridPoint.from_dict(point.to_dict()) == point
