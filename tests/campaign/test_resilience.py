"""Retry policy, failure classification, and keyed backoff jitter."""

import pytest

from repro.campaign.resilience import (
    RETRYABLE_KINDS,
    FailureKind,
    RetryPolicy,
    TaskFailure,
    classify_exception,
)
from repro.errors import CampaignError, ChaosError


class TestClassification:
    def test_chaos_error_is_transient(self):
        assert classify_exception(ChaosError("injected")) == FailureKind.TRANSIENT

    def test_everything_else_is_deterministic(self):
        for exc in (ValueError("x"), CampaignError("y"), KeyError("z")):
            assert classify_exception(exc) == FailureKind.TASK_ERROR

    def test_task_error_is_the_only_unretryable_kind(self):
        assert FailureKind.TASK_ERROR not in RETRYABLE_KINDS
        assert RETRYABLE_KINDS == {
            FailureKind.TRANSIENT,
            FailureKind.WORKER_LOST,
            FailureKind.TIMEOUT,
            FailureKind.TORN_WRITE,
        }


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"restart_limit": 0},
            {"drain_grace_s": -1.0},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(CampaignError):
            RetryPolicy(**kwargs)

    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout_s is None


class TestAllowsRetry:
    def test_respects_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(FailureKind.TRANSIENT, 1)
        assert policy.allows_retry(FailureKind.TRANSIENT, 2)
        assert not policy.allows_retry(FailureKind.TRANSIENT, 3)

    def test_task_errors_never_retry(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.allows_retry(FailureKind.TASK_ERROR, 1)


class TestKeyedBackoff:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay_s("abc", 2) == policy.delay_s("abc", 2)

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=100.0,
            jitter=0.0,
        )
        assert [policy.delay_s("t", n) for n in (1, 2, 3)] == [1.0, 2.0, 4.0]

    def test_delay_caps_at_backoff_max(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=10.0, backoff_max_s=5.0,
            jitter=0.0,
        )
        assert policy.delay_s("t", 4) == 5.0

    def test_jitter_stays_inside_the_band(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=1.0, backoff_max_s=1.0,
            jitter=0.5,
        )
        delays = [policy.delay_s(f"task-{i}", 1) for i in range(200)]
        assert all(0.5 <= d <= 1.5 for d in delays)
        # ...and actually varies per task (keyed, not constant).
        assert len({round(d, 9) for d in delays}) > 100

    def test_distinct_tasks_spread_out(self):
        policy = RetryPolicy()
        assert policy.delay_s("task-a", 1) != policy.delay_s("task-b", 1)

    def test_zero_base_yields_zero_delay(self):
        policy = RetryPolicy(backoff_base_s=0.0)
        assert policy.delay_s("t", 1) == 0.0


class TestTaskFailure:
    def test_carries_the_quarantine_facts(self):
        failure = TaskFailure(
            task_id="abc", key="{}", attempts=3,
            failure=FailureKind.TRANSIENT, error="ChaosError: injected",
        )
        assert failure.attempts == 3
        assert failure.failure in RETRYABLE_KINDS
