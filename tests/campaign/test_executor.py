"""Executor determinism, caching, and parallel/serial equivalence.

The load-bearing guarantees of the engine live here: the same spec and
seed produce identical stored rows whether tasks run serially, across a
process pool, or resumed from a half-filled store.
"""

import pytest

from repro.campaign.executor import execute_task, run_campaign
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec, TaskSpec, axis, config_to_dict
from repro.campaign.store import JsonlStore, MemoryStore
from repro.errors import CampaignError
from repro.experiments.scenario import UrbanScenarioConfig


def small_spec(seed: int = 55) -> CampaignSpec:
    """A cheap urban campaign: 2 grid points x 2 rounds, short laps."""
    base = UrbanScenarioConfig(seed=seed, round_duration_s=40.0)
    return CampaignSpec(
        name="exec-test",
        scenario="urban",
        seed=seed,
        rounds=2,
        base=config_to_dict(base),
        axes=(axis("platoon.n_cars", [1, 2]),),
    )


@pytest.fixture(scope="module")
def serial_rows():
    spec = small_spec()
    store = MemoryStore()
    run_campaign(spec, store, workers=1)
    return {t.task_id(): store.get(t.task_id()) for t in spec.expand()}


class TestSerialExecution:
    def test_fills_store_completely(self, serial_rows):
        assert len(serial_rows) == 4
        for row in serial_rows.values():
            assert row["matrices"], "every short lap should record receptions"

    def test_rows_are_reproducible(self, serial_rows):
        spec = small_spec()
        store = MemoryStore()
        run_campaign(spec, store, workers=1)
        assert {t.task_id(): store.get(t.task_id()) for t in spec.expand()} == (
            serial_rows
        )


class TestParallelExecution:
    def test_two_workers_match_serial_bitwise(self, serial_rows, tmp_path):
        spec = small_spec()
        with JsonlStore(tmp_path / "par.jsonl") as store:
            stats = run_campaign(spec, store, workers=2)
        assert stats.executed == 4
        reloaded = JsonlStore(tmp_path / "par.jsonl")
        assert {
            t.task_id(): reloaded.get(t.task_id()) for t in spec.expand()
        } == serial_rows


class TestCachingAndResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            first = run_campaign(spec, store, workers=1)
        assert (first.executed, first.cached) == (4, 0)
        with JsonlStore(path) as store:
            second = run_campaign(spec, store, workers=1)
        assert (second.executed, second.cached) == (0, 4)

    def test_resume_executes_only_missing_tasks(self, serial_rows, tmp_path):
        spec = small_spec()
        tasks = spec.expand()
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            for task in tasks[:3]:  # pre-fill as an interrupted run would
                store.put(task.task_id(), task.key(), serial_rows[task.task_id()])
        with JsonlStore(path) as store:
            stats = run_campaign(spec, store, workers=1)
            assert (stats.executed, stats.cached) == (1, 3)
            assert {
                t.task_id(): store.get(t.task_id()) for t in tasks
            } == serial_rows

    def test_progress_ticks_for_cached_and_executed(self, serial_rows):
        spec = small_spec()
        store = MemoryStore()
        tasks = spec.expand()
        store.put(tasks[0].task_id(), tasks[0].key(), serial_rows[tasks[0].task_id()])
        progress = ProgressReporter(len(tasks), stream=__import__("io").StringIO())
        run_campaign(spec, store, workers=1, progress=progress)
        assert progress.done == 4
        assert progress.cached == 1

    def test_different_seed_misses_cache(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlStore(path) as store:
            run_campaign(small_spec(seed=55), store, workers=1)
            stats = run_campaign(small_spec(seed=56), store, workers=1)
        assert stats.cached == 0
        assert stats.executed == 4


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(CampaignError, match="worker"):
            run_campaign(small_spec(), MemoryStore(), workers=0)

    def test_unknown_scenario_task_rejected(self):
        task = TaskSpec(
            campaign="x",
            scenario="martian",
            seed=1,
            round_index=0,
            labels=(),
            overrides={},
            base={},
        )
        with pytest.raises(CampaignError, match="scenario"):
            execute_task(task)
