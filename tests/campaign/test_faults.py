"""Hard process faults: SIGKILLed workers, SIGINTed campaigns, resume.

These are the integration pins for the supervised executor: a worker
killed with SIGKILL (the OOM shape) must not hang or abort the campaign;
an interrupted parent must checkpoint gracefully and exit 130; a resumed
run must re-execute exactly the missing tasks and converge on the same
bits as an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import multiprocessing

import pytest

from repro.campaign.chaos import ChaosSpec
from repro.campaign.executor import run_campaign
from repro.campaign.resilience import RetryPolicy
from repro.campaign.spec import CampaignSpec, axis, config_to_dict
from repro.campaign.store import JsonlStore, MemoryStore
from repro.experiments.scenario import UrbanScenarioConfig

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def slow_spec(rounds: int = 2, duration_s: float = 300.0) -> CampaignSpec:
    """Tasks slow enough (~seconds each) to be killed mid-flight."""
    base = UrbanScenarioConfig(seed=55, round_duration_s=duration_s)
    return CampaignSpec(
        name="fault-test",
        scenario="urban",
        seed=55,
        rounds=rounds,
        base=config_to_dict(base),
    )


def quick_spec(rounds: int = 10) -> CampaignSpec:
    """Many fast tasks (for interrupt/resume accounting)."""
    base = UrbanScenarioConfig(seed=55, round_duration_s=40.0)
    return CampaignSpec(
        name="fault-test",
        scenario="urban",
        seed=55,
        rounds=rounds,
        base=config_to_dict(base),
    )


class TestWorkerSigkill:
    def test_sigkilled_worker_is_replaced_and_campaign_completes(
        self, tmp_path
    ):
        spec = slow_spec()
        clean = MemoryStore()
        run_campaign(spec, clean, workers=1)
        expected = {t.task_id(): clean.get(t.task_id()) for t in spec.expand()}

        killed = threading.Event()

        def kill_one_worker():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                children = multiprocessing.active_children()
                if children:
                    time.sleep(0.5)  # let it get into a task
                    victims = multiprocessing.active_children()
                    if victims:
                        os.kill(victims[0].pid, signal.SIGKILL)
                        killed.set()
                        return
                time.sleep(0.02)

        killer = threading.Thread(target=kill_one_worker, daemon=True)
        killer.start()
        store = JsonlStore(tmp_path / "killed.jsonl")
        stats = run_campaign(
            spec,
            store,
            workers=2,
            retry=RetryPolicy(max_attempts=4, backoff_base_s=0.01),
        )
        killer.join(timeout=30.0)
        assert killed.is_set(), "the killer thread never found a worker"
        assert stats.failed == 0
        assert {
            t.task_id(): store.get(t.task_id()) for t in spec.expand()
        } == expected

    def test_hung_worker_is_reaped_by_timeout(self, tmp_path):
        spec = quick_spec(rounds=4)
        clean = MemoryStore()
        run_campaign(spec, clean, workers=1)
        expected = {t.task_id(): clean.get(t.task_id()) for t in spec.expand()}

        store = JsonlStore(tmp_path / "hung.jsonl")
        stats = run_campaign(
            spec,
            store,
            workers=2,
            # Seed pinned so the keyed schedule provably fires on these
            # task ids (3 first-attempt hangs, at most 3 of 6 attempts).
            chaos=ChaosSpec(rate=0.5, seed=1, kinds=("hang",), hang_s=30.0),
            retry=RetryPolicy(
                max_attempts=6, timeout_s=1.0,
                backoff_base_s=0.01, backoff_max_s=0.05,
            ),
        )
        assert stats.timeouts >= 1, "the pinned schedule must hang once"
        assert stats.failed == 0
        assert {
            t.task_id(): store.get(t.task_id()) for t in spec.expand()
        } == expected


def _run_cli_campaign(store_path, spec_path, *, workers=2):
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            "--spec", os.fspath(spec_path),
            "--store", os.fspath(store_path),
            "--workers", str(workers),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestParentInterrupt:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_interrupt_checkpoints_and_resume_converges(
        self, tmp_path, signum
    ):
        spec = slow_spec(rounds=12, duration_s=120.0)
        clean = MemoryStore()
        run_campaign(spec, clean, workers=1)
        expected = {t.task_id(): clean.get(t.task_id()) for t in spec.expand()}

        spec_path = tmp_path / "spec.json"
        spec.save(spec_path)
        store_path = tmp_path / "int.jsonl"

        proc = _run_cli_campaign(store_path, spec_path)
        time.sleep(2.0)  # a few tasks in, several still pending
        proc.send_signal(signum)
        _out, err = proc.communicate(timeout=60)
        assert proc.returncode == 130, err
        assert "re-run the same command to resume" in err

        checkpointed = 0
        if store_path.exists():
            with open(store_path, encoding="utf-8") as handle:
                checkpointed = sum(1 for line in handle if line.strip())
        assert checkpointed < len(expected), "interrupt landed too late"

        # Resume: exactly the missing tasks execute, then bits match.
        resume = _run_cli_campaign(store_path, spec_path)
        out, err = resume.communicate(timeout=600)
        assert resume.returncode == 0, err
        assert f"{checkpointed} cached" in out
        assert f"{len(expected) - checkpointed} executed" in out
        final = JsonlStore(store_path)
        assert {
            t.task_id(): final.get(t.task_id()) for t in spec.expand()
        } == expected


class TestStaleRowsNeverDuplicate:
    def test_timeout_killed_worker_cannot_double_record(self, tmp_path):
        # A worker reaped at its deadline may already have sent its row;
        # the supervisor drains it instead of double-recording after the
        # retry.  Duplicates on disk are legal (last wins) but the rows
        # must agree bitwise.
        spec = quick_spec(rounds=6)
        store = JsonlStore(tmp_path / "dup.jsonl")
        run_campaign(
            spec,
            store,
            workers=2,
            chaos=ChaosSpec(rate=0.5, seed=9, kinds=("hang",), hang_s=2.0),
            retry=RetryPolicy(
                max_attempts=8, timeout_s=1.0,
                backoff_base_s=0.01, backoff_max_s=0.05,
            ),
        )
        by_task = {}
        with open(store.path, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                by_task.setdefault(record["task_id"], set()).add(
                    json.dumps(record["row"], sort_keys=True)
                )
        assert all(len(rows) == 1 for rows in by_task.values())
