"""Deterministic fault injection and the chaos-parity headline pin.

The invariant this whole PR hangs on: a campaign run under injected
faults (worker crashes, transient raises, torn store writes, hangs)
produces a result store whose rows are **bit-identical** to a clean
run's — because rows are determined by spec'd seeds, so retries are
provably free.
"""

import pytest

from repro.campaign.chaos import CHAOS_KINDS, ChaosSpec
from repro.campaign.executor import run_campaign
from repro.campaign.resilience import RetryPolicy
from repro.campaign.spec import CampaignSpec, axis, config_to_dict
from repro.campaign.store import FailureLog, JsonlStore, MemoryStore
from repro.errors import CampaignError
from repro.experiments.scenario import UrbanScenarioConfig

#: A fast retry policy so chaos tests spend no wall-clock on backoff.
FAST_RETRY = RetryPolicy(
    max_attempts=8, backoff_base_s=0.01, backoff_max_s=0.05
)


def small_spec(seed: int = 55) -> CampaignSpec:
    base = UrbanScenarioConfig(seed=seed, round_duration_s=40.0)
    return CampaignSpec(
        name="chaos-test",
        scenario="urban",
        seed=seed,
        rounds=2,
        base=config_to_dict(base),
        axes=(axis("platoon.n_cars", [1, 2]),),
    )


@pytest.fixture(scope="module")
def clean_rows():
    spec = small_spec()
    store = MemoryStore()
    run_campaign(spec, store, workers=1)
    return {t.task_id(): store.get(t.task_id()) for t in spec.expand()}


class TestChaosSpecValidation:
    def test_rate_bounds(self):
        for rate in (-0.1, 1.1):
            with pytest.raises(CampaignError, match="rate"):
                ChaosSpec(rate=rate)

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError, match="unknown chaos kind"):
            ChaosSpec(rate=0.5, kinds=("explode",))

    def test_empty_kinds_rejected(self):
        with pytest.raises(CampaignError, match="at least one"):
            ChaosSpec(rate=0.5, kinds=())

    def test_hang_must_be_positive(self):
        with pytest.raises(CampaignError, match="hang"):
            ChaosSpec(rate=0.5, hang_s=0.0)


class TestDraw:
    def test_deterministic(self):
        spec = ChaosSpec(rate=0.5, seed=7, kinds=CHAOS_KINDS)
        draws = [spec.draw(f"task-{i}", a) for i in range(50) for a in (1, 2)]
        again = [spec.draw(f"task-{i}", a) for i in range(50) for a in (1, 2)]
        assert draws == again

    def test_rate_zero_never_fires(self):
        spec = ChaosSpec(rate=0.0)
        assert all(spec.draw(f"t{i}", 1) is None for i in range(50))

    def test_rate_one_always_fires(self):
        spec = ChaosSpec(rate=1.0, kinds=("raise",))
        assert all(spec.draw(f"t{i}", 1) == "raise" for i in range(50))

    def test_attempts_draw_independently(self):
        spec = ChaosSpec(rate=0.5, seed=3, kinds=("raise",))
        fates = {spec.draw("task", attempt) for attempt in range(1, 40)}
        assert fates == {None, "raise"}  # neither all-fire nor all-clear

    def test_seed_changes_the_schedule(self):
        a = ChaosSpec(rate=0.5, seed=1, kinds=("raise",))
        b = ChaosSpec(rate=0.5, seed=2, kinds=("raise",))
        draws_a = [a.draw(f"t{i}", 1) for i in range(60)]
        draws_b = [b.draw(f"t{i}", 1) for i in range(60)]
        assert draws_a != draws_b


class TestInlineProjection:
    def test_drops_process_level_kinds(self):
        spec = ChaosSpec(rate=0.5, kinds=("crash", "hang", "raise", "torn-write"))
        assert spec.inline().kinds == ("raise", "torn-write")

    def test_none_when_nothing_survives(self):
        assert ChaosSpec(rate=0.5, kinds=("crash", "hang")).inline() is None

    def test_preserves_rate_and_seed(self):
        spec = ChaosSpec(rate=0.3, seed=9, kinds=("crash", "raise"))
        assert (spec.inline().rate, spec.inline().seed) == (0.3, 9)


class TestParse:
    def test_full_form(self):
        spec = ChaosSpec.parse("rate=0.3,seed=7,kinds=crash|raise,hang=5")
        assert spec == ChaosSpec(
            rate=0.3, seed=7, kinds=("crash", "raise"), hang_s=5.0
        )

    def test_rate_is_mandatory(self):
        with pytest.raises(CampaignError, match="rate"):
            ChaosSpec.parse("seed=7")

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError, match="unknown --chaos field"):
            ChaosSpec.parse("rate=0.3,frequency=9")

    def test_bad_value_rejected(self):
        with pytest.raises(CampaignError, match="not a valid value"):
            ChaosSpec.parse("rate=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(CampaignError, match="NAME=VALUE"):
            ChaosSpec.parse("rate")


class TestChaosParity:
    """The headline invariant: chaos cannot change the science."""

    def test_pool_chaos_rows_bit_equal_clean_run(self, clean_rows, tmp_path):
        spec = small_spec()
        store = JsonlStore(tmp_path / "chaos.jsonl")
        failures = FailureLog(FailureLog.sidecar_path(store.path))
        stats = run_campaign(
            spec,
            store,
            workers=2,
            chaos=ChaosSpec(
                rate=0.6, seed=3, kinds=("crash", "raise", "torn-write")
            ),
            failures=failures,
            retry=FAST_RETRY,
        )
        assert stats.failed == 0
        assert stats.executed == 4
        assert stats.chaos_injections > 0, "rate 0.6 must actually inject"
        assert {
            t.task_id(): store.get(t.task_id()) for t in spec.expand()
        } == clean_rows
        # Every injected failure left evidence in the sidecar.
        assert len(failures.attempt_records()) == stats.retried

    def test_inline_chaos_rows_bit_equal_clean_run(self, clean_rows, tmp_path):
        spec = small_spec()
        store = JsonlStore(tmp_path / "inline.jsonl")
        stats = run_campaign(
            spec,
            store,
            workers=1,
            chaos=ChaosSpec(rate=0.6, seed=5, kinds=("raise", "torn-write")),
            retry=FAST_RETRY,
        )
        assert stats.failed == 0
        assert {
            t.task_id(): store.get(t.task_id()) for t in spec.expand()
        } == clean_rows

    def test_torn_write_recovery_round_trips(self, clean_rows, tmp_path):
        spec = small_spec()
        store = JsonlStore(tmp_path / "torn.jsonl")
        # Chaos draws are keyed per (seed, task_id, attempt), and task
        # ids hash the whole config dict — adding a config field re-rolls
        # every draw, so at rate 0.8 a schema change can hand one task
        # eight straight injections.  When this assertion trips after
        # such a change, re-pick a seed where all four tasks recover
        # within the retry budget (and still see several injections).
        stats = run_campaign(
            spec,
            store,
            workers=1,
            chaos=ChaosSpec(rate=0.8, seed=12, kinds=("torn-write",)),
            retry=FAST_RETRY,
        )
        assert stats.failed == 0
        # The store survived mid-run truncation/reload cycles intact.
        reloaded = JsonlStore(store.path)
        assert {
            t.task_id(): reloaded.get(t.task_id()) for t in spec.expand()
        } == clean_rows


class TestPoisonQuarantine:
    def test_permanent_failures_quarantine_and_raise(self, tmp_path):
        spec = small_spec()
        store = JsonlStore(tmp_path / "poison.jsonl")
        failures = FailureLog(FailureLog.sidecar_path(store.path))
        with pytest.raises(CampaignError, match="quarantined"):
            run_campaign(
                spec,
                store,
                workers=2,
                chaos=ChaosSpec(rate=1.0, seed=1, kinds=("raise",)),
                failures=failures,
                retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            )
        records = failures.quarantine_records()
        assert len(records) == 4
        assert all(r["attempts"] == 2 for r in records)

    def test_raise_on_failure_false_returns_stats(self, tmp_path):
        spec = small_spec()
        store = JsonlStore(tmp_path / "poison.jsonl")
        stats = run_campaign(
            spec,
            store,
            workers=1,
            chaos=ChaosSpec(rate=1.0, seed=1, kinds=("raise",)),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            raise_on_failure=False,
        )
        assert stats.failed == 4
        assert stats.executed == 0
        assert len(stats.failures) == 4
        assert stats.failure_summary().count("\n") == 3

    def test_deterministic_task_errors_quarantine_without_retry(self, tmp_path):
        # A scenario that raises on its own (not via chaos) is poison on
        # the first attempt: retrying a content-addressed task is futile.
        spec = small_spec()
        import dataclasses

        bad = dataclasses.replace(
            spec, base={**spec.base, "round_duration_s": -5.0}
        )
        store = MemoryStore()
        stats = run_campaign(
            spec=bad, store=store, workers=1, raise_on_failure=False,
        )
        assert stats.failed == 4
        assert stats.retried == 0
        assert all(f.attempts == 1 for f in stats.failures)
        assert all(f.failure == "task-error" for f in stats.failures)


class TestSerialFallback:
    def test_crash_storm_degrades_to_serial_and_completes(
        self, clean_rows, tmp_path
    ):
        spec = small_spec()
        store = JsonlStore(tmp_path / "crash.jsonl")
        stats = run_campaign(
            spec,
            store,
            workers=2,
            chaos=ChaosSpec(rate=1.0, seed=9, kinds=("crash",)),
            retry=RetryPolicy(
                max_attempts=10, backoff_base_s=0.0, jitter=0.0,
                restart_limit=3,
            ),
        )
        assert stats.serial_fallback
        assert stats.worker_restarts >= 3
        assert stats.failed == 0
        # Inline fallback drops `crash` (inline projection) and finishes.
        assert {
            t.task_id(): store.get(t.task_id()) for t in spec.expand()
        } == clean_rows
