"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.rounds == 15
        assert args.seed == 2008

    def test_highway_speed_list(self):
        args = build_parser().parse_args(["highway", "--speeds", "30,60"])
        assert args.speeds == "30,60"

    def test_figures_flow(self):
        args = build_parser().parse_args(["figures", "--flow", "2"])
        assert args.flow == 2


class TestCommands:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Lost before coop" in out
        assert "Paper before" in out

    def test_figures_runs(self, capsys):
        assert main(["figures", "--rounds", "2", "--flow", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 6" in out
        assert "Region I" in out

    def test_figures_rejects_unknown_flow(self, capsys):
        assert main(["figures", "--rounds", "2", "--flow", "9"]) == 2

    def test_highway_runs(self, capsys):
        assert main(["highway", "--speeds", "80", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "km/h" in out


class TestProfileCommand:
    def test_profile_runs_and_prints_hot_spots(self, capsys):
        assert main([
            "profile", "--scenario", "urban",
            "--set", "round_duration_s=5", "--limit", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "simulator" in out

    def test_profile_sort_and_seed_flags(self, capsys):
        assert main([
            "profile", "--scenario", "urban", "--seed", "7",
            "--set", "round_duration_s=5", "--sort", "tottime",
        ]) == 0
        assert "tottime" in capsys.readouterr().out

    def test_profile_rejects_malformed_set(self, capsys):
        assert main([
            "profile", "--scenario", "urban", "--set", "nonsense",
        ]) == 2

    def test_profile_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--scenario", "nope"])
