"""RPL6xx robustness rules: silently swallowed broad excepts."""

from rulefixtures import codes, only


class TestSilentBroadExcept:
    def test_flags_except_exception_pass(self, lint_module):
        findings = lint_module(
            "campaign/util.py",
            """
            def load(path):
                try:
                    return open(path).read()
                except Exception:
                    pass
            """,
        )
        assert codes(findings) == ["RPL601"]
        assert "except Exception" in findings[0].message

    def test_flags_bare_except(self, lint_module):
        findings = lint_module(
            "campaign/util.py",
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    pass
            """,
        )
        assert codes(findings) == ["RPL601"]
        assert "bare except" in findings[0].message

    def test_flags_base_exception_and_tuple_clauses(self, lint_module):
        findings = lint_module(
            "campaign/util.py",
            """
            def load(paths):
                for path in paths:
                    try:
                        return open(path).read()
                    except BaseException:
                        ...
                    try:
                        return open(path).read()
                    except (ValueError, Exception):
                        continue
            """,
        )
        assert codes(only(findings, "RPL601")) == ["RPL601", "RPL601"]

    def test_specific_exception_swallow_is_legal(self, lint_module):
        # Naming the anticipated condition is the documentation the rule
        # wants; suppressing a *specific* error is a decision, not a hole.
        findings = lint_module(
            "campaign/util.py",
            """
            import tokenize

            def scan(source):
                try:
                    list(tokenize.generate_tokens(source.readline))
                except tokenize.TokenizeError:
                    pass
            """,
        )
        assert not only(findings, "RPL601")

    def test_handled_broad_except_is_legal(self, lint_module):
        findings = lint_module(
            "campaign/util.py",
            """
            def attempt(task, log):
                try:
                    return task()
                except Exception as exc:
                    log.append(exc)
                    return None
            """,
        )
        assert not only(findings, "RPL601")

    def test_reraise_and_return_are_legal(self, lint_module):
        findings = lint_module(
            "campaign/util.py",
            """
            def attempt(task):
                try:
                    return task()
                except Exception:
                    raise

            def ok(task):
                try:
                    task()
                    return True
                except Exception:
                    return False
            """,
        )
        assert not only(findings, "RPL601")

    def test_waivable_with_reason(self, lint_module):
        findings = lint_module(
            "campaign/util.py",
            """
            def best_effort_cleanup(path):
                import os
                try:
                    os.unlink(path)
                except Exception:  # repro: lint-ok RPL601 (cleanup is best-effort by design)
                    pass
            """,
        )
        assert not only(findings, "RPL601")
        assert [w.code for w in findings.waived] == ["RPL601"]

    def test_outside_repro_package_not_checked(self, tmp_path):
        from repro.lint import lint_file

        path = tmp_path / "scripts" / "helper.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "try:\n    pass\nexcept Exception:\n    pass\n", encoding="utf-8"
        )
        reported, _waived = lint_file(path)
        assert not [f for f in reported if f.code == "RPL601"]
