"""The mypy typed island stays green (skipped where mypy is absent).

CI's lint job installs mypy and runs the same command; this test gives
the same signal locally for environments that have it.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_mypy_config_names_the_island():
    config = (REPO_ROOT / "mypy.ini").read_text(encoding="utf-8")
    assert "[mypy-repro.lint.*]" in config
    assert "disallow_untyped_defs = True" in config


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed (CI installs it)"
)
def test_typed_island_is_clean():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            str(REPO_ROOT / "src" / "repro" / "lint"),
            str(REPO_ROOT / "src" / "repro" / "sim"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
