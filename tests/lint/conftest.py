"""Shared fixtures for the reprolint tests.

Fixture modules are written to a ``repro/``-rooted tree under
``tmp_path`` so the scoping rules see the same logical paths
(``mac/foo.py``) they see under ``src/repro`` — the linter derives
scope from the last ``repro`` path component, not the filesystem root.

``--import-mode=importlib`` does not put this directory on ``sys.path``,
so the shared assertion helpers live in :mod:`rulefixtures` and the
path is added here (conftest loads before any test module).
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.lint import Finding, lint_file  # noqa: E402


class _Findings(list):
    """Reported findings, with the waived ones along for the ride."""

    waived: list


@pytest.fixture
def lint_module(tmp_path):
    """``lint_module(logical, source)`` → reported findings."""

    def run(logical: str, source: str) -> _Findings:
        path = tmp_path / "repro" / logical
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        reported, waived = lint_file(path)
        result = _Findings(reported)
        result.waived = waived
        return result

    return run
