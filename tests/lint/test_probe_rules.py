"""RPL3xx: probe bundles guarded with ``is None``; no import-time bundles."""

from __future__ import annotations

from rulefixtures import only


class TestUnguardedProbe:
    def test_unguarded_dereference_flagged(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def deliver(self):
                    self._obs.deliveries.inc()
            """,
        )
        assert len(only(findings, "RPL301")) == 1

    def test_is_not_none_guard_allowed(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def deliver(self):
                    if self._obs is not None:
                        self._obs.deliveries.inc()
            """,
        )
        assert only(findings, "RPL301") == []

    def test_early_return_guard_allowed(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def deliver(self, event):
                    if self._obs is None:
                        event.fire()
                        return
                    self._obs.deliveries.inc()
                    event.fire()
            """,
        )
        assert only(findings, "RPL301") == []

    def test_local_alias_inherits_guard(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def deliver(self):
                    obs = self._obs
                    if obs is not None:
                        obs.deliveries.inc()
            """,
        )
        assert only(findings, "RPL301") == []

    def test_unguarded_local_alias_flagged(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def deliver(self):
                    obs = self._obs
                    obs.deliveries.inc()
            """,
        )
        assert len(only(findings, "RPL301")) == 1

    def test_guard_does_not_leak_to_else_branch(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def deliver(self, fast):
                    if self._obs is not None:
                        self._obs.deliveries.inc()
                    else:
                        self._obs.drops.inc()
            """,
        )
        assert len(only(findings, "RPL301")) == 1

    def test_assigning_the_bundle_is_not_a_dereference(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
                def snapshot(self):
                    return self._obs
            """,
        )
        assert only(findings, "RPL301") == []

    def test_obs_package_itself_exempt(self, lint_module):
        findings = lint_module(
            "obs/probes.py",
            """
            def medium_probes():
                return None
            class Demo:
                def __init__(self):
                    self._obs = medium_probes()
                def hit(self):
                    self._obs.counter.inc()
            """,
        )
        assert only(findings, "RPL301") == []


class TestImportTimeProbe:
    def test_module_scope_bundle_flagged(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            PROBES = medium_probes()
            """,
        )
        assert len(only(findings, "RPL302")) == 1

    def test_class_scope_bundle_flagged(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                probes = medium_probes()
            """,
        )
        assert len(only(findings, "RPL302")) == 1

    def test_init_scope_bundle_allowed(self, lint_module):
        findings = lint_module(
            "mac/m.py",
            """
            from repro.obs.probes import medium_probes
            class Medium:
                def __init__(self):
                    self._obs = medium_probes()
            """,
        )
        assert only(findings, "RPL302") == []
