"""Baseline: round-trip, budgeted matching, staleness, refused growth."""

from __future__ import annotations

import json

import pytest

from repro.lint import Finding
from repro.lint.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)


def _finding(code="RPL501", path="src/repro/mac/f.py", line=10, ctx="Frame"):
    return Finding(
        code=code, message="m", path=path, line=line, col=0, context=ctx
    )


class TestRoundTrip:
    def test_write_then_apply_absorbs_exactly(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        findings = [_finding(line=10), _finding(line=20)]
        write_baseline(baseline, findings)
        budgets = load_baseline(baseline)
        reported, baselined, stale = apply_baseline(findings, budgets)
        assert reported == []
        assert len(baselined) == 2
        assert stale == []

    def test_line_numbers_do_not_matter(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding(line=10)])
        # The same finding after unrelated edits moved it 90 lines down.
        reported, baselined, stale = apply_baseline(
            [_finding(line=100)], load_baseline(baseline)
        )
        assert reported == [] and len(baselined) == 1 and stale == []

    def test_budget_is_per_key_count(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding(line=10)])
        # A *second* instance in the same context exceeds the budget.
        reported, baselined, _ = apply_baseline(
            [_finding(line=10), _finding(line=11)], load_baseline(baseline)
        )
        assert len(baselined) == 1
        assert len(reported) == 1

    def test_paid_down_debt_is_stale(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding()])
        reported, baselined, stale = apply_baseline([], load_baseline(baseline))
        assert reported == [] and baselined == []
        assert stale == [("mac/f.py", "RPL501", "Frame")]


class TestGrowthRefusal:
    def test_refuses_new_keys_without_allow_growth(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding()])
        with pytest.raises(BaselineError, match="refusing to grow"):
            write_baseline(
                baseline, [_finding(), _finding(code="RPL101", ctx="other")]
            )

    def test_refuses_count_increase(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding(line=10)])
        with pytest.raises(BaselineError, match="refusing to grow"):
            write_baseline(baseline, [_finding(line=10), _finding(line=12)])

    def test_allow_growth_overrides(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding()])
        document = write_baseline(
            baseline,
            [_finding(), _finding(code="RPL101")],
            allow_growth=True,
        )
        assert len(document["entries"]) == 2

    def test_shrink_always_succeeds(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [_finding(), _finding(code="RPL101")])
        document = write_baseline(baseline, [_finding()])
        assert len(document["entries"]) == 1


class TestFormat:
    def test_document_shape(self):
        document = render_baseline([_finding(line=1), _finding(line=2)])
        assert document["version"] == 1
        assert document["entries"] == [
            {"module": "mac/f.py", "code": "RPL501", "context": "Frame",
             "count": 2},
        ]

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99}))
        with pytest.raises(BaselineError):
            load_baseline(bad)
