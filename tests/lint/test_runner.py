"""Runner: collection, filtering, exit codes, output formats, stats."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main as cli_main
from repro.lint import lint_paths, render_json, render_text, stats_snapshot
from repro.obs.export import render_stats_report
from repro.obs.registry import merge_snapshots

DIRTY = """
import time
def now():
    return time.time()
"""

CLEAN = "X = 1\n"


def _write(tmp_path, logical, source):
    path = tmp_path / "repro" / logical
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestCollection:
    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        _write(tmp_path, "sim/a.py", CLEAN)
        _write(tmp_path, "sim/__pycache__/a.cpython-311.py", DIRTY)
        _write(tmp_path, "sim/.hidden/b.py", DIRTY)
        report = lint_paths([tmp_path])
        assert len(report.files) == 1
        assert report.findings == []

    def test_single_file_path(self, tmp_path):
        path = _write(tmp_path, "sim/a.py", DIRTY)
        report = lint_paths([path])
        assert [f.code for f in report.findings] == ["RPL101"]

    def test_missing_path_errors(self, tmp_path, capsys):
        exit_code = cli_main(["lint", str(tmp_path / "nope")])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().out


class TestFiltering:
    def test_select_prefix(self, tmp_path):
        _write(tmp_path, "sim/a.py", DIRTY)  # RPL101
        _write(
            tmp_path,
            "sim/b.py",
            """
            class Ev:
                def __init__(self):
                    self.t = 0.0
            """,
        )  # RPL501
        report = lint_paths([tmp_path], select=["RPL1"])
        assert {f.code for f in report.findings} == {"RPL101"}
        report = lint_paths([tmp_path], ignore=["RPL5"])
        assert {f.code for f in report.findings} == {"RPL101"}

    def test_unknown_prefix_is_usage_error(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", CLEAN)
        assert cli_main(["lint", str(tmp_path), "--select", "RPL9"]) == 2


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", CLEAN)
        assert cli_main(["lint", str(tmp_path)]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", DIRTY)
        assert cli_main(["lint", str(tmp_path)]) == 1

    def test_stale_baseline_exits_one(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            cli_main(
                ["lint", str(tmp_path), "--write-baseline",
                 "--baseline", str(baseline)]
            )
            == 0
        )
        # Baselined: clean.
        assert (
            cli_main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        )
        # Debt paid down → the baseline entry goes stale → exit 1.
        _write(tmp_path, "sim/a.py", CLEAN)
        assert (
            cli_main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 1
        )
        out = capsys.readouterr().out
        assert "stale baseline" in out


class TestOutput:
    def test_text_format(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", DIRTY)
        cli_main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert "RPL101" in out and "1 finding(s)" in out

    def test_json_format(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", DIRTY)
        cli_main(["lint", str(tmp_path), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert document["exit_code"] == 1
        assert document["findings"][0]["code"] == "RPL101"
        assert document["findings"][0]["context"] == "now"

    def test_render_helpers_match_cli(self, tmp_path):
        _write(tmp_path, "sim/a.py", DIRTY)
        report = lint_paths([tmp_path])
        assert "RPL101" in render_text(report)
        assert render_json(report)["exit_code"] == 1


class TestStats:
    def test_snapshot_uses_obs_registry_format(self, tmp_path):
        _write(tmp_path, "sim/a.py", DIRTY)
        snapshot = stats_snapshot(lint_paths([tmp_path]))
        assert snapshot["lint.findings"] == {"type": "counter", "value": 1}
        assert snapshot["lint.rule_hits"]["type"] == "table"
        assert snapshot["lint.rule_hits"]["rows"]["RPL101"]["count"] == 1

    def test_snapshot_rides_merge_and_render(self, tmp_path):
        _write(tmp_path, "sim/a.py", DIRTY)
        snapshot = stats_snapshot(lint_paths([tmp_path]))
        merged = merge_snapshots([snapshot, snapshot])
        assert merged["lint.findings"]["value"] == 2
        rendered = render_stats_report(merged, elapsed_s=1.0)
        assert "lint.findings" in rendered

    def test_cli_stats_flag(self, tmp_path, capsys):
        _write(tmp_path, "sim/a.py", DIRTY)
        cli_main(["lint", str(tmp_path), "--stats"])
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["lint.rule_hits.RPL101"]["value"] == 1
