"""RPL1xx: ambient randomness, id()-ordering, set iteration."""

from __future__ import annotations

from rulefixtures import only


class TestAmbientRandomness:
    def test_numpy_default_rng_flagged(self, lint_module):
        findings = lint_module(
            "radio/chan.py",
            """
            import numpy as np
            def build():
                return np.random.default_rng()
            """,
        )
        assert len(only(findings, "RPL101")) == 1

    def test_stdlib_random_flagged(self, lint_module):
        findings = lint_module(
            "mac/backoff.py",
            """
            import random
            def slot():
                return random.randrange(16)
            """,
        )
        assert len(only(findings, "RPL101")) == 1

    def test_wall_clock_flagged(self, lint_module):
        findings = lint_module(
            "sim/stamp.py",
            """
            import time
            from datetime import datetime
            def stamp():
                return time.time(), datetime.now()
            """,
        )
        assert len(only(findings, "RPL101")) == 2

    def test_perf_counter_allowed(self, lint_module):
        findings = lint_module(
            "sim/cost.py",
            """
            import time
            def measure():
                return time.perf_counter()
            """,
        )
        assert only(findings, "RPL101") == []

    def test_rng_seams_exempt(self, lint_module):
        findings = lint_module(
            "sim/random.py",
            """
            import numpy as np
            def root(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert only(findings, "RPL101") == []

    def test_outside_determinism_packages_not_scoped(self, lint_module):
        findings = lint_module(
            "analysis/timing.py",
            """
            import time
            def wall():
                return time.time()
            """,
        )
        assert only(findings, "RPL101") == []

    def test_alias_resolution(self, lint_module):
        findings = lint_module(
            "net/jitter.py",
            """
            from random import uniform as u
            def jitter():
                return u(0, 1)
            """,
        )
        assert len(only(findings, "RPL101")) == 1

    def test_local_name_shadowing_numpy_not_flagged(self, lint_module):
        findings = lint_module(
            "net/local.py",
            """
            def draw(streams):
                return streams.random.uniform()
            """,
        )
        assert only(findings, "RPL101") == []


class TestIdentityOrdering:
    def test_id_in_sort_key_flagged(self, lint_module):
        findings = lint_module(
            "core/order.py",
            """
            def stable(nodes):
                return sorted(nodes, key=lambda n: id(n))
            """,
        )
        assert len(only(findings, "RPL102")) == 1

    def test_id_in_hash_flagged(self, lint_module):
        findings = lint_module(
            "core/order.py",
            """
            def h(n):
                return hash(id(n))
            """,
        )
        assert len(only(findings, "RPL102")) == 1

    def test_stable_key_allowed(self, lint_module):
        findings = lint_module(
            "core/order.py",
            """
            def stable(nodes):
                return sorted(nodes, key=lambda n: n.node_id)
            """,
        )
        assert only(findings, "RPL102") == []


class TestSetIteration:
    def test_for_over_set_call_flagged(self, lint_module):
        findings = lint_module(
            "net/flood.py",
            """
            def flood(neighbors):
                for n in set(neighbors):
                    n.send()
            """,
        )
        assert len(only(findings, "RPL103")) == 1

    def test_comprehension_over_set_literal_flagged(self, lint_module):
        findings = lint_module(
            "net/flood.py",
            "ids = [n for n in {1, 2, 3}]\n",
        )
        assert len(only(findings, "RPL103")) == 1

    def test_sorted_set_allowed(self, lint_module):
        findings = lint_module(
            "net/flood.py",
            """
            def flood(neighbors):
                for n in sorted(set(neighbors), key=lambda x: x.node_id):
                    n.send()
            """,
        )
        assert only(findings, "RPL103") == []
