"""Tier-1 gate: the shipped tree lints clean.

Every finding in ``src/repro`` must be fixed, carry an inline
``lint-ok`` waiver with a written reason, or sit in the committed
baseline — a new violation anywhere in the package fails this test,
which is exactly the CI contract ``repro lint`` enforces.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "tools" / "lint_baseline.json"


def test_src_repro_lints_clean_modulo_baseline():
    report = lint_paths(
        [REPO_ROOT / "src" / "repro"],
        baseline_path=BASELINE if BASELINE.exists() else None,
    )
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )
    assert report.stale_baseline == []


def test_src_repro_ships_no_silent_baseline_entries():
    """ISSUE 8 policy: src/repro debt is fixed or waived inline — the
    committed baseline stays empty."""
    if BASELINE.exists():
        import json

        document = json.loads(BASELINE.read_text())
        assert document["entries"] == []


def test_every_waiver_in_the_tree_carries_a_reason():
    report = lint_paths([REPO_ROOT / "src" / "repro"], select=["RPL001"])
    assert report.findings == []
