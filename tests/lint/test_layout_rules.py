"""RPL501: hot-package classes declare ``__slots__``."""

from __future__ import annotations

from rulefixtures import only


class TestSlots:
    def test_plain_class_without_slots_flagged(self, lint_module):
        findings = lint_module(
            "mac/frames2.py",
            """
            class Frame:
                def __init__(self, src):
                    self.src = src
            """,
        )
        assert len(only(findings, "RPL501")) == 1

    def test_plain_class_with_slots_allowed(self, lint_module):
        findings = lint_module(
            "mac/frames2.py",
            """
            class Frame:
                __slots__ = ("src",)
                def __init__(self, src):
                    self.src = src
            """,
        )
        assert only(findings, "RPL501") == []

    def test_dataclass_without_slots_flagged(self, lint_module):
        findings = lint_module(
            "sim/ev.py",
            """
            from dataclasses import dataclass
            @dataclass(frozen=True)
            class Event:
                time: float
            """,
        )
        assert len(only(findings, "RPL501")) == 1

    def test_dataclass_with_slots_allowed(self, lint_module):
        findings = lint_module(
            "sim/ev.py",
            """
            from dataclasses import dataclass
            @dataclass(frozen=True, slots=True)
            class Event:
                time: float
            """,
        )
        assert only(findings, "RPL501") == []

    def test_enum_exception_protocol_exempt(self, lint_module):
        findings = lint_module(
            "sim/kinds.py",
            """
            import enum
            import typing
            class Phase(enum.Enum):
                RX = 1
            class WheelError(Exception):
                pass
            class Chained(WheelError):
                pass
            class Queue(typing.Protocol):
                def pop(self): ...
            """,
        )
        assert only(findings, "RPL501") == []

    def test_abc_base_needs_empty_slots(self, lint_module):
        findings = lint_module(
            "radio/models.py",
            """
            import abc
            class Model(abc.ABC):
                @abc.abstractmethod
                def loss_db(self, d): ...
            """,
        )
        assert len(only(findings, "RPL501")) == 1
        assert "__slots__ = ()" in only(findings, "RPL501")[0].message

    def test_cold_packages_not_scoped(self, lint_module):
        findings = lint_module(
            "analysis/table.py",
            """
            class Row:
                def __init__(self):
                    self.cells = []
            """,
        )
        assert only(findings, "RPL501") == []
