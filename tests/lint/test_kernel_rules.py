"""RPL2xx: the last-ulp libm contract for radio batch kernels."""

from __future__ import annotations

from rulefixtures import only


class TestLibmRouting:
    def test_np_log10_in_radio_flagged(self, lint_module):
        findings = lint_module(
            "radio/pl.py",
            """
            import numpy as np
            def loss_db_batch(d):
                return 20.0 * np.log10(d)
            """,
        )
        assert len(only(findings, "RPL201")) == 1
        assert "libm_map" in only(findings, "RPL201")[0].message

    def test_alias_and_from_import_resolved(self, lint_module):
        findings = lint_module(
            "radio/pl.py",
            """
            import numpy
            from numpy import hypot
            def f(a, b):
                return numpy.exp(a) + hypot(a, b)
            """,
        )
        assert len(only(findings, "RPL201")) == 2

    def test_ieee_exact_ufuncs_allowed(self, lint_module):
        findings = lint_module(
            "radio/pl.py",
            """
            import numpy as np
            def f(d):
                return np.sqrt(d) + np.floor(d) + np.maximum(d, 0.0)
            """,
        )
        assert only(findings, "RPL201") == []

    def test_keyed_seam_exempt(self, lint_module):
        findings = lint_module(
            "radio/keyed.py",
            """
            import numpy as np
            def libm_map_fallback(x):
                return np.log(x)
            """,
        )
        assert only(findings, "RPL201") == []

    def test_math_module_allowed(self, lint_module):
        findings = lint_module(
            "radio/pl.py",
            """
            import math
            def loss_db(d):
                return 20.0 * math.log10(d)
            """,
        )
        assert only(findings, "RPL201") == []

    def test_outside_radio_not_scoped(self, lint_module):
        findings = lint_module(
            "analysis/fit.py",
            """
            import numpy as np
            def fit(x):
                return np.log(x)
            """,
        )
        assert only(findings, "RPL201") == []
