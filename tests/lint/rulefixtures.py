"""Helpers shared by the reprolint rule tests."""

from __future__ import annotations


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def only(findings, code: str) -> list:
    return [f for f in findings if f.code == code]
