"""Framework behaviour: waivers, scoping, contexts, parse errors."""

from __future__ import annotations

import textwrap

from repro.lint import ModuleContext, all_rules, logical_path
from repro.lint.framework import in_packages

from rulefixtures import only


class TestLogicalPath:
    def test_src_tree(self):
        assert logical_path("src/repro/mac/medium.py") == "mac/medium.py"

    def test_innermost_repro_wins(self):
        assert (
            logical_path("/x/repro/tmp/repro/sim/wheel.py") == "sim/wheel.py"
        )

    def test_outside_any_repro_package(self):
        assert logical_path("tests/lint/test_framework.py") is None

    def test_in_packages(self):
        assert in_packages("mac/medium.py", ("mac", "net"))
        assert not in_packages("obs/probes.py", ("mac", "net"))
        assert not in_packages(None, ("mac",))


class TestWaivers:
    def test_waiver_with_reason_suppresses_finding(self, lint_module):
        findings = lint_module(
            "sim/clock.py",
            """
            import time
            def now():
                return time.time()  # repro: lint-ok RPL101 (fixture: wall clock wanted)
            """,
        )
        assert only(findings, "RPL101") == []
        assert [f.code for f in findings.waived] == ["RPL101"]

    def test_waiver_on_preceding_line_covers_statement_below(self, lint_module):
        findings = lint_module(
            "sim/clock.py",
            """
            import time
            def now():
                # repro: lint-ok RPL101 (fixture: wall clock wanted)
                return time.time()
            """,
        )
        assert only(findings, "RPL101") == []

    def test_waiver_without_reason_is_rpl001(self, lint_module):
        findings = lint_module(
            "sim/clock.py",
            """
            import time
            def now():
                return time.time()  # repro: lint-ok RPL101
            """,
        )
        assert [f.code for f in only(findings, "RPL001")]
        # The malformed waiver does NOT suppress the finding it sits on.
        assert [f.code for f in only(findings, "RPL101")]

    def test_waiver_with_unknown_code_is_rpl001(self, lint_module):
        findings = lint_module(
            "sim/clock.py",
            "x = 1  # repro: lint-ok NOTACODE (because)\n",
        )
        assert len(only(findings, "RPL001")) == 1

    def test_unused_waiver_is_rpl002(self, lint_module):
        findings = lint_module(
            "sim/clean.py",
            "x = 1  # repro: lint-ok RPL101 (nothing here any more)\n",
        )
        assert len(only(findings, "RPL002")) == 1

    def test_waiver_covers_only_listed_codes(self, lint_module):
        findings = lint_module(
            "sim/clock.py",
            """
            import time
            def now():
                return time.time()  # repro: lint-ok RPL102 (wrong code on purpose)
            """,
        )
        # RPL102 waiver does not cover the RPL101 finding, and is stale.
        assert len(only(findings, "RPL101")) == 1
        assert len(only(findings, "RPL002")) == 1

    def test_marker_inside_string_literal_is_not_a_waiver(self, lint_module):
        findings = lint_module(
            "sim/clock.py",
            '''
            import time
            DOC = """example: # repro: lint-ok RPL101 (doc snippet)"""
            def now():
                return time.time()
            ''',
        )
        assert len(only(findings, "RPL101")) == 1
        assert only(findings, "RPL002") == []

    def test_multiple_codes_one_waiver(self, lint_module):
        findings = lint_module(
            "sim/multi.py",
            """
            import time, random
            def draw():
                return random.random() + time.time()  # repro: lint-ok RPL101, RPL101 (fixture: both on one line)
            """,
        )
        assert only(findings, "RPL101") == []


class TestModuleContext:
    def test_parse_error_is_rpl000(self, lint_module):
        findings = lint_module("sim/broken.py", "def broken(:\n")
        assert [f.code for f in findings] == ["RPL000"]

    def test_context_qualnames(self):
        source = textwrap.dedent(
            """
            class Medium:
                def deliver(self):
                    x = 1
            """
        )
        module = ModuleContext("src/repro/mac/m.py", source)
        import ast

        assign = next(
            n for n in ast.walk(module.tree) if isinstance(n, ast.Assign)
        )
        assert module.context_of(assign) == "Medium.deliver"
        assert module.in_function(assign)

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.code.startswith("RPL") and len(rule.code) == 6
            assert rule.name
            assert len(rule.rationale) > 40
