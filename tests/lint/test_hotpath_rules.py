"""RPL4xx: flattened processes, honest accumulators, immutable defaults.

``TestFinishBatchRegression`` is the acceptance test for this rule
family: it reintroduces the exact accumulator-shadowing bug PR 7
shipped in ``Medium._finish_batch`` — and that the runtime A/B pins
missed — and asserts the linter refuses it, while accepting the fixed
shape that is in the tree today.
"""

from __future__ import annotations

from rulefixtures import only


class TestGeneratorProcess:
    def test_generator_in_mac_flagged(self, lint_module):
        findings = lint_module(
            "mac/csma.py",
            """
            def contend(self):
                while True:
                    yield self.backoff()
            """,
        )
        assert len(only(findings, "RPL401")) == 1

    def test_one_finding_per_generator(self, lint_module):
        findings = lint_module(
            "net/flow.py",
            """
            def sender(self):
                yield 1.0
                yield 2.0
                yield from self.drain()
            """,
        )
        assert len(only(findings, "RPL401")) == 1

    def test_callback_shape_allowed(self, lint_module):
        findings = lint_module(
            "mac/csma.py",
            """
            def _on_slot(self):
                if self.pending:
                    self.sim.schedule(self.slot_s, self._on_slot)
            """,
        )
        assert only(findings, "RPL401") == []

    def test_generators_fine_in_core(self, lint_module):
        findings = lint_module(
            "core/recovery.py",
            """
            def recover(self):
                yield self.guard_s
            """,
        )
        assert only(findings, "RPL401") == []


class TestFinishBatchRegression:
    """The PR 7 ``_finish_batch`` bug shape, verbatim."""

    BUGGY = """
        class Medium:
            def _finish_batch(self, batch, delivered):
                # BUG: rebinding the caller's accumulator severs it.
                delivered = self._channel.frames_delivered_batch(batch)
                for frame, ok in zip(batch, delivered):
                    if ok:
                        delivered.append(frame)
        """

    FIXED = """
        class Medium:
            def _finish_batch(self, batch, delivered):
                outcomes = self._channel.frames_delivered_batch(batch)
                for frame, ok in zip(batch, outcomes):
                    if ok:
                        delivered.append(frame)
        """

    def test_linter_catches_the_reintroduced_bug(self, lint_module):
        findings = lint_module("mac/medium.py", self.BUGGY)
        hits = only(findings, "RPL402")
        assert len(hits) == 1
        assert "delivered" in hits[0].message
        assert hits[0].context == "Medium._finish_batch"

    def test_the_shipped_fix_is_clean(self, lint_module):
        findings = lint_module("mac/medium.py", self.FIXED)
        assert only(findings, "RPL402") == []


class TestAccumulatorShadow:
    def test_local_accumulator_rebound_in_its_loop_flagged(self, lint_module):
        findings = lint_module(
            "sim/agg.py",
            """
            def collect(rows):
                out = []
                for row in rows:
                    out.append(row.key)
                    out = row.tail()
            """,
        )
        assert len(only(findings, "RPL402")) == 1

    def test_reinit_to_empty_container_allowed(self, lint_module):
        findings = lint_module(
            "sim/agg.py",
            """
            def batches(rows, size):
                chunk = []
                for row in rows:
                    chunk.append(row)
                    if len(chunk) == size:
                        emit(chunk)
                        chunk = []
            """,
        )
        assert only(findings, "RPL402") == []

    def test_counter_reset_to_constant_allowed(self, lint_module):
        findings = lint_module(
            "core/loop.py",
            """
            def passes(rounds):
                stagnant = 0
                for r in rounds:
                    if r.empty:
                        stagnant += 1
                    else:
                        stagnant = 0
            """,
        )
        assert only(findings, "RPL402") == []

    def test_self_referencing_rebind_allowed(self, lint_module):
        findings = lint_module(
            "sim/agg.py",
            """
            def collect(rows):
                parts = []
                for row in rows:
                    parts.append(row)
                parts = sorted(parts)
                parts.append(None)
            """,
        )
        assert only(findings, "RPL402") == []

    def test_rebind_before_any_accumulation_allowed(self, lint_module):
        # The slot-wheel refill shape: a placeholder list replaced
        # wholesale *before* anything was ever appended to it.
        findings = lint_module(
            "sim/wheel2.py",
            """
            def refill(overflow, lo):
                collect = []
                if lo < len(overflow):
                    collect = overflow[lo:]
                collect.extend(drain())
                return collect
            """,
        )
        assert only(findings, "RPL402") == []


class TestMutableDefault:
    def test_mutable_default_flagged(self, lint_module):
        findings = lint_module(
            "net/buf.py",
            """
            def enqueue(frame, pending=[]):
                pending.append(frame)
            """,
        )
        assert len(only(findings, "RPL403")) == 1

    def test_none_default_allowed(self, lint_module):
        findings = lint_module(
            "net/buf.py",
            """
            def enqueue(frame, pending=None):
                pending = [] if pending is None else pending
                pending.append(frame)
            """,
        )
        assert only(findings, "RPL403") == []
