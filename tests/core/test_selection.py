"""Cooperator-selection strategies."""

import numpy as np
import pytest

from repro.core.cooperators import CooperatorTable
from repro.core.selection import AllNeighbors, BestK, RandomK
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId


def table_with_rssi(rssi_by_node):
    table = CooperatorTable()
    for time, (node, rssi) in enumerate(rssi_by_node.items()):
        table.hear_hello(node, float(time), rssi)
    return table


N2, N3, N4, N5 = NodeId(2), NodeId(3), NodeId(4), NodeId(5)


class TestAllNeighbors:
    def test_identity(self):
        table = table_with_rssi({N2: -60.0, N3: -80.0})
        strategy = AllNeighbors()
        candidates = table.my_cooperators()
        assert strategy.select(table, candidates) == candidates


class TestBestK:
    def test_keeps_strongest(self):
        table = table_with_rssi({N2: -90.0, N3: -50.0, N4: -70.0})
        strategy = BestK(2)
        selected = strategy.select(table, table.my_cooperators())
        assert set(selected) == {N3, N4}

    def test_preserves_original_order(self):
        table = table_with_rssi({N2: -90.0, N3: -50.0, N4: -70.0})
        selected = BestK(2).select(table, table.my_cooperators())
        # N3 was heard before N4, so it must stay first.
        assert selected == (N3, N4)

    def test_small_candidate_set_unchanged(self):
        table = table_with_rssi({N2: -60.0})
        candidates = table.my_cooperators()
        assert BestK(3).select(table, candidates) == candidates

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            BestK(0)


class TestRandomK:
    def test_selects_exactly_k(self):
        table = table_with_rssi({N2: -1.0, N3: -2.0, N4: -3.0, N5: -4.0})
        strategy = RandomK(2, np.random.default_rng(0))
        selected = strategy.select(table, table.my_cooperators())
        assert len(selected) == 2

    def test_subset_of_candidates(self):
        table = table_with_rssi({N2: -1.0, N3: -2.0, N4: -3.0})
        candidates = table.my_cooperators()
        selected = RandomK(2, np.random.default_rng(1)).select(table, candidates)
        assert set(selected) <= set(candidates)

    def test_order_preserved(self):
        table = table_with_rssi({N2: -1.0, N3: -2.0, N4: -3.0, N5: -4.0})
        candidates = table.my_cooperators()
        for seed in range(10):
            selected = RandomK(3, np.random.default_rng(seed)).select(
                table, candidates
            )
            indices = [candidates.index(node) for node in selected]
            assert indices == sorted(indices)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            RandomK(0, np.random.default_rng(0))
