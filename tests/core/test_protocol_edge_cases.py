"""Protocol edge cases: capacity pressure, TTL expiry, selection, flags."""

import pytest

from repro.core.state import Phase
from repro.core.selection import BestK
from repro.mac.frames import HelloFrame, NodeId

from tests.core.test_protocol import (
    CAR1,
    CAR2,
    CAR3,
    ScriptedChannel,
    fast_config,
    make_testbed,
)


class TestBufferCapacityPressure:
    def test_tiny_buffer_evicts_but_keeps_working(self):
        # 12 entries shared across two buffered flows: only the ~6 newest
        # packets per flow survive when the dark area begins at t = 8 s
        # (≈ seq 40 at 5 pkt/s).
        config = fast_config(buffer_capacity=12)
        sim, channel, _, _, cars = make_testbed(config=config)
        channel.drop_ap_data(CAR1, CAR1, {38})
        channel.blackout_ap_after(8.0)
        sim.run(until=16.0)
        # Old entries were evicted under pressure …
        assert cars[CAR2].protocol.coop_buffer.evictions > 0
        assert len(cars[CAR2].protocol.coop_buffer) <= 12
        # … but a recently-lost packet is still recoverable.
        assert 38 in cars[CAR1].protocol.state.recovered

    def test_evicted_packet_cannot_be_recovered(self):
        config = fast_config(buffer_capacity=4)
        sim, channel, _, _, cars = make_testbed(config=config)
        channel.drop_ap_data(CAR1, CAR1, {6})  # early packet, will be evicted
        channel.blackout_ap_after(8.0)
        sim.run(until=16.0)
        # Seq 6 fell out of the 4-entry cooperative buffers long before the
        # dark area began (≈40 fresher packets per flow arrived after it).
        assert 6 not in cars[CAR1].protocol.state.recovered


class TestCooperatorTtl:
    def test_silent_cooperator_expires_from_table(self):
        config = fast_config(cooperator_ttl_s=2.0)
        sim, channel, _, _, cars = make_testbed(config=config)

        sim.run(until=3.0)
        assert CAR3 in cars[CAR1].protocol.table.my_cooperators()

        # CAR3 goes completely silent: drop all its outgoing HELLOs.
        def mute_car3(frame, rx_id, now):
            return isinstance(frame, HelloFrame) and frame.src == CAR3 and now > 3.0

        channel.rules.append(mute_car3)
        sim.run(until=9.0)
        assert CAR3 not in cars[CAR1].protocol.table.my_cooperators()


class TestSelectionIntegration:
    def test_bestk_limits_advertised_cooperators(self):
        config = fast_config(selection=BestK(1))
        sim, _, capture, _, cars = make_testbed(config=config)
        sim.run(until=4.0)
        hellos = [
            record.frame
            for record in capture.tx_records
            if isinstance(record.frame, HelloFrame) and record.node == CAR1
        ]
        late_hellos = hellos[-2:]
        assert late_hellos
        for hello in late_hellos:
            assert len(hello.cooperators) <= 1


class TestOverhearingFlag:
    def test_overheard_responses_buffered_when_enabled(self):
        sim, channel, _, _, cars = make_testbed(
            config=fast_config(buffer_overheard_responses=True)
        )
        # CAR1 misses seq 5; CAR3 also never got it from the AP but could
        # learn it from CAR2's coop response.
        channel.drop_ap_data(CAR1, CAR1, {5})
        channel.drop_ap_data(CAR3, CAR1, {5})
        channel.blackout_ap_after(5.0)
        sim.run(until=12.0)
        assert cars[CAR3].protocol.coop_buffer.has(CAR1, 5)

    def test_overheard_responses_ignored_when_disabled(self):
        sim, channel, _, _, cars = make_testbed(
            config=fast_config(buffer_overheard_responses=False)
        )
        channel.drop_ap_data(CAR1, CAR1, {5})
        channel.drop_ap_data(CAR3, CAR1, {5})
        channel.blackout_ap_after(5.0)
        sim.run(until=12.0)
        assert not cars[CAR3].protocol.coop_buffer.has(CAR1, 5)


class TestHelloContents:
    def test_flow_ranges_advertised_for_buffered_flows(self):
        sim, channel, capture, _, cars = make_testbed()
        channel.blackout_ap_after(5.0)
        sim.run(until=8.0)
        hellos = [
            record.frame
            for record in capture.tx_records
            if isinstance(record.frame, HelloFrame) and record.node == CAR1
        ]
        last = hellos[-1]
        advertised_flows = {flow for flow, _lo, _hi in last.flow_ranges}
        assert {CAR2, CAR3} <= advertised_flows
        for _flow, lo, hi in last.flow_ranges:
            assert lo <= hi

    def test_phase_reaches_recovery_only_after_timeout(self):
        sim, channel, _, _, cars = make_testbed()
        channel.blackout_ap_after(5.0)
        sim.run(until=6.5)  # 1.5 s of silence < 2 s timeout
        assert cars[CAR1].protocol.phase is Phase.RECEPTION
        sim.run(until=7.5)  # 2.5 s of silence > timeout
        assert cars[CAR1].protocol.phase is Phase.RECOVERY
