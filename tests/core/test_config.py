"""CarqConfig and RadioConfig validation."""

import pytest

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError
from repro.radio.phy import RadioConfig


class TestCarqConfigDefaults:
    def test_paper_prototype_values(self):
        cfg = CarqConfig()
        assert cfg.coverage_timeout_s == 5.0     # §3.3: "5 seconds"
        assert cfg.hello_period_s == 1.0
        assert not cfg.batch_requests            # base protocol: one seq/REQUEST
        assert cfg.recovery_range == "platoon"
        assert cfg.buffer_capacity is None

    def test_responder_slot_exceeds_coop_airtime(self):
        """The ordering only prevents duplicates if a lower-order response
        finishes (and is overheard) before the next slot opens."""
        from repro.mac.frames import DataFrame
        from repro.mac.timing import frame_airtime
        from repro.radio.modulation import rate_by_name

        airtime = frame_airtime(
            DataFrame.size_for_payload(1000), rate_by_name("dsss-1")
        )
        assert CarqConfig().responder_slot_s > airtime


class TestCarqConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hello_period_s": 0.0},
            {"hello_jitter_fraction": 1.0},
            {"hello_jitter_fraction": -0.1},
            {"coverage_timeout_s": 0.0},
            {"cooperator_ttl_s": 0.0},
            {"responder_slot_s": 0.0},
            {"request_guard_s": -0.001},
            {"max_batch": 0},
            {"recovery_range": "everything"},
            {"max_stagnant_passes": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CarqConfig(**kwargs)

    def test_frozen(self):
        cfg = CarqConfig()
        with pytest.raises(Exception):
            cfg.hello_period_s = 2.0  # type: ignore[misc]


class TestRadioConfig:
    def test_noise_floor_derivation(self):
        cfg = RadioConfig(bandwidth_hz=22e6, noise_figure_db=5.0)
        # kTB(22 MHz) ≈ -100.5 dBm, +5 dB NF.
        assert cfg.noise_floor_dbm == pytest.approx(-95.5, abs=0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RadioConfig(bandwidth_hz=0.0)
        with pytest.raises(ConfigurationError):
            RadioConfig(noise_figure_db=-1.0)

    def test_default_rate_is_1mbps_dsss(self):
        assert RadioConfig().rate.name == "dsss-1"
