"""Cooperator table: ordering, expiry, partner tracking."""

from repro.core.cooperators import CooperatorTable
from repro.mac.frames import NodeId

A, B, C = NodeId(1), NodeId(2), NodeId(3)


class TestMyCooperators:
    def test_first_heard_first_ordered(self):
        table = CooperatorTable()
        assert table.hear_hello(B, 0.0, -60.0)
        assert table.hear_hello(C, 1.0, -70.0)
        assert table.my_cooperators() == (B, C)
        assert table.order_of(B) == 0
        assert table.order_of(C) == 1

    def test_rehearing_does_not_reorder(self):
        table = CooperatorTable()
        table.hear_hello(B, 0.0, -60.0)
        table.hear_hello(C, 1.0, -70.0)
        assert not table.hear_hello(B, 2.0, -61.0)
        assert table.my_cooperators() == (B, C)

    def test_order_of_unknown_is_none(self):
        assert CooperatorTable().order_of(B) is None

    def test_mean_rssi_running_average(self):
        table = CooperatorTable()
        table.hear_hello(B, 0.0, -60.0)
        table.hear_hello(B, 1.0, -70.0)
        assert table.mean_rssi_of(B) == -65.0
        assert table.mean_rssi_of(C) is None

    def test_len(self):
        table = CooperatorTable()
        table.hear_hello(B, 0.0, -60.0)
        assert len(table) == 1


class TestExpiry:
    def test_stale_cooperators_dropped(self):
        table = CooperatorTable()
        table.hear_hello(B, 0.0, -60.0)
        table.hear_hello(C, 8.0, -70.0)
        dropped = table.expire(now=10.0, ttl_s=5.0)
        assert dropped == [B]
        assert table.my_cooperators() == (C,)

    def test_fresh_survive(self):
        table = CooperatorTable()
        table.hear_hello(B, 9.0, -60.0)
        assert table.expire(now=10.0, ttl_s=5.0) == []
        assert table.my_cooperators() == (B,)

    def test_stale_partners_dropped_too(self):
        table = CooperatorTable()
        table.note_partner(B, 0, 0.0)
        table.note_partner(C, 1, 9.0)
        table.expire(now=10.0, ttl_s=5.0)
        assert table.cooperating_for() == {C}


class TestPartners:
    def test_note_and_query_order(self):
        table = CooperatorTable()
        table.note_partner(B, 2, 0.0)
        assert table.cooperating_for() == {B}
        assert table.my_order_for(B) == 2
        assert table.my_order_for(C) is None

    def test_forget_partner(self):
        table = CooperatorTable()
        table.note_partner(B, 0, 0.0)
        table.forget_partner(B)
        assert table.cooperating_for() == set()

    def test_forget_unknown_partner_is_noop(self):
        CooperatorTable().forget_partner(B)

    def test_order_updates_on_new_hello(self):
        table = CooperatorTable()
        table.note_partner(B, 0, 0.0)
        table.note_partner(B, 3, 1.0)
        assert table.my_order_for(B) == 3
