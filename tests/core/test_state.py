"""Per-flow reception state."""

import pytest
from hypothesis import given, strategies as st

from repro.core.state import FlowReceptionState, Phase


class TestPhases:
    def test_enum_values(self):
        assert {p.value for p in Phase} == {"idle", "reception", "recovery"}


class TestDirectReception:
    def test_record_direct_tracks_times(self):
        state = FlowReceptionState()
        state.record_direct(5, 1.0)
        state.record_direct(7, 2.0)
        assert state.first_rx_time == 1.0
        assert state.last_rx_time == 2.0
        assert state.received == {5, 7}

    def test_range_grows_with_receptions(self):
        state = FlowReceptionState()
        state.record_direct(5, 0.0)
        state.record_direct(2, 0.1)
        state.record_direct(9, 0.2)
        assert (state.known_lo, state.known_hi) == (2, 9)


class TestRecovery:
    def test_record_recovered(self):
        state = FlowReceptionState()
        state.record_direct(1, 0.0)
        assert state.record_recovered(3, 5.0)
        assert state.recovered == {3: 5.0}
        assert state.has(3)

    def test_duplicate_recovery_rejected(self):
        state = FlowReceptionState()
        state.record_recovered(3, 5.0)
        assert not state.record_recovered(3, 6.0)
        assert state.recovered[3] == 5.0

    def test_recovery_of_direct_packet_rejected(self):
        state = FlowReceptionState()
        state.record_direct(3, 0.0)
        assert not state.record_recovered(3, 5.0)

    def test_delivered_count(self):
        state = FlowReceptionState()
        state.record_direct(1, 0.0)
        state.record_direct(2, 0.0)
        state.record_recovered(5, 1.0)
        assert state.delivered_count == 3


class TestMissing:
    def test_empty_state_missing_nothing(self):
        assert FlowReceptionState().missing() == []

    def test_gaps_detected(self):
        state = FlowReceptionState()
        for seq in (1, 2, 5):
            state.record_direct(seq, 0.0)
        assert state.missing() == [3, 4]

    def test_recovered_closes_gaps(self):
        state = FlowReceptionState()
        for seq in (1, 5):
            state.record_direct(seq, 0.0)
        state.record_recovered(3, 1.0)
        assert state.missing() == [2, 4]

    def test_extend_range_expands_missing(self):
        state = FlowReceptionState()
        state.record_direct(5, 0.0)
        state.extend_range(1, 8)
        assert state.missing() == [1, 2, 3, 4, 6, 7, 8]


seq_sets = st.sets(st.integers(min_value=1, max_value=80), min_size=1, max_size=40)


class TestInvariants:
    @given(seq_sets, seq_sets)
    def test_missing_disjoint_from_held(self, direct, recovered):
        state = FlowReceptionState()
        for seq in direct:
            state.record_direct(seq, 0.0)
        for seq in recovered:
            state.record_recovered(seq, 1.0)
        missing = set(state.missing())
        assert missing.isdisjoint(state.received)
        assert missing.isdisjoint(state.recovered)

    @given(seq_sets)
    def test_window_partition(self, direct):
        """received + missing exactly tile the known range."""
        state = FlowReceptionState()
        for seq in direct:
            state.record_direct(seq, 0.0)
        full = set(range(state.known_lo, state.known_hi + 1))
        assert state.received | set(state.missing()) == full

    @given(seq_sets, seq_sets)
    def test_received_and_recovered_disjoint(self, direct, recovered):
        state = FlowReceptionState()
        for seq in direct:
            state.record_direct(seq, 0.0)
        for seq in recovered:
            state.record_recovered(seq, 1.0)
        assert state.received.isdisjoint(state.recovered)
