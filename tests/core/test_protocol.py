"""C-ARQ protocol behaviour on scripted micro-scenarios.

A :class:`ScriptedChannel` delivers everything perfectly except for
explicitly injected drop rules, so each protocol mechanism (buffering,
recovery, ordering, suppression, range discovery, phase switching) can be
exercised deterministically.  The platoon is parked near the AP; "leaving
coverage" is scripted as a blackout of AP data frames after a chosen
instant.
"""

import numpy as np
import pytest

from repro.core.config import CarqConfig
from repro.core.state import Phase
from repro.core.vehicle import VehicleNode
from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.medium import Medium
from repro.mobility.static import StaticMobility
from repro.net.ap import AccessPoint, FlowConfig
from repro.radio.channel import Channel
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

AP = NodeId(100)


class ScriptedChannel(Channel):
    """Perfect delivery except where a drop rule matches."""

    def __init__(self, sim):
        super().__init__(
            pathloss=LogDistancePathLoss(exponent=2.0, reference_loss_db=40.0),
            rng=np.random.default_rng(0),
        )
        self._sim = sim
        self.rules = []

    def frame_delivered(self, sample, rate, frame, noise, rx_id=None):
        for rule in self.rules:
            if rule(frame, rx_id, self._sim.now):
                return False
        return True

    # -- rule helpers -------------------------------------------------------

    def drop_ap_data(self, rx, flow, seqs):
        seqs = set(seqs)

        def rule(frame, rx_id, now):
            return (
                isinstance(frame, DataFrame)
                and frame.src == AP
                and rx_id == rx
                and frame.flow_dst == flow
                and frame.seq in seqs
            )

        self.rules.append(rule)

    def blackout_ap_after(self, t0, t1=float("inf")):
        def rule(frame, rx_id, now):
            return (
                isinstance(frame, DataFrame)
                and frame.src == AP
                and t0 <= now < t1
            )

        self.rules.append(rule)


def fast_config(**overrides):
    defaults = dict(
        hello_period_s=0.5,
        hello_jitter_fraction=0.1,
        coverage_timeout_s=2.0,
        responder_slot_s=0.012,
        request_guard_s=0.012,
        max_stagnant_passes=2,
    )
    defaults.update(overrides)
    return CarqConfig(**defaults)


def make_testbed(n_cars=3, config=None, payload=200, rate_hz=5.0, seed=1):
    sim = Simulator(seed=seed)
    channel = ScriptedChannel(sim)
    capture = TraceCollector()
    medium = Medium(sim, channel, trace=capture)
    car_ids = [NodeId(i + 1) for i in range(n_cars)]
    flows = [
        FlowConfig(destination=car, packet_rate_hz=rate_hz, payload_bytes=payload)
        for car in car_ids
    ]
    ap = AccessPoint(
        sim,
        medium,
        AP,
        StaticMobility(Vec2(0, 0)),
        RadioConfig(),
        sim.streams.get("ap"),
        flows,
        jitter_fraction=0.0,
    )
    cars = {}
    for index, car_id in enumerate(car_ids):
        cars[car_id] = VehicleNode(
            sim,
            medium,
            car_id,
            StaticMobility(Vec2(5.0 + 5.0 * index, 0.0)),
            RadioConfig(),
            sim.streams.get(f"car-{car_id}"),
            AP,
            config if config is not None else fast_config(),
            name=f"car-{car_id}",
        )
    ap.start()
    for car in cars.values():
        car.start()
    return sim, channel, capture, ap, cars


CAR1, CAR2, CAR3 = NodeId(1), NodeId(2), NodeId(3)


class TestHelloConvergence:
    def test_tables_converge_to_full_platoon(self):
        sim, _, _, _, cars = make_testbed()
        sim.run(until=3.0)
        for car_id, car in cars.items():
            others = {c for c in cars if c != car_id}
            assert set(car.protocol.table.my_cooperators()) == others
            assert car.protocol.table.cooperating_for() == others

    def test_orders_assigned_and_learned(self):
        sim, _, _, _, cars = make_testbed()
        sim.run(until=3.0)
        for car_id, car in cars.items():
            for other_id, other in cars.items():
                if other_id == car_id:
                    continue
                my_order_at_other = other.protocol.table.order_of(car_id)
                learned = car.protocol.table.my_order_for(other_id)
                assert learned == my_order_at_other

    def test_hellos_counted(self):
        sim, _, _, _, cars = make_testbed()
        sim.run(until=3.0)
        for car in cars.values():
            assert car.protocol.stats.hellos_sent >= 4


class TestReceptionPhase:
    def test_association_on_first_frame(self):
        sim, _, _, _, cars = make_testbed()
        assert cars[CAR1].protocol.phase is Phase.IDLE
        sim.run(until=1.0)
        assert cars[CAR1].protocol.phase is Phase.RECEPTION

    def test_own_flow_recorded(self):
        sim, _, _, _, cars = make_testbed()
        sim.run(until=5.0)
        assert len(cars[CAR1].protocol.state.received) >= 20

    def test_buffers_for_partners(self):
        sim, _, _, _, cars = make_testbed()
        sim.run(until=5.0)
        buffered_flows = cars[CAR1].protocol.coop_buffer.flows()
        assert {CAR2, CAR3} <= buffered_flows

    def test_no_buffering_before_partnership(self):
        """Packets sent before the first HELLO exchange are not buffered."""
        sim, _, _, _, cars = make_testbed()
        sim.run(until=0.05)  # before any HELLO
        assert len(cars[CAR1].protocol.coop_buffer) == 0


class TestRecovery:
    def test_missing_packet_recovered_in_dark_area(self):
        sim, channel, _, _, cars = make_testbed()
        channel.drop_ap_data(CAR1, CAR1, {3})
        channel.blackout_ap_after(5.0)
        sim.run(until=12.0)
        protocol = cars[CAR1].protocol
        assert protocol.phase is Phase.RECOVERY
        assert 3 in protocol.state.recovered
        assert 3 not in protocol.state.missing()
        assert protocol.stats.request_frames_sent >= 1

    def test_jointly_lost_packet_stays_missing(self):
        sim, channel, _, _, cars = make_testbed()
        for car in (CAR1, CAR2, CAR3):
            channel.drop_ap_data(car, CAR1, {4})
        channel.blackout_ap_after(5.0)
        sim.run(until=14.0)
        protocol = cars[CAR1].protocol
        assert 4 in protocol.state.missing()
        # The loop gave up after max_stagnant_passes rather than forever.
        assert protocol.stats.recovery_passes <= fast_config().max_stagnant_passes + 2

    def test_recovery_completion_recorded(self):
        sim, channel, _, _, cars = make_testbed()
        channel.drop_ap_data(CAR1, CAR1, {3, 6})
        channel.blackout_ap_after(5.0)
        sim.run(until=14.0)
        stats = cars[CAR1].protocol.stats
        assert stats.recovery_started_at is not None
        assert stats.recovery_completed_at is not None
        assert stats.recovery_completed_at > stats.recovery_started_at

    def test_no_requests_without_cooperators(self):
        sim, channel, _, _, cars = make_testbed(n_cars=1)
        channel.drop_ap_data(CAR1, CAR1, {3})
        channel.blackout_ap_after(5.0)
        sim.run(until=12.0)
        assert cars[CAR1].protocol.stats.request_frames_sent == 0

    def test_after_coop_subset_of_joint(self):
        """Recovery never invents packets nobody received."""
        sim, channel, capture, _, cars = make_testbed()
        channel.drop_ap_data(CAR1, CAR1, set(range(2, 12)))
        channel.drop_ap_data(CAR2, CAR1, {5, 6})
        channel.drop_ap_data(CAR3, CAR1, set(range(2, 9)))
        channel.blackout_ap_after(5.0)
        sim.run(until=15.0)
        protocol = cars[CAR1].protocol
        joint = set().union(
            *(capture.delivered_seqs(car, CAR1) for car in (CAR1, CAR2, CAR3))
        )
        held = protocol.state.received | set(protocol.state.recovered)
        assert held <= joint


class TestResponderOrdering:
    def test_duplicate_responses_suppressed(self):
        sim, channel, _, _, cars = make_testbed()
        channel.drop_ap_data(CAR1, CAR1, {3})
        channel.blackout_ap_after(5.0)
        sim.run(until=12.0)
        responses = sum(
            cars[c].protocol.stats.responses_sent for c in (CAR2, CAR3)
        )
        suppressed = sum(
            cars[c].protocol.stats.responses_suppressed for c in (CAR2, CAR3)
        )
        # One cooperator answers; the other overhears and stays silent.
        assert responses == 1
        assert suppressed == 1

    def test_only_listed_cooperators_respond(self):
        """A car that is not in the requester's list never answers."""
        config = fast_config()
        sim, channel, _, _, cars = make_testbed(config=config)
        channel.drop_ap_data(CAR1, CAR1, {3})
        channel.blackout_ap_after(5.0)

        # Surgically remove CAR3 from CAR1's cooperator table just before
        # recovery starts (simulates CAR3 never having been heard).
        def drop_car3():
            table = cars[CAR1].protocol.table
            table._my_cooperators = [
                e for e in table._my_cooperators if e.node != CAR3
            ]
            cars[CAR3].protocol.table.forget_partner(CAR1)

        sim.schedule(6.5, drop_car3)
        sim.run(until=12.0)
        assert cars[CAR3].protocol.stats.responses_sent == 0
        assert 3 in cars[CAR1].protocol.state.recovered


class TestBatchedRequests:
    def test_batched_recovers_with_fewer_frames(self):
        # Drops start at seq 8 (~1.4 s in): cooperation relationships are
        # established by then, so every dropped packet is buffered somewhere.
        losses = set(range(8, 28))
        frames_used = {}
        for batched in (False, True):
            sim, channel, _, _, cars = make_testbed(
                config=fast_config(batch_requests=batched, max_batch=64),
                seed=7,
            )
            channel.drop_ap_data(CAR1, CAR1, losses)
            channel.blackout_ap_after(6.0)
            sim.run(until=16.0)
            protocol = cars[CAR1].protocol
            assert losses <= set(protocol.state.recovered)
            frames_used[batched] = protocol.stats.request_frames_sent
        assert frames_used[True] < frames_used[False] / 3


class TestRecoveryRange:
    def test_platoon_mode_learns_unseen_range(self):
        """Packets before the destination's own association are recovered.

        CAR2 misses seqs 8–17 of its own flow entirely (association starts
        at 18), but its cooperators buffered them and advertise the range
        in HELLOs, so platoon mode recovers all of them.
        """
        sim, channel, _, _, cars = make_testbed()
        channel.drop_ap_data(CAR2, CAR2, set(range(8, 18)))
        channel.blackout_ap_after(6.0)
        sim.run(until=16.0)
        recovered = set(cars[CAR2].protocol.state.recovered)
        assert set(range(8, 18)) <= recovered

    def test_self_mode_limits_to_own_window(self):
        """In 'self' mode a car only recovers inside [first, last] own rx.

        CAR2 misses the early seqs 1–10: with recovery_range='self' its
        known range starts at its own first direct reception, so those
        early packets are never requested.
        """
        sim, channel, _, _, cars = make_testbed(
            config=fast_config(recovery_range="self")
        )
        channel.drop_ap_data(CAR2, CAR2, set(range(1, 11)))
        channel.blackout_ap_after(6.0)
        sim.run(until=16.0)
        protocol = cars[CAR2].protocol
        assert protocol.state.known_lo >= 11
        assert not (set(range(1, 11)) & set(protocol.state.recovered))


class TestPhaseTransitions:
    def test_ap_reappearance_interrupts_recovery(self):
        sim, channel, _, _, cars = make_testbed()
        channel.drop_ap_data(CAR1, CAR1, {3})
        channel.blackout_ap_after(5.0, 10.0)  # dark window only
        sim.run(until=9.0)
        assert cars[CAR1].protocol.phase is Phase.RECOVERY
        sim.run(until=12.0)
        assert cars[CAR1].protocol.phase is Phase.RECEPTION

    def test_double_start_rejected(self):
        from repro.errors import ProtocolError

        _, _, _, _, cars = make_testbed()
        with pytest.raises(ProtocolError):
            cars[CAR1].protocol.start()

    def test_loss_accounting_helpers(self):
        sim, channel, _, _, cars = make_testbed()
        channel.drop_ap_data(CAR1, CAR1, {3, 5})
        channel.blackout_ap_after(5.0)
        sim.run(until=12.0)
        protocol = cars[CAR1].protocol
        assert set(protocol.lost_before_cooperation()) >= {3, 5}
        assert 3 not in protocol.lost_after_cooperation()
