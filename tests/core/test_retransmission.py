"""AP retransmission policies."""

import pytest

from repro.core.retransmission import (
    AdaptiveRetransmission,
    FixedRetransmission,
    NoRetransmission,
)
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId

CAR = NodeId(1)


class TestNoRetransmission:
    def test_single_copy(self):
        assert NoRetransmission().copies_for(CAR, 1) == 1


class TestFixedRetransmission:
    def test_constant_copies(self):
        policy = FixedRetransmission(3)
        assert policy.copies_for(CAR, 1) == 3
        assert policy.copies_for(CAR, 999) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedRetransmission(0)


class TestAdaptiveRetransmission:
    def test_copies_shrink_with_cooperators(self):
        counts = {CAR: 0}
        policy = AdaptiveRetransmission(3, lambda car: counts[car])
        assert policy.copies_for(CAR, 1) == 3
        counts[CAR] = 1
        assert policy.copies_for(CAR, 2) == 2
        counts[CAR] = 2
        assert policy.copies_for(CAR, 3) == 1

    def test_never_below_one(self):
        policy = AdaptiveRetransmission(2, lambda car: 10)
        assert policy.copies_for(CAR, 1) == 1

    def test_negative_count_clamped(self):
        policy = AdaptiveRetransmission(3, lambda car: -5)
        assert policy.copies_for(CAR, 1) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveRetransmission(0, lambda car: 0)
