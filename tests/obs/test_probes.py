"""Probe bundles: factory gating, labels, and end-to-end kernel counts."""

from repro import obs
from repro.obs.probes import (
    buffer_probes,
    callback_label,
    kernel_probes,
    medium_probes,
    protocol_probes,
)
from repro.sim import Simulator


class TestFactoryGating:
    def test_disabled_registry_yields_none(self):
        assert not obs.enabled()
        assert kernel_probes() is None
        assert medium_probes() is None
        assert protocol_probes() is None
        assert buffer_probes() is None

    def test_enabled_registry_yields_bundles_sharing_metrics(self):
        with obs.instrumented():
            a, b = kernel_probes(), kernel_probes()
            assert a is not b
            assert a.pushed is b.pushed  # same registry object underneath


class TestCallbackLabel:
    def test_plain_function(self):
        def frobnicate():
            pass

        assert callback_label(frobnicate).endswith("frobnicate")

    def test_bound_method(self):
        class Widget:
            def poke(self):
                pass

        assert callback_label(Widget().poke).endswith("Widget.poke")

    def test_process_resume_refined_to_generator_name(self):
        sim = Simulator()

        def _hello_loop():
            yield 1.0

        process = sim.process(_hello_loop())
        assert callback_label(process._resume) == "process:_hello_loop"

    def test_unlabellable_callable_falls_back_to_repr(self):
        class Opaque:
            def __call__(self):
                pass

        label = callback_label(Opaque())
        assert "Opaque" in label


class TestInstrumentedSimulator:
    def test_counts_pushed_fired_cancelled(self):
        with obs.instrumented():
            sim = Simulator()
            keep = [sim.schedule(float(i), lambda: None) for i in range(5)]
            doomed = sim.schedule(9.0, lambda: None)
            sim.cancel(doomed)
            sim.cancel(doomed)  # idempotent: must not double-count
            sim.run()
            snap = obs.registry().snapshot()
        assert snap["sim.events_pushed"]["value"] == 6
        assert snap["sim.events_fired"]["value"] == len(keep)
        assert snap["sim.events_cancelled"]["value"] == 1
        assert snap["sim.cost_centers"]["rows"]  # lambdas were accounted

    def test_disabled_simulator_records_nothing(self):
        before = obs.registry().snapshot()
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert obs.registry().snapshot() == before

    def test_tracer_only_round_gets_slot_spans(self):
        # Tracing without metrics: the simulator still opens slot spans.
        tracer = obs.install_tracer(obs.SpanTracer())
        try:
            sim = Simulator()
            for i in range(3):
                sim.schedule(float(i), lambda: None)
            sim.run()
        finally:
            obs.clear_tracer()
        slots = [s for s in tracer.spans() if s.name == "slot"]
        assert len(slots) == 3
        assert [s.args["sim_time"] for s in slots] == [0.0, 1.0, 2.0]
        assert tracer.open_depth == 0  # run() closed the trailing slot
