"""Span tracer: stack discipline, ring-buffer bound, process-wide install."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.spans import Span, SpanTracer


class TestSpanTracer:
    def test_begin_end_records_nested_depths(self):
        t = SpanTracer()
        t.begin("outer", cat="a")
        t.begin("inner", cat="b")
        t.end()
        t.end()
        inner, outer = t.spans()  # completion order: children first
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert inner.dur_ns >= 0 and outer.dur_ns >= inner.dur_ns
        assert outer.start_ns <= inner.start_ns

    def test_end_merges_extra_args(self):
        t = SpanTracer()
        t.begin("broadcast", candidates=12)
        t.end(admitted=7)
        (span,) = t.spans()
        assert span.args == {"candidates": 12, "admitted": 7}

    def test_end_without_begin_raises(self):
        with pytest.raises(ObsError, match="no open span"):
            SpanTracer().end()

    def test_span_context_manager_closes_on_error(self):
        t = SpanTracer()
        with pytest.raises(RuntimeError):
            with t.span("round"):
                raise RuntimeError("boom")
        assert t.open_depth == 0
        assert len(t) == 1

    def test_ring_buffer_keeps_newest_and_counts_dropped(self):
        t = SpanTracer(capacity=3)
        for i in range(5):
            t.begin(f"s{i}")
            t.end()
        assert len(t) == 3
        assert t.dropped == 2
        assert [s.name for s in t.spans()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObsError):
            SpanTracer(capacity=0)

    def test_finish_closes_all_open_spans(self):
        t = SpanTracer()
        t.begin("round")
        t.begin("slot")
        t.finish()
        assert t.open_depth == 0
        assert [s.name for s in t.spans()] == ["slot", "round"]

    def test_clear_resets_everything(self):
        t = SpanTracer(capacity=1)
        t.begin("a")
        t.end()
        t.begin("b")
        t.end()
        assert t.dropped == 1
        t.clear()
        assert len(t) == 0 and t.dropped == 0 and t.open_depth == 0

    def test_span_is_slotted(self):
        span = Span("s", "c", 0, 1, 0, None)
        assert not hasattr(span, "__dict__")


class TestProcessWideTracer:
    def test_install_and_clear(self):
        assert obs.tracer() is None
        t = obs.install_tracer(SpanTracer())
        try:
            assert obs.tracer() is t
        finally:
            obs.clear_tracer()
        assert obs.tracer() is None

    def test_instrumented_restores_prior_state(self):
        assert obs.tracer() is None
        assert not obs.enabled()
        with obs.instrumented(capacity=10) as t:
            assert obs.tracer() is t
            assert t.capacity == 10
            assert obs.enabled()
        assert obs.tracer() is None
        assert not obs.enabled()

    def test_instrumented_nests(self):
        with obs.instrumented() as outer:
            with obs.instrumented() as inner:
                assert obs.tracer() is inner
            assert obs.tracer() is outer
            assert obs.enabled()
        assert obs.tracer() is None

    def test_instrumented_resets_counters_on_entry(self):
        with obs.instrumented():
            obs.registry().counter("leftover").inc(9)
        with obs.instrumented():
            assert obs.registry().counter("leftover").value == 0
