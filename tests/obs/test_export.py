"""Trace export: Chrome/Perfetto document shape, validation, stats report."""

import json

import pytest

from repro.errors import ObsError
from repro.obs.export import (
    chrome_trace,
    render_stats_report,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer


def _traced():
    t = SpanTracer()
    with t.span("round", cat="campaign", scenario="urban"):
        with t.span("slot", cat="kernel", sim_time=0.1):
            pass
    return t


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(_traced())
        validate_chrome_trace(doc)
        assert doc["displayTimeUnit"] == "ms"
        names = [e["name"] for e in doc["traceEvents"]]
        # Events are sorted by start timestamp: parent before child.
        assert names == ["round", "slot"]
        round_event = doc["traceEvents"][0]
        assert round_event["ph"] == "X"
        assert round_event["args"] == {"scenario": "urban"}
        assert round_event["dur"] >= doc["traceEvents"][1]["dur"]

    def test_dropped_spans_surface_in_other_data(self):
        t = SpanTracer(capacity=1)
        for i in range(3):
            t.begin(f"s{i}")
            t.end()
        doc = chrome_trace(t, metadata={"scenario": "urban"})
        assert doc["otherData"] == {"scenario": "urban", "dropped_spans": 2}

    def test_no_other_data_when_clean_and_no_metadata(self):
        assert "otherData" not in chrome_trace(_traced())

    def test_document_is_json_serialisable(self):
        json.dumps(chrome_trace(_traced()))


class TestValidateChromeTrace:
    def _event(self, **overrides):
        event = {"name": "s", "cat": "c", "ph": "X",
                 "ts": 0.0, "dur": 1.0, "pid": 0, "tid": 0}
        event.update(overrides)
        return {"traceEvents": [event]}

    def test_accepts_minimal_document(self):
        validate_chrome_trace(self._event())

    @pytest.mark.parametrize(
        "document",
        [
            [],
            {},
            {"traceEvents": {}},
            {"traceEvents": [[]]},
        ],
    )
    def test_rejects_malformed_containers(self, document):
        with pytest.raises(ObsError):
            validate_chrome_trace(document)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": 3},
            {"cat": None},
            {"ph": "B"},
            {"ts": -1.0},
            {"dur": "fast"},
            {"pid": 0.5},
            {"tid": None},
            {"args": [1]},
        ],
    )
    def test_rejects_malformed_events(self, overrides):
        with pytest.raises(ObsError):
            validate_chrome_trace(self._event(**overrides))


class TestWriteChromeTrace:
    def test_writes_validated_json(self, tmp_path):
        path = tmp_path / "deep" / "trace.json"
        doc = write_chrome_trace(_traced(), path, metadata={"seed": 7})
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        validate_chrome_trace(on_disk)
        assert on_disk["otherData"]["seed"] == 7


class TestRenderStatsReport:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("sim.events_pushed").inc(120_000)
        reg.counter("sim.events_fired").inc(100_000)
        reg.counter("sim.events_cancelled").inc(5)
        for depth in (10, 200):
            reg.gauge("sim.queue_depth").set(depth)
        reg.table("sim.cost_centers").add("process:_hello_loop", 0.25)
        reg.table("sim.cost_centers").add("Medium._finish_transmission", 0.05)
        reg.counter("medium.broadcasts").inc(400)
        reg.counter("medium.batch_broadcasts").inc(390)
        reg.counter("medium.scalar_broadcasts").inc(10)
        reg.counter("medium.candidates_before_cull").inc(16000)
        reg.counter("medium.candidates_after_cull").inc(7000)
        reg.counter("proto.hello_tx").inc(900)
        reg.counter("buffer.hits").inc(30)
        reg.counter("buffer.misses").inc(10)
        return reg.snapshot()

    def test_names_top_cost_centers_with_counts(self):
        report = render_stats_report(self._snapshot(), elapsed_s=2.0)
        assert "event kernel" in report
        assert "events/s" in report
        assert "process:_hello_loop" in report
        assert report.index("process:_hello_loop") < report.index(
            "Medium._finish_transmission"
        )  # ranked by cumulative time

    def test_sections_render(self):
        report = render_stats_report(self._snapshot())
        assert "medium" in report
        assert "56.2% culled" in report
        assert "protocol" in report
        assert "packet buffer" in report
        assert "75.0% hits" in report

    def test_wheel_line_renders_peaks_from_gauge_snapshots(self):
        # Regression: the renderer must read the *gauge* snapshot shape
        # (last/min/max/mean/samples) — indexing a "value" key crashed
        # the first instrumented wheel round.
        reg = MetricsRegistry()
        reg.counter("sim.events_fired").inc(10)
        for occupied, deferred in ((3, 80), (7, 2)):
            reg.gauge("sim.wheel_slots").set(occupied)
            reg.gauge("sim.wheel_overflow").set(deferred)
        reg.counter("sim.wheel_overflow_pushes").inc(993)
        report = render_stats_report(reg.snapshot())
        assert "7 slots occupied peak" in report
        assert "80 beyond horizon peak" in report
        assert "993 overflow pushes" in report

    def test_no_wheel_line_on_heap_runs(self):
        report = render_stats_report(self._snapshot())
        assert "wheel" not in report

    def test_unknown_metrics_land_in_other(self):
        snap = {"custom.thing": {"type": "counter", "value": 3}}
        report = render_stats_report(snap)
        assert "other" in report and "custom.thing" in report

    def test_top_limits_cost_center_rows(self):
        reg = MetricsRegistry()
        for i in range(20):
            reg.table("sim.cost_centers").add(f"cb{i:02d}", float(i + 1))
        report = render_stats_report(reg.snapshot(), top=3)
        assert report.count(" calls ") == 3
