"""Metrics registry: primitives, bucketing properties, snapshot merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObsError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Table,
    histogram_bounds,
    merge_snapshots,
)

values = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestCounter:
    def test_inc_and_direct_bump(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        c.value += 2  # the hot-site idiom
        assert c.value == 7

    def test_reset_and_snapshot(self):
        c = Counter("c")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_tracks_extremes_and_mean(self):
        g = Gauge("depth")
        for v in (4.0, 10.0, 1.0):
            g.set(v)
        assert g.last == 1.0
        assert g.min == 1.0
        assert g.max == 10.0
        assert g.mean() == 5.0

    def test_empty_snapshot_has_finite_extremes(self):
        snap = Gauge("depth").snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert snap["samples"] == 0


class TestHistogramBounds:
    def test_rejects_bad_ranges(self):
        with pytest.raises(ObsError):
            histogram_bounds(0.0, 10.0, 3)
        with pytest.raises(ObsError):
            histogram_bounds(10.0, 10.0, 3)
        with pytest.raises(ObsError):
            histogram_bounds(1.0, 10.0, 0)

    @given(
        lo=st.floats(min_value=1e-6, max_value=1e3),
        decades=st.integers(min_value=1, max_value=6),
        per_decade=st.integers(min_value=1, max_value=10),
    )
    def test_bounds_are_increasing_and_cover_hi(self, lo, decades, per_decade):
        hi = lo * 10.0**decades
        bounds = histogram_bounds(lo, hi, per_decade)
        assert bounds[0] == lo
        assert bounds[-1] >= hi
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_pure_function_of_parameters(self):
        # The merge contract rests on this: independently created
        # histograms with the same parameters bucket identically.
        assert histogram_bounds(1.0, 1e4, 3) == histogram_bounds(1.0, 1e4, 3)


class TestHistogram:
    @given(st.lists(values, min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_every_value_lands_in_its_bucket(self, samples):
        h = Histogram("h", lo=1.0, hi=1e6, per_decade=3)
        for v in samples:
            h.observe(v)
            i = h.bucket_index(v)
            # First bucket whose upper bound admits v; the final slot
            # is the overflow bucket for values above every bound.
            if i < len(h.bounds):
                assert v <= h.bounds[i]
            else:
                assert v > h.bounds[-1]
            if i > 0:
                assert v > h.bounds[i - 1]
        assert sum(h.counts) == h.count == len(samples)
        assert h.min == min(samples)
        assert h.max == max(samples)

    def test_quantile_returns_bucket_bound(self):
        h = Histogram("h", lo=1.0, hi=100.0, per_decade=1)  # bounds 1, 10, 100
        for v in (1.0, 5.0, 50.0, 50.0):
            h.observe(v)
        assert h.quantile(0.5) == 10.0   # 2nd of 4 samples is in (1, 10]
        assert h.quantile(1.0) == 100.0
        with pytest.raises(ObsError):
            h.quantile(1.5)

    def test_quantile_overflow_bucket_reports_observed_max(self):
        h = Histogram("h", lo=1.0, hi=10.0, per_decade=1)
        h.observe(500.0)  # above every bound → overflow slot
        assert h.quantile(1.0) == 500.0

    def test_quantile_empty_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_merge_requires_matching_bounds(self):
        a = Histogram("a", lo=1.0, hi=100.0, per_decade=1)
        b = Histogram("b", lo=1.0, hi=100.0, per_decade=2)
        with pytest.raises(ObsError):
            a.merge(b)

    @given(
        st.lists(values, max_size=50),
        st.lists(values, max_size=50),
    )
    @settings(max_examples=50)
    def test_merge_equals_observing_everything(self, xs, ys):
        merged = Histogram("m", lo=1.0, hi=1e6, per_decade=3)
        direct = Histogram("d", lo=1.0, hi=1e6, per_decade=3)
        other = Histogram("o", lo=1.0, hi=1e6, per_decade=3)
        for v in xs:
            merged.observe(v)
            direct.observe(v)
        for v in ys:
            other.observe(v)
            direct.observe(v)
        merged.merge(other)
        assert merged.counts == direct.counts
        assert merged.count == direct.count
        assert merged.min == direct.min and merged.max == direct.max


class TestTable:
    def test_accumulates_and_ranks(self):
        t = Table("costs")
        t.add("a", 1.0)
        t.add("a", 3.0)
        t.add("b", 10.0)
        assert t.top(2) == [("b", 1, 10.0), ("a", 2, 4.0)]
        assert t.top(1, by="count") == [("a", 2, 4.0)]


class TestMetricsRegistry:
    def test_get_or_create_shares_objects(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObsError, match="already registered"):
            reg.gauge("x")

    def test_reset_keeps_objects_clear_drops_them(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        assert reg.counter("x") is c  # probes keep their references
        reg.clear()
        assert reg.counter("x") is not c

    def test_snapshot_is_sorted_plain_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must be JSON-serialisable as-is


def _hist_snapshot(samples):
    h = Histogram("h", lo=1.0, hi=1e6, per_decade=3)
    for v in samples:
        h.observe(v)
    return {"h": h.snapshot()}


class TestMergeSnapshots:
    def test_counters_add(self):
        a = {"c": {"type": "counter", "value": 2}}
        b = {"c": {"type": "counter", "value": 3}}
        assert merge_snapshots([a, b])["c"]["value"] == 5

    def test_gauges_fold_extremes_and_exact_mean(self):
        ga, gb = Gauge("g"), Gauge("g")
        for v in (1.0, 3.0):
            ga.set(v)
        gb.set(8.0)
        merged = merge_snapshots(
            [{"g": ga.snapshot()}, {"g": gb.snapshot()}]
        )["g"]
        assert merged["min"] == 1.0 and merged["max"] == 8.0
        assert merged["samples"] == 3
        assert merged["mean"] == pytest.approx(4.0)

    def test_tables_add_rowwise(self):
        ta, tb = Table("t"), Table("t")
        ta.add("x", 1.0)
        tb.add("x", 2.0)
        tb.add("y", 5.0)
        merged = merge_snapshots(
            [{"t": ta.snapshot()}, {"t": tb.snapshot()}]
        )["t"]["rows"]
        assert merged["x"] == {"count": 2, "total": 3.0}
        assert merged["y"] == {"count": 1, "total": 5.0}

    def test_type_disagreement_raises(self):
        with pytest.raises(ObsError, match="disagree on type"):
            merge_snapshots([
                {"m": {"type": "counter", "value": 1}},
                {"m": {"type": "gauge", "last": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0, "samples": 0}},
            ])

    def test_bounds_disagreement_raises(self):
        a = Histogram("h", lo=1.0, hi=100.0, per_decade=1)
        b = Histogram("h", lo=1.0, hi=100.0, per_decade=3)
        with pytest.raises(ObsError, match="bucket bounds"):
            merge_snapshots([{"h": a.snapshot()}, {"h": b.snapshot()}])

    def test_does_not_mutate_inputs(self):
        a = _hist_snapshot([2.0, 30.0])
        b = _hist_snapshot([400.0])
        before = [dict(a["h"]), dict(b["h"])]
        merge_snapshots([a, b])
        assert a["h"] == before[0] and b["h"] == before[1]

    @staticmethod
    def _hists_equal(x, y):
        # Bucket counts, extremes and bounds are exact under any merge
        # order; the float running `total` is associative only up to
        # rounding, so it gets an approx comparison.
        for key in ("type", "bounds", "counts", "count", "min", "max"):
            assert x[key] == y[key]
        assert x["total"] == pytest.approx(y["total"], rel=1e-12, abs=1e-12)

    @given(
        st.lists(values, max_size=30),
        st.lists(values, max_size=30),
        st.lists(values, max_size=30),
    )
    @settings(max_examples=50)
    def test_merge_is_associative(self, xs, ys, zs):
        # The campaign fold depends on this: workers merge in completion
        # order, which is nondeterministic, yet the report must not be.
        a, b, c = _hist_snapshot(xs), _hist_snapshot(ys), _hist_snapshot(zs)
        left = merge_snapshots([merge_snapshots([a, b]), c])["h"]
        right = merge_snapshots([a, merge_snapshots([b, c])])["h"]
        flat = merge_snapshots([a, b, c])["h"]
        self._hists_equal(left, flat)
        self._hists_equal(right, flat)

    @given(st.lists(values, max_size=30), st.lists(values, max_size=30))
    @settings(max_examples=50)
    def test_histogram_merge_is_commutative(self, xs, ys):
        a, b = _hist_snapshot(xs), _hist_snapshot(ys)
        self._hists_equal(
            merge_snapshots([a, b])["h"], merge_snapshots([b, a])["h"]
        )
