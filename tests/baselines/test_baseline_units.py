"""Unit-level behaviour of the baseline nodes on scripted micro-scenarios."""

import pytest

from repro.baselines.arq import ArqAccessPoint, ArqVehicleNode
from repro.baselines.epidemic import EpidemicVehicleNode
from repro.baselines.nocoop import PassiveVehicleNode
from repro.errors import ConfigurationError
from repro.geom import Vec2
from repro.mac.frames import DataFrame, NackFrame, NodeId
from repro.mac.medium import Medium
from repro.mobility.static import StaticMobility
from repro.net.ap import AccessPoint, FlowConfig
from repro.radio.phy import RadioConfig
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

from tests.core.test_protocol import AP, ScriptedChannel

CAR1, CAR2 = NodeId(1), NodeId(2)


def make_env(n_cars=2, node_factory=None, ap_class=AccessPoint, rate_hz=5.0):
    sim = Simulator(seed=3)
    channel = ScriptedChannel(sim)
    capture = TraceCollector()
    medium = Medium(sim, channel, trace=capture)
    flows = [
        FlowConfig(destination=NodeId(i + 1), packet_rate_hz=rate_hz,
                   payload_bytes=200)
        for i in range(n_cars)
    ]
    ap = ap_class(
        sim, medium, AP, StaticMobility(Vec2(0, 0)), RadioConfig(),
        sim.streams.get("ap"), flows, jitter_fraction=0.0,
    )
    cars = {}
    for i in range(n_cars):
        car_id = NodeId(i + 1)
        cars[car_id] = node_factory(
            sim, medium, car_id, StaticMobility(Vec2(5.0 + 5 * i, 0)),
            RadioConfig(), sim.streams.get(f"car-{car_id}"), AP,
        )
    ap.start()
    for car in cars.values():
        car.start()
    return sim, channel, capture, ap, cars


class TestPassive:
    def test_records_only_own_flow(self):
        sim, _, _, _, cars = make_env(node_factory=PassiveVehicleNode)
        sim.run(until=3.0)
        car1 = cars[CAR1]
        assert len(car1.state.received) >= 10
        assert car1.state.recovered == {}

    def test_ignores_foreign_ap(self):
        def factory(sim, medium, node_id, mobility, radio, rng, ap_id):
            return PassiveVehicleNode(
                sim, medium, node_id, mobility, radio, rng, NodeId(999)
            )

        sim, _, _, _, cars = make_env(node_factory=factory)
        sim.run(until=3.0)
        assert len(cars[CAR1].state.received) == 0


class TestArqNode:
    def test_nacks_sent_while_in_coverage(self):
        def factory(*args):
            return ArqVehicleNode(*args, feedback_period_s=0.4)

        sim, channel, capture, ap, cars = make_env(node_factory=factory)
        channel.drop_ap_data(CAR1, CAR1, {3, 4})
        sim.run(until=5.0)
        assert cars[CAR1].nacks_sent >= 1

    def test_silent_when_nothing_missing(self):
        def factory(*args):
            return ArqVehicleNode(*args, feedback_period_s=0.4)

        sim, _, _, _, cars = make_env(node_factory=factory)
        sim.run(until=5.0)
        assert cars[CAR1].nacks_sent == 0

    def test_no_nacks_out_of_coverage(self):
        def factory(*args):
            return ArqVehicleNode(*args, feedback_period_s=0.4)

        sim, channel, _, _, cars = make_env(node_factory=factory)
        channel.drop_ap_data(CAR1, CAR1, {3})
        channel.blackout_ap_after(2.0)
        sim.run(until=10.0)
        nacks_at_blackout = cars[CAR1].nacks_sent
        sim.run(until=20.0)
        assert cars[CAR1].nacks_sent == nacks_at_blackout

    def test_validation(self):
        sim = Simulator()
        medium = Medium(sim, ScriptedChannel(sim))
        with pytest.raises(ConfigurationError):
            ArqVehicleNode(
                sim, medium, CAR1, StaticMobility(Vec2(0, 0)), RadioConfig(),
                sim.streams.get("x"), AP, feedback_period_s=0.0,
            )


class TestArqAccessPoint:
    def test_retransmits_nacked_seqs(self):
        def factory(*args):
            return ArqVehicleNode(*args, feedback_period_s=0.4)

        sim, channel, capture, ap, cars = make_env(
            node_factory=factory, ap_class=ArqAccessPoint
        )

        # Drop only the original copy of seq 3 (sent around t = 0.4 s);
        # retransmissions after t = 1 s may get through.
        def drop_first_copy(frame, rx_id, now):
            return (
                isinstance(frame, DataFrame)
                and frame.src == AP
                and rx_id == CAR1
                and frame.flow_dst == CAR1
                and frame.seq == 3
                and now < 1.0
            )

        channel.rules.append(drop_first_copy)
        sim.run(until=6.0)
        assert ap.retransmissions >= 1
        # The retransmitted copy eventually reached the car.
        assert 3 in cars[CAR1].state.received

    def test_nack_from_unknown_flow_ignored(self):
        sim, channel, capture, ap, cars = make_env(
            node_factory=lambda *a: ArqVehicleNode(*a), ap_class=ArqAccessPoint
        )
        stranger = NackFrame(
            src=NodeId(77), dst=AP, size_bytes=50, missing=(1, 2)
        )
        ap._on_frame(stranger, None)
        assert ap.retransmissions == 0


class TestEpidemicNode:
    def test_buffers_all_flows_unconditionally(self):
        sim, _, _, _, cars = make_env(node_factory=EpidemicVehicleNode)
        sim.run(until=3.0)
        # CAR1 buffered CAR2's packets without any HELLO handshake.
        assert cars[CAR1].buffer.seqs_for_flow(CAR2)

    def test_holdings_include_own_and_buffered(self):
        sim, _, _, _, cars = make_env(node_factory=EpidemicVehicleNode)
        sim.run(until=3.0)
        holdings = cars[CAR1].holdings()
        assert any(flow == CAR1 for flow, _ in holdings)
        assert any(flow == CAR2 for flow, _ in holdings)

    def test_no_summaries_while_in_coverage(self):
        sim, _, _, _, cars = make_env(node_factory=EpidemicVehicleNode)
        sim.run(until=4.0)
        assert cars[CAR1].summaries_sent == 0

    def test_exchange_recovers_in_dark_area(self):
        sim, channel, _, _, cars = make_env(node_factory=EpidemicVehicleNode)
        channel.drop_ap_data(CAR1, CAR1, {4})
        channel.blackout_ap_after(3.0)
        sim.run(until=20.0)
        assert 4 in cars[CAR1].state.recovered
        assert cars[CAR2].payloads_forwarded >= 1

    def test_validation(self):
        sim = Simulator()
        medium = Medium(sim, ScriptedChannel(sim))
        with pytest.raises(ConfigurationError):
            EpidemicVehicleNode(
                sim, medium, CAR1, StaticMobility(Vec2(0, 0)), RadioConfig(),
                sim.streams.get("x"), AP, summary_period_s=0.0,
            )
