"""Heap vs wheel: the two schedulers must agree event-for-event.

The slot wheel is a pure throughput optimisation — ``(time, priority,
seq)`` total order, live-count semantics and cancellation behaviour must
be indistinguishable from the reference heap.  Random scheduler programs
(pushes at arbitrary future times spanning near tier, serving window and
overflow; interleaved pops; cancellations) are replayed against both
queues, asserting identical pop sequences; a Simulator-level test pins
the ``scheduler=`` knob end to end.

One causality constraint mirrors the kernel's contract: events are never
scheduled into the past (``Simulator.schedule`` enforces ``delay ≥ 0``),
so programs only push at or after the last popped timestamp.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Priority, Simulator
from repro.sim.event import Event
from repro.sim.scheduler import EventQueue
from repro.sim.wheel import SlotWheelQueue


def fresh_pair():
    """A reference heap and a deliberately tiny wheel.

    The small window/horizon forces events across all three wheel tiers
    (serving cursor, near buckets, overflow) within a few time units, so
    short Hypothesis programs reach every routing path.
    """
    return EventQueue(), SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)


# One program step: (op, time offset, priority, cancel index).
OPS = st.tuples(
    st.sampled_from(["push", "push", "push", "pop", "cancel", "compact"]),
    st.floats(min_value=0.0, max_value=50.0),
    st.sampled_from(list(Priority)),
    st.integers(min_value=0, max_value=200),
)


class TestQueueEquivalence:
    @given(st.lists(OPS, max_size=150))
    @settings(max_examples=200, deadline=None)
    def test_identical_pop_sequences(self, ops):
        heap, wheel = fresh_pair()
        seq = 0
        now = 0.0  # causality floor: never push below the last pop
        pending = []  # (heap event, wheel event) pairs still queued
        for op, offset, priority, pick in ops:
            if op == "push":
                time = now + offset
                pair = (
                    Event(time, priority, seq, lambda: None, ()),
                    Event(time, priority, seq, lambda: None, ()),
                )
                heap.push(pair[0])
                wheel.push(pair[1])
                pending.append(pair)
                seq += 1
            elif op == "pop" and heap:
                a, b = heap.pop(), wheel.pop()
                assert (a.time, a.priority, a.seq) == (b.time, b.priority, b.seq)
                now = a.time
                pending = [p for p in pending if p[0] is not a]
            elif op == "cancel" and pending:
                pair = pending.pop(pick % len(pending))
                assert heap.cancel(pair[0]) == wheel.cancel(pair[1])
            elif op == "compact":
                heap.compact()
                wheel.compact()
            assert len(heap) == len(wheel)
            assert heap.live_heap_count() == wheel.live_heap_count()
        # Drain whatever remains: the tails must match too.
        while heap:
            assert wheel
            a, b = heap.pop(), wheel.pop()
            assert (a.time, a.priority, a.seq) == (b.time, b.priority, b.seq)
        assert not wheel

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.sampled_from(list(Priority)),
            ),
            min_size=1,
            max_size=100,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_serve_until_stops_at_same_boundary(self, items, until):
        heap, wheel = fresh_pair()
        for seq, (time, priority) in enumerate(items):
            heap.push(Event(time, priority, seq, lambda: None, ()))
            wheel.push(Event(time, priority, seq, lambda: None, ()))
        heap_keys = [(e.time, e.priority, e.seq) for e in heap.serve(until)]
        wheel_keys = [(e.time, e.priority, e.seq) for e in wheel.serve(until)]
        assert heap_keys == wheel_keys
        assert all(key[0] <= until for key in heap_keys)
        assert len(heap) == len(wheel)  # unserved remainder matches


class TestSimulatorKnob:
    """``Simulator(scheduler=...)`` arms run the same program identically."""

    @staticmethod
    def _run(scheduler):
        sim = Simulator(seed=7, scheduler=scheduler)
        log = []

        def tick(i):
            log.append((sim.now, i))
            if i < 30:
                # Mix of same-instant follow-ups, slot-grid delays and
                # far-future timers (overflow tier on the wheel).
                sim.schedule(0.0, tick, i + 100)
                sim.schedule(20e-6 * (i % 7), log.append, ("short", i))
                timer = sim.schedule(0.5 + i, log.append, ("long", i))
                if i % 3 == 0:
                    sim.cancel(timer)

        for i in range(8):
            sim.schedule(1e-4 * i, tick, i)
        sim.run(until=2.0)
        first_leg = list(log)
        sim.run(until=40.0)  # drain the surviving far timers
        return first_leg, log, sim.now

    def test_heap_and_wheel_arms_are_bit_identical(self):
        assert self._run("wheel") == self._run("heap")
