"""Slot-wheel scheduler: tier routing, invariants, pinned policy knobs."""

import gc

import pytest
from hypothesis import given, strategies as st

from repro.mac.timing import DSSS_TIMING
from repro.sim import Simulator, gc_paused
from repro.sim.event import Event, Priority
from repro.sim.scheduler import (
    COMPACT_DEAD_FACTOR,
    COMPACT_MIN_DEAD,
    EventQueue,
    make_event_queue,
    should_compact,
)
from repro.sim.wheel import (
    DEFAULT_HORIZON_SLOTS,
    DEFAULT_SLOT_S,
    DEFAULT_WINDOW_SLOTS,
    SlotWheelQueue,
)


def make_event(time, priority=Priority.NORMAL, seq=0):
    return Event(time, priority, seq, lambda: None, ())


class TestSlotGrid:
    def test_default_slot_matches_dsss_mac_slot(self):
        """The wheel's bucket width IS the 802.11 DSSS slot.

        wheel.py mirrors the constant instead of importing it (the kernel
        sits below the MAC layer); this pin keeps the two in sync.
        """
        assert DEFAULT_SLOT_S == DSSS_TIMING.slot_s

    def test_factory_builds_each_kind(self):
        assert make_event_queue("wheel").kind == "wheel"
        assert make_event_queue("heap").kind == "heap"

    def test_factory_rejects_unknown(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_event_queue("splay-tree")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SlotWheelQueue(0.0)
        with pytest.raises(ValueError):
            SlotWheelQueue(DEFAULT_SLOT_S, window_slots=0)
        with pytest.raises(ValueError):
            # Horizon under 2× window could route serving-window pushes
            # to the overflow tier.
            SlotWheelQueue(DEFAULT_SLOT_S, window_slots=64, horizon_slots=100)


class TestOverflowRouting:
    def test_beyond_horizon_parks_in_overflow(self):
        q = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        q.push(make_event(100.0, seq=0))  # slot 100 ≥ horizon 8
        assert q.overflow_len() == 1
        assert q.overflow_pushes == 1

    def test_near_tier_events_skip_overflow(self):
        q = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        q.push(make_event(3.0, seq=0))
        assert q.overflow_len() == 0
        assert q.overflow_pushes == 0
        assert q.occupied_slots() == 1

    def test_overflow_drains_in_global_order(self):
        q = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        q.push(make_event(100.0, seq=0))  # overflow
        q.push(make_event(2.0, seq=1))   # near
        q.push(make_event(50.0, seq=2))  # overflow
        assert [q.pop().time for _ in range(3)] == [2.0, 50.0, 100.0]

    def test_inf_sentinel_drains_last(self):
        q = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        q.push(make_event(float("inf"), seq=0))
        q.push(make_event(5.0, seq=1))
        assert q.overflow_len() >= 1
        assert q.pop().time == 5.0
        assert q.pop().time == float("inf")

    def test_push_into_serving_window_keeps_order(self):
        """Same-instant follow-ups binary-insert into the live cursor."""
        sim = Simulator(scheduler="wheel")
        log = []

        def chain(tag):
            log.append(tag)
            if tag == "a":
                sim.schedule(0.0, chain, "b")  # now, mid-window

        sim.schedule(1.0, chain, "a")
        sim.schedule(1.0, log.append, "c")
        sim.run()
        # seq order: a(0), c(1), then b(2) appended at the same instant.
        assert log == ["a", "c", "b"]


class TestAutoCompactPolicy:
    """Pin the shared lazy-deletion pressure valve, knob by knob."""

    def test_threshold_constants(self):
        assert COMPACT_MIN_DEAD == 64
        assert COMPACT_DEAD_FACTOR == 2

    def test_should_compact_truth_table(self):
        # Below the floor: never, regardless of ratio.
        assert not should_compact(0, COMPACT_MIN_DEAD - 1)
        # At the floor: only when dead strictly exceed 2× live.
        assert should_compact(31, 64)      # 64 > 62
        assert not should_compact(32, 64)  # 64 == 2·32, not strict
        assert should_compact(0, 64)
        assert not should_compact(1000, 64)

    @pytest.mark.parametrize("kind", ["wheel", "heap"])
    def test_cancel_pressure_triggers_physical_compaction(self, kind):
        """Cancelling past the threshold sheds the corpses automatically."""
        q = make_event_queue(kind)
        events = [make_event(float(i + 1), seq=i) for i in range(100)]
        for event in events:
            q.push(event)
        # Out of 100 entries, the threshold (dead ≥ 64 and dead > 2·live)
        # first holds at the 67th cancel (67 > 2·33): compaction fires
        # there, leaving only the two corpses cancelled afterwards.
        for event in events[:69]:
            q.cancel(event)
        assert len(q) == 31
        assert q.physical_size() == 33
        assert q.live_heap_count() == 31

    @pytest.mark.parametrize("kind", ["wheel", "heap"])
    def test_below_floor_keeps_corpses(self, kind):
        """A handful of dead entries is cheaper to carry than to sweep."""
        q = make_event_queue(kind)
        events = [make_event(float(i + 1), seq=i) for i in range(20)]
        for event in events:
            q.push(event)
        for event in events[:10]:
            q.cancel(event)
        assert len(q) == 10
        assert q.physical_size() == 20  # dead=10 < COMPACT_MIN_DEAD

    def test_wheel_compact_preserves_order(self):
        q = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        keep = [make_event(t, seq=i) for i, t in enumerate((3.0, 1.0, 50.0))]
        drop = make_event(2.0, seq=99)
        for event in (*keep, drop):
            q.push(event)
        q.cancel(drop)
        q.compact()
        assert len(q) == 3
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 50.0]


class TestWheelInvariant:
    """``len(queue)`` always equals the live entries across all tiers."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["push", "pop", "cancel", "cancel_fired", "compact", "clear"]
                ),
                st.floats(min_value=0.0, max_value=1e3),
            ),
            max_size=120,
        )
    )
    def test_len_always_matches_live_entries(self, ops):
        q = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        seq = 0
        pending = []
        fired = []
        for op, time in ops:
            if op == "push":
                event = make_event(time, seq=seq)
                seq += 1
                q.push(event)
                pending.append(event)
            elif op == "pop" and q:
                event = q.pop()
                assert event.fired
                pending.remove(event)
                fired.append(event)
            elif op == "cancel" and pending:
                q.cancel(pending[0])
                q.cancel(pending[0])  # double-cancel must count once
            elif op == "cancel_fired" and fired:
                assert not q.cancel(fired[0])
            elif op == "compact":
                q.compact()
            elif op == "clear":
                q.clear()
                pending.clear()
            assert len(q) == q.live_heap_count()
            assert len(q) >= 0

    def test_cancel_of_foreign_event_is_refused(self):
        mine = SlotWheelQueue(1.0, window_slots=4, horizon_slots=8)
        other = EventQueue()
        event = make_event(1.0, seq=0)
        other.push(event)
        mine.push(make_event(2.0, seq=1))
        assert not mine.cancel(event)
        assert len(mine) == 1 == mine.live_heap_count()

    def test_double_push_rejected(self):
        q = SlotWheelQueue()
        event = make_event(1.0)
        q.push(event)
        with pytest.raises(ValueError):
            q.push(event)
        assert len(q) == 1

    def test_defaults_are_sane(self):
        assert DEFAULT_HORIZON_SLOTS >= 2 * DEFAULT_WINDOW_SLOTS


class TestGcPaused:
    """The kernel's GC quiescing scope: nesting, restore, error paths."""

    def test_pauses_and_restores(self):
        assert gc.isenabled()
        with gc_paused():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_nested_scopes_restore_once(self):
        with gc_paused():
            with gc_paused():
                assert not gc.isenabled()
            # Inner exit must NOT re-enable: the outer scope still holds.
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with gc_paused():
                raise RuntimeError("boom")
        assert gc.isenabled()

    def test_respects_externally_disabled_gc(self):
        gc.disable()
        try:
            with gc_paused():
                assert not gc.isenabled()
            # Caller had it off: exiting must not turn it on behind them.
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_run_nests_inside_explicit_scope(self):
        """run() inlines the same refcounted enter/exit."""
        with gc_paused():
            sim = Simulator(seed=1)
            sim.schedule(1.0, lambda: None)
            sim.run()
            assert not gc.isenabled()  # outer scope still holds
        assert gc.isenabled()
