"""Named random streams: determinism and independence."""

from repro.sim import RandomStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).get("channel").random(10).tolist()
        b = RandomStreams(seed=7).get("channel").random(10).tolist()
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=7).get("channel").random(10).tolist()
        b = RandomStreams(seed=8).get("channel").random(10).tolist()
        assert a != b

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = streams.get("channel").random(10).tolist()
        b = streams.get("mac").random(10).tolist()
        assert a != b

    def test_stream_cached_per_name(self):
        streams = RandomStreams(seed=7)
        assert streams.get("x") is streams.get("x")


class TestOrderIndependence:
    def test_creation_order_does_not_matter(self):
        first = RandomStreams(seed=3)
        a1 = first.get("a").random(5).tolist()
        b1 = first.get("b").random(5).tolist()

        second = RandomStreams(seed=3)
        b2 = second.get("b").random(5).tolist()
        a2 = second.get("a").random(5).tolist()

        assert a1 == a2
        assert b1 == b2

    def test_draw_count_isolation(self):
        """Draining one stream never perturbs another."""
        first = RandomStreams(seed=3)
        first.get("noisy").random(10_000)
        clean1 = first.get("clean").random(5).tolist()

        second = RandomStreams(seed=3)
        clean2 = second.get("clean").random(5).tolist()
        assert clean1 == clean2


class TestFork:
    def test_fork_deterministic(self):
        a = RandomStreams(seed=1).fork("round-3").get("x").random(5).tolist()
        b = RandomStreams(seed=1).fork("round-3").get("x").random(5).tolist()
        assert a == b

    def test_forks_differ_by_name(self):
        root = RandomStreams(seed=1)
        a = root.fork("round-1").get("x").random(5).tolist()
        b = root.fork("round-2").get("x").random(5).tolist()
        assert a != b

    def test_fork_differs_from_root_stream(self):
        root = RandomStreams(seed=1)
        assert (
            root.fork("x").get("x").random(5).tolist()
            != root.get("x").random(5).tolist()
        )

    def test_fork_cached(self):
        root = RandomStreams(seed=1)
        assert root.fork("r") is root.fork("r")
