"""Simulator clock and event-loop semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Priority, Simulator


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.run()
        assert log == ["a", "b"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_same_time_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_priority_at_same_instant(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "normal")
        sim.schedule(1.0, log.append, "urgent", priority=Priority.URGENT)
        sim.run()
        assert log == ["urgent", "normal"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]


class TestRunUntil:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_tiled_runs_continue(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(7.0, log.append, 7)
        sim.run(until=5.0)
        sim.run(until=10.0)
        assert log == [1, 7]

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "edge")
        sim.run(until=5.0)
        assert log == ["edge"]


class TestStopAndStep:
    def test_stop_halts_loop(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, log.append, 2)
        sim.run()
        assert log == [1]
        assert sim.pending_events == 1

    def test_step_runs_single_event(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "x")
        sim.schedule(2.0, log.append, "y")
        assert sim.step()
        assert log == ["x"]

    def test_step_on_empty_returns_false(self):
        assert not Simulator().step()

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, log.append, "no")
        sim.cancel(event)
        sim.run()
        assert log == []

    def test_cancel_idempotent_and_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_a_noop(self):
        """Regression: cancelling a fired event must not eat a live one.

        The stale-handle pattern is common in the MAC layer (a timer is
        cancelled after the event it guarded already ran).  Cancelling a
        fired event used to decrement the live count anyway, driving
        ``pending_events`` negative and letting ``run()`` stop while live
        events remained.
        """
        sim = Simulator()
        log = []
        timer = sim.schedule(1.0, log.append, "timer")
        sim.schedule(2.0, sim.cancel, timer)  # fires after the timer did
        sim.schedule(3.0, log.append, "late")
        sim.run()
        assert log == ["timer", "late"]
        assert sim.pending_events == 0

    def test_cancel_after_fire_does_not_stop_run_early(self):
        sim = Simulator()
        log = []
        first = sim.schedule(1.0, log.append, "a")
        sim.run()
        # Between runs: cancel the stale handle, then schedule fresh work.
        sim.cancel(first)
        sim.schedule(1.0, log.append, "b")
        assert sim.pending_events == 1
        sim.run()
        assert log == ["a", "b"]


class TestStreams:
    def test_seeded_streams_reproducible(self):
        a = Simulator(seed=42).streams.get("x").random(5).tolist()
        b = Simulator(seed=42).streams.get("x").random(5).tolist()
        assert a == b
