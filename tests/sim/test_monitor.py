"""Monitor time-series statistics."""

import pytest

from repro.sim import Monitor


class TestRecording:
    def test_iteration_and_len(self):
        m = Monitor("m")
        m.record(0.0, 1.0)
        m.record(1.0, 2.0)
        assert len(m) == 2
        assert list(m) == [(0.0, 1.0), (1.0, 2.0)]

    def test_times_and_values_are_copies(self):
        m = Monitor()
        m.record(0.0, 1.0)
        m.times.append(99.0)
        assert m.times == [0.0]

    def test_time_must_not_decrease(self):
        m = Monitor()
        m.record(1.0, 0.0)
        with pytest.raises(ValueError):
            m.record(0.5, 0.0)

    def test_equal_times_allowed(self):
        m = Monitor()
        m.record(1.0, 0.0)
        m.record(1.0, 1.0)
        assert len(m) == 2

    def test_clear(self):
        m = Monitor()
        m.record(0.0, 1.0)
        m.clear()
        assert len(m) == 0


class TestStatistics:
    def test_mean(self):
        m = Monitor()
        for t, v in enumerate([1.0, 2.0, 3.0]):
            m.record(float(t), v)
        assert m.mean() == pytest.approx(2.0)

    def test_std_of_constant_is_zero(self):
        m = Monitor()
        for t in range(4):
            m.record(float(t), 5.0)
        assert m.std() == 0.0

    def test_std_known_value(self):
        m = Monitor()
        for t, v in enumerate([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]):
            m.record(float(t), v)
        assert m.std() == pytest.approx(2.138, abs=1e-3)

    def test_std_single_sample_zero(self):
        m = Monitor()
        m.record(0.0, 3.0)
        assert m.std() == 0.0

    def test_min_max(self):
        m = Monitor()
        for t, v in enumerate([3.0, -1.0, 2.0]):
            m.record(float(t), v)
        assert m.minimum() == -1.0
        assert m.maximum() == 3.0

    def test_empty_stats_raise(self):
        m = Monitor("empty")
        for method in (m.mean, m.std, m.minimum, m.maximum):
            with pytest.raises(ValueError):
                method()

    def test_time_average_zero_order_hold(self):
        m = Monitor()
        m.record(0.0, 0.0)
        m.record(1.0, 10.0)  # value 0 held for 1 s
        m.record(3.0, 0.0)   # value 10 held for 2 s
        assert m.time_average() == pytest.approx(20.0 / 3.0)

    def test_time_average_needs_two_samples(self):
        m = Monitor()
        m.record(0.0, 1.0)
        with pytest.raises(ValueError):
            m.time_average()


class TestSlots:
    def test_monitor_has_no_instance_dict(self):
        # One monitor per node in every scenario: slotted like the other
        # per-node hot objects (see kernel.hot_object_alloc in BENCH).
        assert not hasattr(Monitor("m"), "__dict__")

    def test_monitor_is_smaller_than_dict_control(self):
        import sys

        class DictMonitor:  # same shape, no __slots__ — the control
            def __init__(self, name=""):
                self.name = name
                self._times = []
                self._values = []

        slotted = Monitor("m")
        control = DictMonitor("m")
        assert sys.getsizeof(slotted) < (
            sys.getsizeof(control) + sys.getsizeof(control.__dict__)
        )
