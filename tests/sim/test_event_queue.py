"""Event ordering and the lazy-deletion queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.event import Event, Priority
from repro.sim.scheduler import EventQueue


def make_event(time, priority=Priority.NORMAL, seq=0):
    return Event(time, priority, seq, lambda: None, ())


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(make_event(2.0, seq=0))
        q.push(make_event(1.0, seq=1))
        assert q.pop().time == 1.0
        assert q.pop().time == 2.0

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(make_event(1.0, Priority.LATE, seq=0))
        q.push(make_event(1.0, Priority.URGENT, seq=1))
        q.push(make_event(1.0, Priority.NORMAL, seq=2))
        assert q.pop().priority is Priority.URGENT
        assert q.pop().priority is Priority.NORMAL
        assert q.pop().priority is Priority.LATE

    def test_seq_breaks_full_ties_fifo(self):
        q = EventQueue()
        events = [make_event(1.0, seq=i) for i in range(5)]
        for e in reversed(events):
            q.push(e)
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        victim = make_event(1.0, seq=0)
        survivor = make_event(2.0, seq=1)
        q.push(victim)
        q.push(survivor)
        q.cancel(victim)
        assert q.pop() is survivor

    def test_len_counts_live_only(self):
        q = EventQueue()
        e = make_event(1.0)
        q.push(e)
        assert len(q) == 1
        q.cancel(e)
        assert len(q) == 0
        assert not q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        dead = make_event(1.0, seq=0)
        q.push(dead)
        q.push(make_event(5.0, seq=1))
        q.cancel(dead)
        assert q.peek_time() == 5.0

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_compact_preserves_live(self):
        q = EventQueue()
        keep = make_event(3.0, seq=0)
        drop = make_event(1.0, seq=1)
        q.push(keep)
        q.push(drop)
        q.cancel(drop)
        q.compact()
        assert len(q) == 1
        assert q.pop() is keep

    def test_clear(self):
        q = EventQueue()
        q.push(make_event(1.0))
        q.clear()
        assert len(q) == 0

    def test_cancel_idempotent(self):
        e = make_event(1.0)
        e.cancel()
        e.cancel()
        assert e.cancelled


class TestLiveCountInvariant:
    """``len(queue)`` must always equal the number of live heap entries.

    Property-style audit of the ``push``/``pop``/``cancel``/``compact``/
    ``clear`` bookkeeping, including the historical foot-guns: cancelling
    an event that already fired, cancelling twice, and clearing mid-run
    after cancellations.
    """

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [
                        "push", "pop", "cancel", "cancel_fired",
                        "cancel_cleared", "compact", "clear",
                    ]
                ),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            max_size=120,
        )
    )
    def test_len_always_matches_live_heap_entries(self, ops):
        q = EventQueue()
        seq = 0
        pending = []  # events pushed and not yet popped (may be cancelled)
        fired = []
        cleared = []
        for op, time in ops:
            if op == "push":
                event = make_event(time, seq=seq)
                seq += 1
                q.push(event)
                pending.append(event)
            elif op == "pop" and q:
                event = q.pop()
                assert event.fired
                pending.remove(event)
                fired.append(event)
            elif op == "cancel" and pending:
                q.cancel(pending[0])
                q.cancel(pending[0])  # double-cancel must count once
            elif op == "cancel_fired" and fired:
                # Stale handle: cancelling a fired event is a no-op.
                assert not q.cancel(fired[0])
            elif op == "cancel_cleared" and cleared:
                # Stale handle from before a clear(): also a no-op.
                assert not q.cancel(cleared[0])
            elif op == "compact":
                q.compact()
            elif op == "clear":
                q.clear()
                cleared.extend(pending)
                pending.clear()
            assert len(q) == q.live_heap_count()
            assert len(q) >= 0

    def test_clear_after_cancellations_resets_bookkeeping(self):
        q = EventQueue()
        events = [make_event(float(i), seq=i) for i in range(4)]
        for event in events:
            q.push(event)
        q.cancel(events[0])
        q.cancel(events[1])
        q.clear()
        assert len(q) == 0
        assert q.live_heap_count() == 0
        # The queue must be fully reusable after a mid-run clear.
        fresh = make_event(1.0, seq=99)
        q.push(fresh)
        assert len(q) == 1
        assert q.pop() is fresh

    def test_cancel_of_foreign_event_is_refused(self):
        """A handle from another queue (or never pushed) must not count."""
        mine, other = EventQueue(), EventQueue()
        event = make_event(1.0, seq=0)
        other.push(event)
        mine.push(make_event(2.0, seq=1))
        assert not mine.cancel(event)
        assert len(mine) == 1 == mine.live_heap_count()
        never_pushed = make_event(3.0, seq=2)
        assert not mine.cancel(never_pushed)
        assert len(mine) == 1

    def test_double_push_rejected(self):
        q = EventQueue()
        event = make_event(1.0)
        q.push(event)
        with pytest.raises(ValueError):
            q.push(event)
        assert len(q) == 1 == q.live_heap_count()

    def test_cancel_of_cleared_handle_is_refused(self):
        """Regression: clear() then cancel(stale) must not eat the count."""
        q = EventQueue()
        stale = make_event(1.0, seq=0)
        q.push(stale)
        q.clear()
        assert not q.cancel(stale)
        assert len(q) == 0
        q.push(make_event(2.0, seq=1))
        assert len(q) == 1 == q.live_heap_count()


class TestHeapProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6),
                st.sampled_from(list(Priority)),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_pops_in_sorted_key_order(self, items):
        q = EventQueue()
        for seq, (time, priority) in enumerate(items):
            q.push(make_event(time, priority, seq))
        keys = []
        while q:
            keys.append(q.pop().sort_key())
        assert keys == sorted(keys)
