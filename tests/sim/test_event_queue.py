"""Event ordering and the lazy-deletion queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.event import Event, Priority
from repro.sim.scheduler import EventQueue


def make_event(time, priority=Priority.NORMAL, seq=0):
    return Event(time, priority, seq, lambda: None, ())


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(make_event(2.0, seq=0))
        q.push(make_event(1.0, seq=1))
        assert q.pop().time == 1.0
        assert q.pop().time == 2.0

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(make_event(1.0, Priority.LATE, seq=0))
        q.push(make_event(1.0, Priority.URGENT, seq=1))
        q.push(make_event(1.0, Priority.NORMAL, seq=2))
        assert q.pop().priority is Priority.URGENT
        assert q.pop().priority is Priority.NORMAL
        assert q.pop().priority is Priority.LATE

    def test_seq_breaks_full_ties_fifo(self):
        q = EventQueue()
        events = [make_event(1.0, seq=i) for i in range(5)]
        for e in reversed(events):
            q.push(e)
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        victim = make_event(1.0, seq=0)
        survivor = make_event(2.0, seq=1)
        q.push(victim)
        q.push(survivor)
        victim.cancel()
        q.note_cancelled()
        assert q.pop() is survivor

    def test_len_counts_live_only(self):
        q = EventQueue()
        e = make_event(1.0)
        q.push(e)
        assert len(q) == 1
        e.cancel()
        q.note_cancelled()
        assert len(q) == 0
        assert not q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        dead = make_event(1.0, seq=0)
        q.push(dead)
        q.push(make_event(5.0, seq=1))
        dead.cancel()
        q.note_cancelled()
        assert q.peek_time() == 5.0

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_compact_preserves_live(self):
        q = EventQueue()
        keep = make_event(3.0, seq=0)
        drop = make_event(1.0, seq=1)
        q.push(keep)
        q.push(drop)
        drop.cancel()
        q.note_cancelled()
        q.compact()
        assert len(q) == 1
        assert q.pop() is keep

    def test_clear(self):
        q = EventQueue()
        q.push(make_event(1.0))
        q.clear()
        assert len(q) == 0

    def test_cancel_idempotent(self):
        e = make_event(1.0)
        e.cancel()
        e.cancel()
        assert e.cancelled


class TestHeapProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6),
                st.sampled_from(list(Priority)),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_pops_in_sorted_key_order(self, items):
        q = EventQueue()
        for seq, (time, priority) in enumerate(items):
            q.push(make_event(time, priority, seq))
        keys = []
        while q:
            keys.append(q.pop().sort_key())
        assert keys == sorted(keys)
