"""Generator-process semantics: delays, signals, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Signal, Simulator


class TestDelays:
    def test_yield_float_sleeps(self):
        sim = Simulator()
        ticks = []

        def proc():
            yield 1.0
            ticks.append(sim.now)
            yield 2.5
            ticks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert ticks == [1.0, 3.5]

    def test_yield_int_accepted(self):
        sim = Simulator()
        ticks = []

        def proc():
            yield 2
            ticks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert ticks == [2.0]

    def test_process_starts_at_creation_instant(self):
        sim = Simulator()
        ticks = []

        def starter():
            sim.process(late_proc())

        def late_proc():
            ticks.append(sim.now)
            yield 1.0
            ticks.append(sim.now)

        sim.schedule(5.0, starter)
        sim.run()
        assert ticks == [5.0, 6.0]

    def test_negative_delay_raises(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nope"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestResult:
    def test_result_captured(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        p = sim.process(proc())
        sim.run()
        assert not p.alive
        assert p.result == 42

    def test_done_signal_triggers_with_result(self):
        sim = Simulator()
        results = []

        def proc():
            yield 1.0
            return "done"

        p = sim.process(proc())
        p.done.subscribe(results.append)
        sim.run()
        assert results == ["done"]


class TestSignals:
    def test_wait_and_trigger_value(self):
        sim = Simulator()
        signal = Signal("data")
        got = []

        def waiter():
            value = yield signal
            got.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(3.0, signal.trigger, "hello")
        sim.run()
        assert got == [(3.0, "hello")]

    def test_trigger_wakes_all_waiters(self):
        sim = Simulator()
        signal = Signal()
        got = []

        def waiter(tag):
            value = yield signal
            got.append((tag, value))

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(1.0, signal.trigger, 7)
        sim.run()
        assert sorted(got) == [("a", 7), ("b", 7)]

    def test_trigger_without_waiters_is_noop(self):
        Signal().trigger("nobody")

    def test_subscribe_and_unsubscribe(self):
        signal = Signal()
        seen = []
        signal.subscribe(seen.append)
        signal.trigger(1)
        signal.unsubscribe(seen.append)
        signal.trigger(2)
        assert seen == [1]

    def test_second_trigger_does_not_rewake(self):
        sim = Simulator()
        signal = Signal()
        got = []

        def waiter():
            value = yield signal
            got.append(value)
            yield 10.0  # now sleeping, not waiting on the signal

        sim.process(waiter())
        sim.schedule(1.0, signal.trigger, "first")
        sim.schedule(2.0, signal.trigger, "second")
        sim.run()
        assert got == ["first"]


class TestInterrupts:
    def test_interrupt_during_sleep(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield 100.0
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        p = sim.process(sleeper())
        sim.schedule(5.0, p.interrupt, "wake-up")
        sim.run()
        assert log == [(5.0, "wake-up")]

    def test_interrupt_during_signal_wait(self):
        sim = Simulator()
        signal = Signal()
        log = []

        def waiter():
            try:
                yield signal
            except Interrupt:
                log.append(sim.now)

        p = sim.process(waiter())
        sim.schedule(2.0, p.interrupt)
        sim.run()
        assert log == [2.0]
        # Triggering afterwards must not resurrect the process.
        signal.trigger("late")
        assert not p.alive

    def test_unhandled_interrupt_kills_quietly(self):
        sim = Simulator()

        def sleeper():
            yield 100.0

        p = sim.process(sleeper())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        assert not p.alive

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield 0.5

        p = sim.process(quick())
        sim.run()
        p.interrupt()  # must not raise

    def test_process_can_continue_after_interrupt(self):
        sim = Simulator()
        log = []

        def resilient():
            try:
                yield 100.0
            except Interrupt:
                pass
            yield 1.0
            log.append(sim.now)

        p = sim.process(resilient())
        sim.schedule(5.0, p.interrupt)
        sim.run()
        assert log == [6.0]
