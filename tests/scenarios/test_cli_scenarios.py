"""The ``repro scenarios`` command and registry-sourced CLI surfaces."""

from pathlib import Path

from repro.cli import _campaign_presets, build_parser, main
from repro.scenarios import scenario_names, scenario_table_markdown

README = Path(__file__).resolve().parents[2] / "README.md"


class TestScenariosCommand:
    def test_lists_every_registered_scenario(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        assert "preset:" in out

    def test_markdown_matches_registry_table(self, capsys):
        assert main(["scenarios", "--markdown"]) == 0
        assert capsys.readouterr().out.strip() == scenario_table_markdown()


class TestReadmeTable:
    def test_readme_embeds_the_generated_table(self):
        """README's scenario table is the registry's, verbatim — run
        ``repro scenarios --markdown`` and paste on drift."""
        assert scenario_table_markdown() in README.read_text(encoding="utf-8")


class TestRegistrySourcedPresets:
    def test_every_plugin_preset_is_offered(self):
        assert {
            "platoon-size",
            "bitrate",
            "hello-period",
            "protocol-modes",
            "speed",
            "download",
            "oncoming",
        } <= set(_campaign_presets())

    def test_scenario_flag_accepts_every_registered_kind(self):
        parser = build_parser()
        for name in scenario_names():
            args = parser.parse_args(["campaign", "run", "--scenario", name])
            assert args.scenario == name


class TestScenarioCampaignRun:
    def test_gridless_scenario_campaign_runs(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "run",
                "--scenario",
                "urban",
                "--rounds",
                "1",
                "--seed",
                "55",
                "--set",
                "round_duration_s=40",
                "--store",
                str(tmp_path / "s.jsonl"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert "parameter" in out
