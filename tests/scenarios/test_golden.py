"""Golden determinism pins: exact rows per scenario kind.

These constants assert bit-identical behaviour of the plugin wirings:
same seeds → same trajectories → same channel draws → the very same
aggregates, serial or parallel, with the reception fast path on (the
default) or forced exhaustive (see ``test_fast_path_ab.py``).

They are regression pins, not physics: if a deliberate wiring or stream
change shifts them, re-record and explain in EXPERIMENTS.md.  Last
re-record: the keyed-randomness channel rework (PR 3) — fading and
shadowing became pure functions of ``(link, transmission)`` so the
medium can cull unreachable receivers without perturbing any other
link's draws, which necessarily re-realised every stochastic sequence
(calibration bands were re-checked; see EXPERIMENTS.md).
"""

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.report import download_summaries, sweep_points
from repro.campaign.spec import CampaignSpec, axis, config_to_dict
from repro.campaign.store import MemoryStore
from repro.experiments.highway import HighwayConfig
from repro.experiments.multi_ap import MultiApConfig
from repro.experiments.scenario import UrbanScenarioConfig
from repro.experiments.sweeps import platoon_size_spec
from repro.scenarios.bidirectional import BidirectionalConfig


def run(spec: CampaignSpec) -> MemoryStore:
    store = MemoryStore()
    run_campaign(spec, store, workers=1)
    return store


def rows(points) -> list[tuple]:
    return [
        (p.parameter, p.tx_by_ap_mean, p.lost_before_fraction, p.lost_after_fraction)
        for p in points
    ]


class TestUrbanGolden:
    def test_platoon_size_rows_exact(self):
        base = UrbanScenarioConfig(seed=55, round_duration_s=40.0)
        spec = platoon_size_spec(base, [1, 2], rounds=2)
        assert rows(sweep_points(run(spec), spec)) == [
            (1, 87.0, 0.0, 0.0),
            (2, 86.75, 0.14697406340057637, 0.14697406340057637),
        ]

    def test_full_duration_round_exact(self):
        base = UrbanScenarioConfig(seed=55)
        spec = CampaignSpec(
            name="g-u",
            scenario="urban",
            seed=55,
            rounds=1,
            base=config_to_dict(base),
        )
        assert rows(sweep_points(run(spec), spec)) == [
            ((), 156.66666666666666, 0.251063829787234, 0.031914893617021274),
        ]


class TestHighwayGolden:
    def test_speed_axis_rows_exact(self):
        base = HighwayConfig(seed=5, rounds=1, speed_ms=25.0, road_length_m=2000.0)
        spec = CampaignSpec(
            name="g-hw",
            scenario="highway",
            seed=base.seed,
            rounds=1,
            base=config_to_dict(base),
            axes=(axis("speed_ms", [20.0, 30.0]),),
        )
        assert rows(sweep_points(run(spec), spec)) == [
            (20.0, 1650.0, 0.2723232323232323, 0.15656565656565657),
            (30.0, 1302.3333333333333, 0.33043255694906576, 0.22011773739442028),
        ]


class TestMultiApGolden:
    def test_download_summary_exact(self):
        base = MultiApConfig(
            seed=13,
            rounds=1,
            road_length_m=4000.0,
            ap_spacing_m=800.0,
            file_blocks=60,
            speed_ms=15.0,
        )
        spec = CampaignSpec(
            name="g-ma",
            scenario="multi_ap",
            seed=base.seed,
            rounds=1,
            base=config_to_dict(base),
        )
        (summary,) = download_summaries(run(spec), spec)
        assert (
            summary.parameter,
            summary.aps_visited_coop_mean,
            summary.aps_visited_direct_mean,
            summary.completed_pairs,
        ) == ((), 1.0, 1.0, 3)


class TestBidirectionalGolden:
    def test_default_geometry_round_exact(self):
        base = BidirectionalConfig(rounds=1, oncoming_cars=2)
        spec = CampaignSpec(
            name="g-bd",
            scenario="bidirectional",
            seed=base.seed,
            rounds=1,
            base=config_to_dict(base),
        )
        assert rows(sweep_points(run(spec), spec)) == [
            ((), 1738.0, 0.5264672036823935, 0.3784042961258151),
        ]


class TestParallelParity:
    def test_workers_do_not_change_rows(self, tmp_path):
        """The registry path preserves the engine's core guarantee."""
        base = UrbanScenarioConfig(seed=55, round_duration_s=40.0)
        spec = platoon_size_spec(base, [1, 2], rounds=1)
        serial = sweep_points(run(spec), spec)
        from repro.campaign.store import JsonlStore

        with JsonlStore(tmp_path / "par.jsonl") as store:
            run_campaign(spec, store, workers=2)
            parallel = sweep_points(store, spec)
        assert parallel == serial
