"""The bidirectional-highway scenario: transient oncoming cooperators."""

import pytest

from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.scenarios.bidirectional import (
    ONCOMING_BASE_ID,
    BidirectionalConfig,
    build_bidirectional_round,
    collect_bidirectional_row,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BidirectionalConfig(speed_ms=0.0)
        with pytest.raises(ConfigurationError):
            BidirectionalConfig(oncoming_cars=-1)
        with pytest.raises(ConfigurationError):
            BidirectionalConfig(oncoming_delay_s=-5.0)
        with pytest.raises(ConfigurationError):
            BidirectionalConfig(mode="bogus")

    def test_id_spaces_are_disjoint(self):
        cfg = BidirectionalConfig(n_cars=4, oncoming_cars=4)
        assert not set(cfg.main_ids()) & set(cfg.oncoming_ids())
        assert cfg.oncoming_ids()[0] == NodeId(ONCOMING_BASE_ID)

    def test_zero_oncoming_is_a_one_way_reference(self):
        cfg = BidirectionalConfig(oncoming_cars=0)
        assert cfg.oncoming_ids() == []


class TestRound:
    @pytest.fixture(scope="class")
    def ctx(self):
        cfg = BidirectionalConfig(rounds=1, oncoming_cars=2, seed=31)
        ctx = build_bidirectional_round(cfg, 0)
        ctx.run()
        return ctx

    def test_population(self, ctx):
        assert len(ctx.main_cars) == 3
        assert len(ctx.oncoming_cars) == 2
        assert set(ctx.cars) == set(ctx.main_cars) | set(ctx.oncoming_cars)

    def test_flows_address_main_platoon_only(self, ctx):
        destinations = {flow.destination for flow in ctx.ap.flows}
        assert destinations == set(ctx.main_cars)

    def test_oncoming_cars_travel_the_opposite_way(self, ctx):
        cfg = ctx.config
        main = ctx.main_cars[NodeId(1)]
        oncoming = next(iter(ctx.oncoming_cars.values()))
        t = 30.0
        assert main.mobility.position(t).x < main.mobility.position(t + 10).x
        assert (
            oncoming.mobility.position(t).x
            > oncoming.mobility.position(t + 10).x
        )
        assert oncoming.mobility.position(t).y == cfg.lane_offset_m

    def test_row_covers_main_flows_only(self, ctx):
        row = collect_bidirectional_row(ctx)
        flows = {m["flow"] for m in row["matrices"]}
        assert flows <= {int(car) for car in ctx.config.main_ids()}
        assert flows  # the pass produced reception data

    def test_oncoming_platoon_cooperates(self, ctx):
        """At least one main car recovered packets after its dark-area
        REQUESTs — with the oncoming crossing timed into the dark area,
        transient cooperators answer."""
        recovered = sum(
            len(car.protocol.state.recovered)
            for car in ctx.main_cars.values()
        )
        assert recovered > 0
