"""The scenario plugin registry: registration, lookup, campaign dispatch."""

from dataclasses import dataclass, field

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.report import point_summaries
from repro.campaign.spec import CampaignSpec, config_from_dict, config_to_dict
from repro.campaign.store import MemoryStore
from repro.errors import CampaignError, ScenarioError
from repro.scenarios import (
    ScenarioPlugin,
    ScenarioPreset,
    all_scenarios,
    get_scenario,
    has_scenario,
    register,
    scenario_names,
    scenario_table_markdown,
)
from repro.scenarios.registry import unregister

BUILTINS = ("bidirectional", "highway", "multi_ap", "urban")


@dataclass(frozen=True)
class _ToyConfig:
    seed: int = 3
    rounds: int = 2
    value: int = 10


@dataclass
class _ToyContext:
    config: _ToyConfig
    round_index: int
    ran: bool = False

    def run(self) -> None:
        self.ran = True


@dataclass(frozen=True)
class _ToySummary:
    parameter: object
    total: int


def _toy_plugin(name: str) -> ScenarioPlugin:
    return ScenarioPlugin(
        name=name,
        description="toy scenario for registry tests",
        config_cls=_ToyConfig,
        build_round=_ToyContext,
        collect_row=lambda ctx: {
            "value": ctx.config.value + ctx.round_index,
            "ran": ctx.ran,
        },
        summarize=lambda rows, parameter: _ToySummary(
            parameter, sum(r["value"] for r in rows)
        ),
        summary_cls=_ToySummary,
        report_header="toy",
        report_line=lambda s: f"{s.parameter} {s.total}",
        presets=(ScenarioPreset("toy-preset", "a preset", lambda: {}),),
    )


@pytest.fixture
def toy():
    plugin = register(_toy_plugin("toy"))
    yield plugin
    unregister("toy")


class TestRegistration:
    def test_builtins_are_registered(self):
        for name in BUILTINS:
            assert has_scenario(name)
        assert set(BUILTINS) <= set(scenario_names())

    def test_duplicate_name_rejected(self, toy):
        with pytest.raises(ScenarioError, match="already registered"):
            register(_toy_plugin("toy"))

    def test_duplicate_builtin_rejected(self):
        with pytest.raises(ScenarioError, match="urban"):
            register(_toy_plugin("urban"))

    def test_unknown_scenario_lookup_fails_with_known_names(self):
        with pytest.raises(ScenarioError, match="urban"):
            get_scenario("martian")

    def test_registry_errors_are_campaign_errors(self):
        # The campaign layer dispatches through the registry; callers
        # catching CampaignError must see registry misses too.
        with pytest.raises(CampaignError):
            get_scenario("martian")


class TestPluginContracts:
    """Every registered plugin honours the interface the engine assumes."""

    @pytest.mark.parametrize("name", BUILTINS)
    def test_default_config_round_trips_json(self, name):
        plugin = get_scenario(name)
        cfg = plugin.default_config()
        assert config_from_dict(plugin.config_cls, config_to_dict(cfg)) == cfg

    @pytest.mark.parametrize("name", BUILTINS)
    def test_presets_build_valid_campaign_specs(self, name):
        plugin = get_scenario(name)
        for preset in plugin.presets:
            spec = CampaignSpec.from_dict(preset.build())
            assert spec.scenario == name
            assert spec.name == preset.name
            # The base dict must materialise (validates field names).
            for task in spec.expand()[:1]:
                task.config()

    @pytest.mark.parametrize("name", BUILTINS)
    def test_mode_field_matches_declared_modes(self, name):
        plugin = get_scenario(name)
        cfg = plugin.default_config()
        assert cfg.mode in plugin.modes

    def test_markdown_table_names_every_plugin(self):
        table = scenario_table_markdown()
        for plugin in all_scenarios():
            assert f"`{plugin.name}`" in table


class TestCampaignDispatch:
    """A plugin registration is all it takes to ride the campaign engine."""

    def test_campaign_runs_through_registered_plugin(self, toy):
        spec = CampaignSpec(
            name="toy-run",
            scenario="toy",
            seed=3,
            rounds=2,
            base=config_to_dict(_ToyConfig()),
        )
        store = MemoryStore()
        stats = run_campaign(spec, store, workers=1)
        assert stats.executed == 2
        (summary,) = point_summaries(store, spec)
        assert summary == _ToySummary((), 10 + 11)

    def test_unregistered_scenario_refused_by_spec(self):
        with pytest.raises(CampaignError, match="scenario"):
            CampaignSpec(
                name="x", scenario="toy", seed=1, rounds=1, base={}
            )
