"""A/B pin: reception fast path and batch kernel change only wall clock.

For every registered scenario the same small campaign is run three ways —
with the default fast path plus vectorized batch kernel, with the batch
kernel disabled (PR 3's scalar fast path), and forced onto the fully
scalar exhaustive reference path, which bounds *and samples* every
attached interface.  Because all stochastic channel draws are keyed per
``(link, transmission)`` and the batch kernel reproduces the scalar
float64 semantics exactly, the stored summary rows have to match bit for
bit across all three.

A scenario added to the registry without an entry here fails the
coverage test below, so the pin cannot silently rot.

The same arms are additionally re-run with the observability layer fully
enabled (metrics registry + span tracer) and compared against the
uninstrumented rows: instrumentation is contractually free of RNG draws
and simulation feedback, so switching it on must not move a single bit.
"""

import dataclasses

import pytest

from repro import obs
from repro.campaign.executor import run_campaign
from repro.campaign.report import point_summaries
from repro.campaign.spec import CampaignSpec, config_to_dict
from repro.campaign.store import MemoryStore
from repro.experiments.highway import HighwayConfig
from repro.experiments.multi_ap import MultiApConfig
from repro.experiments.scenario import UrbanScenarioConfig
from repro.scenarios.bidirectional import BidirectionalConfig
from repro.scenarios.registry import scenario_names
from repro.scenarios.trace import SynthTraceConfig, TraceScenarioConfig

#: One cheap-but-representative configuration per registered scenario.
SMALL_CONFIGS = {
    "urban": UrbanScenarioConfig(seed=55, round_duration_s=40.0),
    "highway": HighwayConfig(seed=5, rounds=1, speed_ms=25.0, road_length_m=2000.0),
    "multi_ap": MultiApConfig(
        seed=13,
        rounds=1,
        road_length_m=4000.0,
        ap_spacing_m=800.0,
        file_blocks=60,
        speed_ms=15.0,
    ),
    "bidirectional": BidirectionalConfig(rounds=1, oncoming_cars=2),
    # Deep enough into the dark area that the REQUEST/coop-data recovery
    # path runs (the pin must cover cooperation, not just streaming).
    "trace": TraceScenarioConfig(
        seed=31,
        rounds=1,
        synth=SynthTraceConfig(
            vehicles=5,
            duration_s=70.0,
            road_length_m=1500.0,
            mean_speed_ms=25.0,
            entry_gap_s=2.0,
        ),
    ),
}


def run_rows(
    scenario: str, config, *, fast_path: bool, batch: bool,
    scheduler: str = "wheel", batched_delivery: bool = True,
    cross_broadcast_batch: bool = True, instrumented: bool = False,
):
    radio = dataclasses.replace(
        config.radio,
        reception_fast_path=fast_path,
        reception_batch=batch,
        scheduler=scheduler,
        batched_delivery=batched_delivery,
        cross_broadcast_batch=cross_broadcast_batch,
    )
    config = dataclasses.replace(config, radio=radio)
    spec = CampaignSpec(
        name=f"ab-{scenario}-{'fast' if fast_path else 'exhaustive'}"
        f"-{'batch' if batch else 'scalar'}",
        scenario=scenario,
        seed=config.seed,
        rounds=1,
        base=config_to_dict(config),
    )
    store = MemoryStore()
    if instrumented:
        with obs.instrumented() as tracer:
            run_campaign(spec, store, workers=1)
            # Guard against a silently dead pin: the instrumentation must
            # actually have observed the round it claims not to perturb.
            assert obs.registry().counter("sim.events_fired").value > 0
        assert len(tracer.spans()) > 0
    else:
        run_campaign(spec, store, workers=1)
    return point_summaries(store, spec)


#: Uninstrumented arm results shared between the two pins below, keyed by
#: ``(scenario, fast_path, batch)`` — each plain arm runs exactly once.
_PLAIN_ROWS: dict = {}


def plain_rows(scenario: str, *, fast_path: bool, batch: bool):
    key = (scenario, fast_path, batch)
    if key not in _PLAIN_ROWS:
        _PLAIN_ROWS[key] = run_rows(
            scenario, SMALL_CONFIGS[scenario], fast_path=fast_path, batch=batch
        )
    return _PLAIN_ROWS[key]


def test_every_registered_scenario_is_covered():
    assert set(SMALL_CONFIGS) == set(scenario_names())


@pytest.mark.parametrize("scenario", sorted(SMALL_CONFIGS))
def test_fast_path_and_batch_rows_bit_identical(scenario):
    batch_fast = plain_rows(scenario, fast_path=True, batch=True)
    scalar_fast = plain_rows(scenario, fast_path=True, batch=False)
    exhaustive = plain_rows(scenario, fast_path=False, batch=False)
    assert batch_fast == scalar_fast == exhaustive


@pytest.mark.parametrize("scenario", sorted(SMALL_CONFIGS))
def test_scheduler_and_delivery_rows_bit_identical(scenario):
    """The event-kernel A/B pin: wheel + pooled delivery vs the legacy arms.

    The slot-wheel scheduler preserves the heap's ``(time, priority,
    seq)`` pop order exactly, and the coalesced delivery sink defers
    per-receiver dispatch within one already-atomic frame-end event —
    channel draws are keyed per ``(link, transmission)`` and protocol
    reactions only schedule future events, so neither can move a bit.
    Three legacy arms (heap scheduler, per-vehicle callback delivery,
    and both at once) must reproduce the default rows exactly.
    """
    config = SMALL_CONFIGS[scenario]
    default = plain_rows(scenario, fast_path=True, batch=True)
    heap = run_rows(config=config, scenario=scenario, fast_path=True,
                    batch=True, scheduler="heap")
    unbatched = run_rows(config=config, scenario=scenario, fast_path=True,
                         batch=True, batched_delivery=False)
    legacy = run_rows(config=config, scenario=scenario, fast_path=True,
                      batch=True, scheduler="heap", batched_delivery=False)
    assert default == heap == unbatched == legacy


@pytest.mark.parametrize("scenario", sorted(SMALL_CONFIGS))
def test_cross_broadcast_batch_rows_bit_identical(scenario):
    """The cross-broadcast coalescer A/B pin (reception ladder rung 5).

    With ``radio.cross_broadcast_batch`` on (the default), same-instant
    broadcasts defer their candidate evaluation to one instant-end drain
    and share a single concatenated sampling pass plus coalesced
    frame-end delivery.  Every order-sensitive fact is captured at the
    original transmit event (tx_seq, trace row, kill loop, candidate
    snapshot), every mid-instant observer forces an early drain, and all
    channel draws are keyed per ``(link, transmission)`` — so the
    one-at-a-time arm must reproduce the coalesced rows bit for bit.
    """
    config = SMALL_CONFIGS[scenario]
    default = plain_rows(scenario, fast_path=True, batch=True)
    one_at_a_time = run_rows(
        config=config, scenario=scenario, fast_path=True, batch=True,
        cross_broadcast_batch=False,
    )
    assert default == one_at_a_time


@pytest.mark.parametrize("scenario", sorted(SMALL_CONFIGS))
@pytest.mark.parametrize(
    "fast_path,batch",
    [(True, True), (True, False), (False, False)],
    ids=["batch", "fast", "exhaustive"],
)
def test_rows_unchanged_with_instrumentation_enabled(scenario, fast_path, batch):
    """The observability non-perturbation contract, pinned per arm.

    Metrics registry on, span tracer installed, every probe live — and
    the stored summary rows still match the uninstrumented run bit for
    bit, because instrumentation takes no RNG draws and never feeds back
    into the simulation (see ``repro.obs``).
    """
    config = SMALL_CONFIGS[scenario]
    instrumented = run_rows(
        scenario, config, fast_path=fast_path, batch=batch, instrumented=True
    )
    assert instrumented == plain_rows(
        scenario, fast_path=fast_path, batch=batch
    )
