"""A/B pin: the reception fast path changes nothing but the wall clock.

For every registered scenario the same small campaign is run twice —
once with the medium's culling fast path (the default) and once forced
onto the exhaustive reference path, which bounds *and samples* every
attached interface.  Because all stochastic channel draws are keyed per
``(link, transmission)``, the extra samples of the exhaustive path must
not perturb anything: the stored summary rows have to match bit for bit.

A scenario added to the registry without an entry here fails the
coverage test below, so the pin cannot silently rot.
"""

import dataclasses

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.report import point_summaries
from repro.campaign.spec import CampaignSpec, config_to_dict
from repro.campaign.store import MemoryStore
from repro.experiments.highway import HighwayConfig
from repro.experiments.multi_ap import MultiApConfig
from repro.experiments.scenario import UrbanScenarioConfig
from repro.scenarios.bidirectional import BidirectionalConfig
from repro.scenarios.registry import scenario_names

#: One cheap-but-representative configuration per registered scenario.
SMALL_CONFIGS = {
    "urban": UrbanScenarioConfig(seed=55, round_duration_s=40.0),
    "highway": HighwayConfig(seed=5, rounds=1, speed_ms=25.0, road_length_m=2000.0),
    "multi_ap": MultiApConfig(
        seed=13,
        rounds=1,
        road_length_m=4000.0,
        ap_spacing_m=800.0,
        file_blocks=60,
        speed_ms=15.0,
    ),
    "bidirectional": BidirectionalConfig(rounds=1, oncoming_cars=2),
}


def run_rows(scenario: str, config, *, fast_path: bool):
    radio = dataclasses.replace(config.radio, reception_fast_path=fast_path)
    config = dataclasses.replace(config, radio=radio)
    spec = CampaignSpec(
        name=f"ab-{scenario}-{'fast' if fast_path else 'exhaustive'}",
        scenario=scenario,
        seed=config.seed,
        rounds=1,
        base=config_to_dict(config),
    )
    store = MemoryStore()
    run_campaign(spec, store, workers=1)
    return point_summaries(store, spec)


def test_every_registered_scenario_is_covered():
    assert set(SMALL_CONFIGS) == set(scenario_names())


@pytest.mark.parametrize("scenario", sorted(SMALL_CONFIGS))
def test_fast_path_rows_bit_identical(scenario):
    config = SMALL_CONFIGS[scenario]
    fast = run_rows(scenario, config, fast_path=True)
    exhaustive = run_rows(scenario, config, fast_path=False)
    assert fast == exhaustive
