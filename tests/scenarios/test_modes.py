"""Protocol mode as a config field and a sweepable campaign axis."""

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.report import sweep_points
from repro.campaign.spec import CampaignSpec, config_to_dict
from repro.campaign.store import MemoryStore
from repro.errors import ConfigurationError
from repro.experiments.scenario import UrbanScenarioConfig
from repro.scenarios.highway import HighwayConfig
from repro.scenarios.modes import (
    BASELINE_MODES,
    PROTOCOL_MODES,
    ap_class,
    build_vehicle,
    reception_state,
    validate_mode,
)
from repro.scenarios.multi_ap import MultiApConfig
from repro.scenarios.urban import build_urban_round


class TestModeValidation:
    def test_protocol_modes_cover_baselines(self):
        assert set(BASELINE_MODES) < set(PROTOCOL_MODES)
        assert "carq" in PROTOCOL_MODES

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="teleportation"):
            validate_mode("teleportation")

    def test_urban_config_validates_mode(self):
        with pytest.raises(ConfigurationError):
            UrbanScenarioConfig(mode="bogus")

    def test_highway_config_validates_mode(self):
        with pytest.raises(ConfigurationError):
            HighwayConfig(mode="bogus")

    def test_multi_ap_is_carq_only(self):
        with pytest.raises(ConfigurationError, match="C-ARQ only"):
            MultiApConfig(mode="nocoop")

    def test_arq_mode_swaps_the_ap(self):
        from repro.baselines.arq import ArqAccessPoint
        from repro.net.ap import AccessPoint

        assert ap_class("arq") is ArqAccessPoint
        for mode in ("carq", "nocoop", "epidemic"):
            assert ap_class(mode) is AccessPoint


class TestModeAxisCampaign:
    """The paper's Table-1 comparison as one paired-seed campaign."""

    @pytest.fixture(scope="class")
    def executed(self):
        base = UrbanScenarioConfig(seed=23, round_duration_s=60.0)
        spec = CampaignSpec.from_dict(
            {
                "name": "modes",
                "scenario": "urban",
                "seed": base.seed,
                "rounds": 1,
                "base": config_to_dict(base),
                "axes": [
                    {
                        "name": "mode",
                        "points": [
                            {"label": m, "overrides": {"mode": m}}
                            for m in ("carq", "nocoop", "epidemic")
                        ],
                    }
                ],
            }
        )
        store = MemoryStore()
        run_campaign(spec, store, workers=1)
        return spec, store

    def test_arms_share_the_simulation_seed(self, executed):
        spec, _ = executed
        seeds = {task.labels: task.seed for task in spec.expand()}
        assert len(set(seeds.values())) == 1  # paired comparison

    def test_every_arm_reports_a_sweep_point(self, executed):
        spec, store = executed
        points = sweep_points(store, spec)
        assert [p.parameter for p in points] == ["carq", "nocoop", "epidemic"]

    def test_nocoop_arm_never_recovers(self, executed):
        spec, store = executed
        by_mode = {p.parameter: p for p in sweep_points(store, spec)}
        nocoop = by_mode["nocoop"]
        assert nocoop.lost_after_fraction == nocoop.lost_before_fraction

    def test_carq_arm_beats_its_before_loss(self, executed):
        spec, store = executed
        by_mode = {p.parameter: p for p in sweep_points(store, spec)}
        carq = by_mode["carq"]
        assert carq.lost_after_fraction < carq.lost_before_fraction


class TestModeWiring:
    def test_build_urban_round_honours_mode(self):
        cfg = UrbanScenarioConfig(seed=23, round_duration_s=40.0, mode="nocoop")
        ctx = build_urban_round(cfg, 0)
        assert ctx.mode == "nocoop"
        for car in ctx.cars.values():
            assert not hasattr(car, "protocol")
            assert reception_state(car) is car.state

    def test_build_vehicle_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            build_vehicle(
                "bogus", None, None, None, None, None, None, None, None
            )
