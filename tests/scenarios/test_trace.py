"""The trace-driven scenario plugin: wiring, grouping, files, CLI."""

import dataclasses

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.report import point_summaries, sweep_points
from repro.campaign.spec import CampaignSpec, config_to_dict
from repro.campaign.store import MemoryStore
from repro.cli import main
from repro.errors import ConfigurationError
from repro.mobility.base import TraceMobility
from repro.mobility.traceio import dump_traces, synth_traces
from repro.scenarios.registry import get_scenario
from repro.scenarios.trace import (
    SynthTraceConfig,
    TraceScenarioConfig,
    build_trace_round,
    collect_trace_row,
)

#: Quick synthetic geometry shared by the tests here: small enough to run
#: in ~2 s, deep enough into the dark area that recovery actually fires.
SMALL_SYNTH = SynthTraceConfig(
    vehicles=5,
    duration_s=70.0,
    road_length_m=1500.0,
    mean_speed_ms=25.0,
    entry_gap_s=2.0,
)


def small_config(**overrides) -> TraceScenarioConfig:
    return TraceScenarioConfig(seed=31, rounds=1, synth=SMALL_SYNTH, **overrides)


def run_rows(config: TraceScenarioConfig, rounds: int = 1):
    spec = CampaignSpec(
        name="trace-test",
        scenario="trace",
        seed=config.seed,
        rounds=rounds,
        base=config_to_dict(config),
    )
    store = MemoryStore()
    run_campaign(spec, store, workers=1)
    return point_summaries(store, spec), spec, store


class TestConfig:
    def test_default_config_round_trips_as_json(self):
        cfg = TraceScenarioConfig()
        from repro.scenarios.configs import config_from_dict

        assert config_from_dict(TraceScenarioConfig, config_to_dict(cfg)) == cfg

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="trace_format"):
            TraceScenarioConfig(trace_format="gpx")
        with pytest.raises(ConfigurationError, match="tick_s"):
            TraceScenarioConfig(tick_s=-1.0)
        with pytest.raises(ConfigurationError, match="served_vehicles"):
            TraceScenarioConfig(served_vehicles=-1)
        with pytest.raises(ConfigurationError, match="ap_road_fraction"):
            TraceScenarioConfig(ap_road_fraction=1.5)
        with pytest.raises(ConfigurationError, match="unknown protocol mode"):
            TraceScenarioConfig(mode="telepathy")

    def test_ap_placement_rule(self):
        cfg = small_config()
        traces = cfg.load_traces()
        ap = cfg.ap_position(traces)
        x_min, y_min, x_max, _ = traces.bounds()
        assert ap.x == pytest.approx(x_min + 0.15 * (x_max - x_min))
        assert ap.y == pytest.approx(y_min - cfg.ap_offset_m)
        explicit = dataclasses.replace(cfg, ap_x=123.0, ap_y=-7.0)
        assert explicit.ap_position(traces).x == 123.0
        assert explicit.ap_position(traces).y == -7.0

    def test_tick_resampling_reaches_the_mobility(self):
        coarse = dataclasses.replace(small_config(), tick_s=5.0)
        traces = coarse.load_traces()
        assert all(
            all((t / 5.0) == int(t / 5.0) for t in trace.times) for trace in traces
        )

    def test_crop_window_is_applied_before_rebase(self):
        cfg = dataclasses.replace(small_config(), t_min=10.0, t_max=40.0)
        traces = cfg.load_traces()
        assert traces.start_time == 0.0
        assert traces.end_time <= 30.0


class TestRoundWiring:
    def test_round_runs_and_recovers(self):
        ctx = build_trace_round(small_config(), 0)
        ctx.run()
        recovered = sum(
            len(car.protocol.state.recovered) for car in ctx.cars.values()
        )
        assert recovered > 0  # the A/B pin must cover cooperation
        row = collect_trace_row(ctx)
        assert row["matrices"]

    def test_vehicles_share_one_scene_track(self):
        ctx = build_trace_round(small_config(), 0)
        keys = {car.mobility.batch_key() for car in ctx.cars.values()}
        assert len(keys) == 1
        assert all(isinstance(car.mobility, TraceMobility) for car in ctx.cars.values())

    def test_served_vehicles_limits_flows_not_population(self):
        cfg = dataclasses.replace(small_config(), served_vehicles=2)
        ctx = build_trace_round(cfg, 0)
        assert len(ctx.cars) == 5  # everyone is on the road...
        assert len(ctx.served) == 2  # ...but only two are streamed to
        ctx.run()
        row = collect_trace_row(ctx)
        assert len(row["matrices"]) <= 2

    def test_rounds_share_the_recording_but_not_the_channel(self):
        ctx0 = build_trace_round(small_config(), 0)
        ctx1 = build_trace_round(small_config(), 1)
        # Same road every round...
        assert [c.mobility.position(10.0) for c in ctx0.cars.values()] == [
            c.mobility.position(10.0) for c in ctx1.cars.values()
        ]
        # ...but an independent channel realisation per round.
        ctx0.run()
        ctx1.run()
        assert collect_trace_row(ctx0) != collect_trace_row(ctx1)


class TestGolden:
    def test_small_round_exact(self):
        """Golden determinism pin (regression pin, not physics — see
        tests/scenarios/test_golden.py for the re-record protocol)."""
        rows, _, _ = run_rows(small_config())
        (point,) = rows
        assert (
            point.parameter,
            point.tx_by_ap_mean,
            point.lost_before_fraction,
            point.lost_after_fraction,
        ) == GOLDEN_SMALL_ROW


#: Recorded from the run itself (seed 31, SMALL_SYNTH geometry).
GOLDEN_SMALL_ROW = ((), 1099.8, 0.3940716493907983, 0.33496999454446263)


class TestTraceFileConfigs:
    @pytest.mark.parametrize("fmt", ["csv", "sumo-fcd", "ns2"])
    def test_file_driven_round_runs(self, tmp_path, fmt):
        traces = synth_traces(
            vehicles=4, duration_s=50.0, road_length_m=1100.0,
            mean_speed_ms=25.0, entry_gap_s=2.0, seed=8,
        ).rebased()
        path = tmp_path / f"trace.{fmt}"
        dump_traces(traces, path, fmt=fmt)
        cfg = TraceScenarioConfig(seed=17, rounds=1, trace_file=str(path))
        rows, _, _ = run_rows(cfg)
        assert rows[0].tx_by_ap_mean > 0

    def test_same_recording_any_format_same_rows(self, tmp_path):
        """CSV and SUMO serialisations are bit-exact, so the campaign rows
        they produce must be too."""
        traces = synth_traces(
            vehicles=4, duration_s=50.0, road_length_m=1100.0,
            mean_speed_ms=25.0, entry_gap_s=2.0, seed=8,
        ).rebased()
        rows = []
        for fmt in ("csv", "sumo-fcd"):
            path = tmp_path / f"t.{fmt}"
            dump_traces(traces, path, fmt=fmt)
            cfg = TraceScenarioConfig(seed=17, rounds=1, trace_file=str(path))
            points, _, _ = run_rows(cfg)
            rows.append(points)
        assert rows[0] == rows[1]

    def test_missing_file_fails_loudly(self):
        cfg = TraceScenarioConfig(trace_file="/nonexistent/trace.csv")
        with pytest.raises(Exception, match="cannot read"):
            cfg.load_traces()


class TestPresets:
    def test_presets_materialise_as_valid_specs(self):
        plugin = get_scenario("trace")
        assert {p.name for p in plugin.presets} == {"trace-modes", "trace-served"}
        for preset in plugin.presets:
            spec = CampaignSpec.from_dict(preset.build())
            assert spec.scenario == "trace"
            assert spec.expand()

    def test_modes_preset_covers_every_protocol_mode(self):
        plugin = get_scenario("trace")
        preset = {p.name: p for p in plugin.presets}["trace-modes"]
        spec = CampaignSpec.from_dict(preset.build())
        labels = [p.label for p in spec.axes[0].points]
        assert labels == ["carq", "nocoop", "arq", "epidemic"]


class TestCli:
    def test_synth_then_campaign_run_end_to_end(self, tmp_path, capsys):
        """The acceptance path: repro trace synth → repro campaign run."""
        trace_path = tmp_path / "t.csv"
        assert main(
            [
                "trace", "synth", "--out", str(trace_path),
                "--vehicles", "4", "--duration", "50", "--road-length", "1100",
                "--speed", "25", "--entry-gap", "2", "--seed", "8",
            ]
        ) == 0
        assert main(["trace", "info", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "vehicles:   4" in out
        code = main(
            [
                "campaign", "run", "--scenario", "trace",
                "--rounds", "1", "--seed", "17",
                "--set", f"trace_file={trace_path}",
                "--store", str(tmp_path / "t.jsonl"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert "parameter" in out

    def test_trace_synth_rejects_bad_parameters(self, tmp_path, capsys):
        code = main(
            ["trace", "synth", "--out", str(tmp_path / "t.csv"), "--vehicles", "0"]
        )
        assert code == 2
        assert "at least one vehicle" in capsys.readouterr().err

    def test_trace_info_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<fcd-export><timestep>")
        assert main(["trace", "info", str(bad)]) == 2
        assert "malformed" in capsys.readouterr().err
