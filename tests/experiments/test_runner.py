"""End-to-end urban experiment: the paper's claims as test invariants."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.joint import optimality_gap
from repro.analysis.stats import compute_table1
from repro.experiments.runner import run_urban_experiment
from repro.experiments.scenario import UrbanScenarioConfig
from repro.mac.frames import NodeId

CARS = [NodeId(1), NodeId(2), NodeId(3)]


@pytest.fixture(scope="module")
def result():
    """Four rounds of the paper testbed (module-scoped: ~2 s)."""
    return run_urban_experiment(UrbanScenarioConfig(seed=11), rounds=4)


class TestStructure:
    def test_all_rounds_have_all_cars(self, result):
        for outcome in result.rounds:
            assert set(outcome.matrices) == set(CARS)

    def test_matrices_for_flow(self, result):
        assert len(result.matrices_for_flow(NodeId(1))) == 4

    def test_unknown_car_raises(self, result):
        with pytest.raises(AnalysisError):
            result.matrices_for_flow(NodeId(99))


class TestPaperClaims:
    def test_cooperation_reduces_losses(self, result):
        """The headline claim: cooperation roughly halves losses."""
        rows = compute_table1(result.matrices_by_round())
        for row in rows.values():
            assert row.lost_after_mean < row.lost_before_mean
            assert row.loss_reduction_pct > 30.0

    def test_losses_in_plausible_range(self, result):
        rows = compute_table1(result.matrices_by_round())
        for row in rows.values():
            assert 10.0 < row.lost_before_pct < 60.0

    def test_near_optimality(self, result):
        """After-coop ≈ joint (Figs 6–8: 'almost coincident')."""
        for car in CARS:
            gap = optimality_gap(result.matrices_for_flow(car))
            assert gap <= 0.02

    def test_no_optimality_violations(self, result):
        """Recovery never produces packets nobody received."""
        for outcome in result.rounds:
            for matrix in outcome.matrices.values():
                assert matrix.optimality_violations() == frozenset()

    def test_recovery_activity_happened(self, result):
        for outcome in result.rounds:
            total_requests = sum(
                s.request_frames_sent for s in outcome.stats.values()
            )
            total_responses = sum(
                s.responses_sent for s in outcome.stats.values()
            )
            assert total_requests > 0
            assert total_responses > 0

    def test_window_length_near_testbed_scale(self, result):
        """Per-flow windows are in the ~100–250 packet range like Table 1."""
        rows = compute_table1(result.matrices_by_round())
        for row in rows.values():
            assert 80.0 <= row.tx_by_ap_mean <= 260.0
