"""Parameter sweeps: structural behaviour on reduced configurations."""

import pytest

from dataclasses import replace

from repro.experiments.scenario import UrbanScenarioConfig
from repro.experiments.sweeps import (
    SweepPoint,
    bitrate_sweep,
    hello_period_sweep,
    platoon_size_sweep,
)


@pytest.fixture(scope="module")
def base():
    return UrbanScenarioConfig(seed=55)


class TestSweepPoint:
    def test_reduction_fraction(self):
        point = SweepPoint("x", 100.0, 0.4, 0.1)
        assert point.reduction_fraction == pytest.approx(0.75)

    def test_zero_before_means_zero_reduction(self):
        point = SweepPoint("x", 100.0, 0.0, 0.0)
        assert point.reduction_fraction == 0.0


class TestPlatoonSizeSweep:
    @pytest.fixture(scope="class")
    def points(self, request):
        cfg = UrbanScenarioConfig(seed=55)
        return platoon_size_sweep(cfg, [1, 3], rounds=3)

    def test_single_car_cannot_cooperate(self, points):
        solo = points[0]
        assert solo.parameter == 1
        assert solo.reduction_fraction == pytest.approx(0.0, abs=0.01)

    def test_three_cars_gain_substantially(self, points):
        trio = points[1]
        assert trio.reduction_fraction > 0.3

    def test_diversity_grows_with_size(self, points):
        # Diversity is visible in the *recovered share* of losses: a solo
        # car recovers nothing, three cooperators most.  (Absolute
        # residual loss is not comparable across sizes — each car adds a
        # flow, so bigger platoons also carry more in-window load.)
        assert points[1].reduction_fraction > points[0].reduction_fraction + 0.3


class TestBitrateSweep:
    def test_higher_rate_shrinks_window_and_raises_loss(self, base):
        points = bitrate_sweep(base, ["dsss-1", "dsss-11"], rounds=3)
        one, eleven = points
        # At 11 Mb/s the reliable coverage area is much smaller: fewer
        # packets make it at all and the loss fraction in-window grows.
        assert eleven.lost_before_fraction > one.lost_before_fraction
        # Cooperation still helps at the high rate.
        assert eleven.lost_after_fraction < eleven.lost_before_fraction


class TestHelloPeriodSweep:
    def test_runs_and_recovers_for_all_periods(self, base):
        points = hello_period_sweep(base, [0.5, 3.0], rounds=2)
        for point in points:
            assert point.lost_after_fraction < point.lost_before_fraction
