"""Baseline protocols on the same urban testbed."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.baseline_runner import (
    build_baseline_round,
    collect_baseline_matrices,
)
from repro.experiments.scenario import UrbanScenarioConfig
from repro.mac.frames import NodeId

CFG = UrbanScenarioConfig(seed=23)


class TestNoCoop:
    def test_no_recovery_happens(self):
        ctx = build_baseline_round(CFG, 0, "nocoop")
        ctx.run()
        matrices = collect_baseline_matrices(ctx)
        for matrix in matrices.values():
            assert matrix.lost_after_coop == matrix.lost_before_coop

    def test_losses_match_carq_before_coop_statistically(self):
        ctx = build_baseline_round(CFG, 0, "nocoop")
        ctx.run()
        matrices = collect_baseline_matrices(ctx)
        for matrix in matrices.values():
            fraction = matrix.lost_before_coop / matrix.tx_by_ap
            assert 0.05 < fraction < 0.7


class TestArq:
    def test_ap_retransmits_on_nacks(self):
        ctx = build_baseline_round(CFG, 0, "arq")
        ctx.run()
        assert ctx.ap.retransmissions > 0
        nacks = sum(car.nacks_sent for car in ctx.cars.values())
        assert nacks > 0

    def test_retransmissions_consume_ap_airtime(self):
        """The ARQ AP sends more frames for the same fresh-data stream."""
        plain = build_baseline_round(CFG, 0, "nocoop")
        plain.run()
        arq = build_baseline_round(CFG, 0, "arq")
        arq.run()
        assert arq.ap.iface.frames_sent > plain.ap.iface.frames_sent


class TestEpidemic:
    def test_dark_area_exchange_recovers_packets(self):
        ctx = build_baseline_round(CFG, 0, "epidemic")
        ctx.run()
        matrices = collect_baseline_matrices(ctx)
        improved = sum(
            1
            for matrix in matrices.values()
            if matrix.lost_after_coop < matrix.lost_before_coop
        )
        assert improved >= 2  # at least two of three cars recovered data

    def test_summary_vectors_sent(self):
        ctx = build_baseline_round(CFG, 0, "epidemic")
        ctx.run()
        summaries = sum(car.summaries_sent for car in ctx.cars.values())
        assert summaries > 0

    def test_epidemic_nodes_buffer_all_flows(self):
        ctx = build_baseline_round(CFG, 0, "epidemic")
        ctx.run()
        car1 = ctx.cars[NodeId(1)]
        assert len(car1.buffer.flows()) >= 2

    def test_no_violations(self):
        ctx = build_baseline_round(CFG, 0, "epidemic")
        ctx.run()
        for matrix in collect_baseline_matrices(ctx).values():
            assert matrix.optimality_violations() == frozenset()


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            build_baseline_round(CFG, 0, "teleportation")
