"""Scenario configuration and round wiring."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenario import (
    AP_NODE_ID,
    PlatoonConfig,
    RadioEnvironment,
    UrbanScenarioConfig,
    build_urban_round,
)
from repro.mac.frames import NodeId


class TestConfigs:
    def test_defaults_valid(self):
        cfg = UrbanScenarioConfig()
        assert cfg.rounds == 30
        assert cfg.platoon.n_cars == 3
        assert cfg.car_ids() == [NodeId(1), NodeId(2), NodeId(3)]

    def test_round_validation(self):
        with pytest.raises(ConfigurationError):
            UrbanScenarioConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            UrbanScenarioConfig(round_duration_s=0.0)

    def test_platoon_validation(self):
        with pytest.raises(ConfigurationError):
            PlatoonConfig(n_cars=0)
        with pytest.raises(ConfigurationError):
            PlatoonConfig(driver_styles=("reckless",))

    def test_driver_profiles_cycle_styles(self):
        platoon = PlatoonConfig(n_cars=5)
        profiles = platoon.driver_profiles()
        assert len(profiles) == 5

    def test_followers_get_catch_up_speed(self):
        profiles = PlatoonConfig().driver_profiles()
        assert profiles[0].speed_factor == 1.0
        assert profiles[1].speed_factor == pytest.approx(1.2)

    def test_radio_configs(self):
        env = RadioEnvironment()
        assert env.ap_radio().tx_power_dbm == env.ap_tx_power_dbm
        assert env.car_radio().tx_power_dbm == env.car_tx_power_dbm
        assert env.ap_radio().rate.name == "dsss-1"


class TestRoundWiring:
    def test_structure(self):
        cfg = UrbanScenarioConfig()
        ctx = build_urban_round(cfg, 0)
        assert ctx.ap.node_id == AP_NODE_ID
        assert set(ctx.cars) == {NodeId(1), NodeId(2), NodeId(3)}
        assert len(ctx.ap.flows) == 3

    def test_cars_start_in_platoon_order(self):
        ctx = build_urban_round(UrbanScenarioConfig(), 0)
        track = ctx.testbed.track
        positions = {
            car_id: car.mobility.arc_length(0.0)
            for car_id, car in ctx.cars.items()
        }
        assert positions[NodeId(1)] > positions[NodeId(2)] > positions[NodeId(3)]

    def test_same_round_reproducible(self):
        cfg = UrbanScenarioConfig()
        results = []
        for _ in range(2):
            ctx = build_urban_round(cfg, 0)
            ctx.run()
            results.append(
                sorted(ctx.capture.delivered_seqs(NodeId(1), NodeId(1)))
            )
        assert results[0] == results[1]

    def test_different_rounds_differ(self):
        cfg = UrbanScenarioConfig()
        outcomes = []
        for round_index in (0, 1):
            ctx = build_urban_round(cfg, round_index)
            ctx.run()
            outcomes.append(
                sorted(ctx.capture.delivered_seqs(NodeId(1), NodeId(1)))
            )
        assert outcomes[0] != outcomes[1]
