"""Highway drive-thru and multi-AP download experiments."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.highway import HighwayConfig, run_highway_experiment
from repro.experiments.multi_ap import (
    MultiApConfig,
    run_multi_ap_round,
)
from repro.mac.frames import NodeId


class TestHighwayConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HighwayConfig(speed_ms=0.0)
        with pytest.raises(ConfigurationError):
            HighwayConfig(n_cars=0)
        with pytest.raises(ConfigurationError):
            HighwayConfig(gap_m=0.0)

    def test_duration_scales_with_speed(self):
        slow = HighwayConfig(speed_ms=10.0)
        fast = HighwayConfig(speed_ms=40.0)
        assert slow.round_duration_s > fast.round_duration_s


class TestHighwayRuns:
    @pytest.fixture(scope="class")
    def matrices(self):
        cfg = HighwayConfig(speed_ms=25.0, rounds=3, seed=5)
        return run_highway_experiment(cfg)

    def test_every_round_produces_matrices(self, matrices):
        assert len(matrices) == 3
        for round_matrices in matrices:
            assert len(round_matrices) >= 2

    def test_losses_nonzero_at_speed(self, matrices):
        fractions = [
            m.lost_before_coop / m.tx_by_ap
            for round_matrices in matrices
            for m in round_matrices.values()
        ]
        assert max(fractions) > 0.05

    def test_cooperation_helps_on_highway_too(self, matrices):
        before = sum(
            m.lost_before_coop
            for rm in matrices
            for m in rm.values()
        )
        after = sum(
            m.lost_after_coop
            for rm in matrices
            for m in rm.values()
        )
        assert after < before


class TestMultiAp:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MultiApConfig(road_length_m=100.0, ap_spacing_m=500.0)
        with pytest.raises(ConfigurationError):
            MultiApConfig(file_blocks=0)

    def test_ap_positions_spacing(self):
        cfg = MultiApConfig(road_length_m=4000.0, ap_spacing_m=1000.0)
        positions = cfg.ap_positions()
        assert len(positions) == 4
        assert positions[0].x == pytest.approx(500.0)
        assert positions[1].x - positions[0].x == pytest.approx(1000.0)

    @pytest.fixture(scope="class")
    def outcomes(self):
        cfg = MultiApConfig(
            road_length_m=4000.0,
            ap_spacing_m=800.0,
            file_blocks=60,
            speed_ms=15.0,
            rounds=1,
            seed=13,
        )
        return run_multi_ap_round(cfg, 0)

    def test_one_outcome_per_car(self, outcomes):
        assert {o.car for o in outcomes} == {NodeId(1), NodeId(2), NodeId(3)}

    def test_cooperation_never_hurts(self, outcomes):
        """Paired comparison: coop completion is never later than direct."""
        for outcome in outcomes:
            assert outcome.aps_visited_coop <= outcome.aps_visited_direct

    def test_completion_times_ordered(self, outcomes):
        for outcome in outcomes:
            if (
                outcome.completion_time_coop is not None
                and outcome.completion_time_direct is not None
            ):
                assert outcome.completion_time_coop <= outcome.completion_time_direct

    def test_somebody_completes(self, outcomes):
        assert any(math.isfinite(o.aps_visited_coop) for o in outcomes)
