"""Shared-medium behaviour: delivery, interference, half-duplex, sensing."""

import numpy as np
import pytest

from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.interface import NetworkInterface
from repro.mac.medium import LossCause, Medium
from repro.mac.timing import frame_airtime
from repro.radio.channel import Channel
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

RATE = rate_by_name("dsss-1")


def make_net(positions, *, trace=None, seed=0):
    """A sim + medium + one interface per given position."""
    sim = Simulator(seed=seed)
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(sim, channel, trace=trace)
    ifaces = []
    for index, position in enumerate(positions):
        ifaces.append(
            NetworkInterface(
                sim,
                medium,
                NodeId(index + 1),
                (lambda p: (lambda: p))(position),
                RadioConfig(),
                sim.streams.get(f"mac-{index}"),
                name=f"if{index + 1}",
            )
        )
    return sim, medium, ifaces


def data_frame(src, dst, seq=1, size=500):
    return DataFrame(src=src, dst=dst, size_bytes=size, flow_dst=dst, seq=seq)


class TestDelivery:
    def test_nearby_frame_delivered(self):
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        received = []
        b.add_receive_callback(lambda frame, info: received.append((frame, info)))
        a.send(data_frame(a.node_id, b.node_id))
        sim.run()
        assert len(received) == 1
        frame, info = received[0]
        assert frame.seq == 1
        assert info.snr_db > 20.0

    def test_promiscuous_reception(self):
        """Frames addressed to others are still delivered (monitor mode)."""
        sim, _, (a, b, c) = make_net([Vec2(0, 0), Vec2(20, 0), Vec2(40, 0)])
        at_c = []
        c.add_receive_callback(lambda frame, info: at_c.append(frame))
        a.send(data_frame(a.node_id, b.node_id))
        sim.run()
        assert len(at_c) == 1

    def test_far_node_hears_nothing(self):
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(50_000, 0)])
        received = []
        b.add_receive_callback(lambda frame, info: received.append(frame))
        a.send(data_frame(a.node_id, b.node_id))
        sim.run()
        assert received == []

    def test_delivery_happens_after_airtime(self):
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        times = []
        b.add_receive_callback(lambda frame, info: times.append(sim.now))
        a.send(data_frame(a.node_id, b.node_id, size=1062))
        sim.run()
        assert len(times) == 1
        assert times[0] >= frame_airtime(1062, RATE)

    def test_counters(self):
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        a.send(data_frame(a.node_id, b.node_id, size=500))
        sim.run()
        assert a.frames_sent == 1
        assert a.bytes_sent == 500
        assert b.frames_received == 1


class TestInterference:
    def test_simultaneous_transmissions_collide(self):
        sim, medium, (a, b, c) = make_net([Vec2(0, 0), Vec2(20, 0), Vec2(40, 0)])
        received = []
        b.add_receive_callback(lambda frame, info: received.append(frame))
        # Bypass CSMA: both frames hit the air at the same instant.
        sim.schedule(0.0, medium.transmit, a, data_frame(a.node_id, b.node_id, 1), RATE)
        sim.schedule(0.0, medium.transmit, c, data_frame(c.node_id, b.node_id, 2), RATE)
        sim.run()
        assert received == []

    def test_collision_recorded_as_interference(self):
        trace = TraceCollector()
        sim, medium, (a, b, c) = make_net(
            [Vec2(0, 0), Vec2(20, 0), Vec2(40, 0)], trace=trace
        )
        sim.schedule(0.0, medium.transmit, a, data_frame(a.node_id, b.node_id, 1), RATE)
        sim.schedule(0.0, medium.transmit, c, data_frame(c.node_id, b.node_id, 2), RATE)
        sim.run()
        causes = {record.cause for record in trace.rx_records if record.node == b.node_id}
        assert causes == {LossCause.INTERFERENCE}

    def test_csma_avoids_the_collision(self):
        """The same two senders using the MAC queue do NOT collide."""
        sim, _, (a, b, c) = make_net([Vec2(0, 0), Vec2(20, 0), Vec2(40, 0)])
        received = []
        b.add_receive_callback(lambda frame, info: received.append(frame))
        a.send(data_frame(a.node_id, b.node_id, 1))
        c.send(data_frame(c.node_id, b.node_id, 2))
        sim.run()
        assert len(received) == 2


class TestHalfDuplex:
    def test_receiver_transmitting_loses_arrival(self):
        trace = TraceCollector()
        sim, medium, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)], trace=trace)
        received = []
        b.add_receive_callback(lambda frame, info: received.append(frame))
        # B starts a long transmission; A's frame arrives mid-burst.
        b.send(data_frame(b.node_id, a.node_id, 9, size=2000))
        sim.schedule(
            0.005, medium.transmit, a, data_frame(a.node_id, b.node_id, 1), RATE
        )
        sim.run()
        assert received == []
        b_losses = [
            record.cause
            for record in trace.rx_records
            if record.node == b.node_id and record.frame.seq == 1
        ]
        assert b_losses == [LossCause.HALF_DUPLEX]


class TestCarrierSense:
    def test_medium_busy_during_transmission(self):
        sim, medium, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        samples = []
        a.send(data_frame(a.node_id, b.node_id, size=2000))
        sim.schedule(0.008, lambda: samples.append(medium.busy(b)))
        sim.run()
        assert samples == [True]

    def test_medium_idle_when_quiet(self):
        _, medium, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        assert not medium.busy(a)
        assert not medium.busy(b)

    def test_own_transmission_is_busy(self):
        sim, medium, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        samples = []
        a.send(data_frame(a.node_id, b.node_id, size=2000))
        sim.schedule(0.008, lambda: samples.append(medium.busy(a)))
        sim.run()
        assert samples == [True]


class TestQueue:
    def test_fifo_order(self):
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        received = []
        b.add_receive_callback(lambda frame, info: received.append(frame.seq))
        for seq in range(1, 6):
            a.send(data_frame(a.node_id, b.node_id, seq))
        sim.run()
        assert received == [1, 2, 3, 4, 5]

    def test_flush_drops_pending(self):
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        for seq in range(1, 6):
            a.send(data_frame(a.node_id, b.node_id, seq))
        dropped = a.flush()
        assert dropped == 5 or dropped == 4  # first may already be contending
        sim.run()
        assert a.frames_sent <= 1

    def test_src_mismatch_rejected(self):
        from repro.errors import MacError

        _, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        with pytest.raises(MacError):
            a.send(data_frame(b.node_id, a.node_id))

    def test_double_attach_rejected(self):
        from repro.errors import MacError

        sim, medium, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)])
        with pytest.raises(MacError):
            medium.attach(a)


class TestTraceHooks:
    def test_tx_and_rx_recorded(self):
        trace = TraceCollector()
        sim, _, (a, b) = make_net([Vec2(0, 0), Vec2(20, 0)], trace=trace)
        a.send(data_frame(a.node_id, b.node_id, 7))
        sim.run()
        assert len(trace.tx_records) == 1
        assert trace.tx_records[0].node == a.node_id
        delivered = [r for r in trace.rx_records if r.delivered]
        assert [r.frame.seq for r in delivered] == [7]


class TestCarrierSenseAggregation:
    """Concurrent arrivals add up in the energy detector (dbm_sum)."""

    def test_two_subthreshold_arrivals_sense_busy_together(self):
        # With exponent 3 / 40 dB reference loss / 15 dBm EIRP, the mean
        # power at 251 m is ≈ -97.2 dBm: individually below the -96 dBm
        # carrier-sense threshold, but two of them sum to ≈ -94.2 dBm.
        sim, medium, (listener, left, right) = make_net(
            [Vec2(0, 0), Vec2(-251, 0), Vec2(251, 0)]
        )
        samples = []
        sim.schedule(
            0.0, medium.transmit, left, data_frame(left.node_id, listener.node_id, 1), RATE
        )
        sim.schedule(0.001, lambda: samples.append(medium.busy(listener)))
        sim.schedule(
            0.002, medium.transmit, right, data_frame(right.node_id, listener.node_id, 2), RATE
        )
        sim.schedule(0.003, lambda: samples.append(medium.busy(listener)))
        sim.run()
        assert samples == [False, True]


class TestReceptionFastPath:
    """The culling fast path must match the exhaustive path bit for bit."""

    def run_grid(self, *, fast_path):
        """A 30-node line network: one broadcast from the west end."""
        sim = Simulator(seed=7)
        channel = Channel(
            pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
            rng=sim.streams.get("channel"),
        )
        trace = TraceCollector()
        medium = Medium(sim, channel, trace=trace, fast_path=fast_path)
        ifaces = []
        for index in range(30):
            position = Vec2(60.0 * index, 0.0)
            ifaces.append(
                NetworkInterface(
                    sim,
                    medium,
                    NodeId(index + 1),
                    (lambda p: (lambda: p))(position),
                    RadioConfig(),
                    sim.streams.get(f"mac-{index}"),
                    name=f"if{index + 1}",
                )
            )
        ifaces[0].send(data_frame(ifaces[0].node_id, ifaces[-1].node_id))
        sim.run()
        return [(r.node, r.cause, r.snr_db, r.rx_power_dbm) for r in trace.rx_records]

    def test_fast_and_exhaustive_records_identical(self):
        assert self.run_grid(fast_path=True) == self.run_grid(fast_path=False)

    def test_fast_path_culls_far_receivers(self):
        records = self.run_grid(fast_path=True)
        assert records  # near receivers hear the frame...
        heard = {node for node, *_ in records}
        assert NodeId(30) not in heard  # ...the far end of the line does not

    def test_far_node_culled_without_perturbing_near_links(self):
        """Removing a distant interface must not change near outcomes."""

        def run(with_far_node):
            sim = Simulator(seed=3)
            channel = Channel(
                pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            trace = TraceCollector()
            medium = Medium(sim, channel, trace=trace)
            positions = [Vec2(0, 0), Vec2(30, 0)]
            if with_far_node:
                positions.append(Vec2(80_000, 0))
            ifaces = []
            for index, position in enumerate(positions):
                ifaces.append(
                    NetworkInterface(
                        sim,
                        medium,
                        NodeId(index + 1),
                        (lambda p: (lambda: p))(position),
                        RadioConfig(),
                        sim.streams.get(f"mac-{index}"),
                        name=f"if{index + 1}",
                    )
                )
            ifaces[0].send(data_frame(ifaces[0].node_id, ifaces[1].node_id))
            sim.run()
            return [(r.node, r.snr_db, r.rx_power_dbm) for r in trace.rx_records]

        assert run(True) == run(False)


class TestBatchKernel:
    """The vectorized batch reception path vs the scalar reference."""

    def _storm_records(self, *, fast_path, batch, n_nodes=30, broadcasts=120):
        from repro.mac.frames import NodeId
        from repro.radio.fading import RicianFading
        from repro.radio.shadowing import (
            CompositeShadowing,
            GudmundsonShadowing,
            TemporalTxShadowing,
        )

        sim = Simulator(seed=42)
        channel = Channel(
            pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
            shadowing=CompositeShadowing(
                [
                    GudmundsonShadowing(
                        sim.streams.get("shadowing"),
                        sigma_db=4.0,
                        decorrelation_distance_m=20.0,
                    ),
                    TemporalTxShadowing(
                        sim.streams.get("shadowing-common"),
                        sigma_db=3.0,
                        tau_s=2.0,
                        hub=NodeId(1),
                    ),
                ]
            ),
            fading=RicianFading(sim.streams.get("fading"), k_factor=4.0),
            rng=sim.streams.get("channel"),
        )
        trace = TraceCollector()
        medium = Medium(sim, channel, trace=trace, fast_path=fast_path, batch=batch)
        rate = rate_by_name("dsss-11")
        ifaces = []
        for i in range(n_nodes):
            pos = Vec2(55.0 * i, (i % 3) * 7.0)
            ifaces.append(
                NetworkInterface(
                    sim,
                    medium,
                    NodeId(i + 1),
                    (lambda p: (lambda: p))(pos),
                    RadioConfig(),
                    sim.streams.get(f"mac-{i}"),
                    name=f"if{i + 1}",
                )
            )
        for k in range(broadcasts):
            tx = ifaces[k % n_nodes]
            frame = data_frame(tx.node_id, ifaces[(k + 1) % n_nodes].node_id, seq=k)
            sim.schedule(k * 1.7e-3, medium.transmit, tx, frame, rate)
        sim.run()
        return [
            (r.time, int(r.node), r.frame.seq, r.cause, r.snr_db, r.rx_power_dbm)
            for r in trace.rx_records
        ]

    def test_batch_bit_identical_to_scalar_fast_and_exhaustive(self):
        batch = self._storm_records(fast_path=True, batch=True)
        scalar_fast = self._storm_records(fast_path=True, batch=False)
        exhaustive = self._storm_records(fast_path=False, batch=False)
        batch_exhaustive = self._storm_records(fast_path=False, batch=True)
        assert batch  # the topology must actually produce receptions
        assert batch == scalar_fast == exhaustive == batch_exhaustive

    def test_batch_knob_exposed(self):
        _, medium, _ = make_net([Vec2(0, 0), Vec2(10, 0)])
        assert medium.batch is True
        sim = Simulator()
        channel = Channel(rng=sim.streams.get("channel"))
        assert Medium(sim, channel, batch=False).batch is False

    def test_small_candidate_sets_use_scalar_loop(self):
        # Below batch_min_candidates the scalar loop runs — delivery
        # still works end to end.
        trace = TraceCollector()
        sim, medium, ifaces = make_net([Vec2(0, 0), Vec2(30, 0)], trace=trace)
        ifaces[0].send(data_frame(ifaces[0].node_id, ifaces[1].node_id))
        sim.run()
        assert any(r.cause is LossCause.DELIVERED for r in trace.rx_records)

    def test_batch_frame_end_actually_delivers_to_interfaces(self):
        """Regression: dense frame-ends must reach ``iface.deliver``.

        The batch frame-end path (``len(finishing) ≥
        batch_min_candidates``) classifies via trace-visible records,
        so a bug that drops the *delivery dispatch* while still writing
        trace rows is invisible to the record-comparison pins above.
        Pin ``frames_received`` — the interface-side evidence — equal
        between the batch and scalar arms on a dense topology.
        """

        def received_counts(*, batch):
            trace = TraceCollector()
            sim, medium, ifaces = make_net(
                [Vec2(12.0 * i, 0.0) for i in range(12)], trace=trace
            )
            medium._batch = batch
            rate = rate_by_name("dsss-11")
            for k in range(10):
                tx = ifaces[k % 3]
                frame = data_frame(tx.node_id, ifaces[-1].node_id, seq=k)
                sim.schedule(k * 2e-3, medium.transmit, tx, frame, rate)
            sim.run()
            delivered_rows = sum(
                1 for r in trace.rx_records if r.cause is LossCause.DELIVERED
            )
            return [i.frames_received for i in ifaces], delivered_rows

        batch_counts, batch_rows = received_counts(batch=True)
        scalar_counts, scalar_rows = received_counts(batch=False)
        assert batch_rows == scalar_rows > 0
        assert batch_counts == scalar_counts
        # The interface counters must agree with the trace's verdicts.
        assert sum(batch_counts) == batch_rows

    def test_batched_mobility_groups_match_per_candidate_queries(self):
        # Interfaces built with a shared-track PathMobility go through
        # the grouped position query; result must equal the plain
        # position_fn world bit for bit.
        from repro.geom import Polyline
        from repro.mobility.path import PathMobility

        def records(with_mobility):
            sim = Simulator(seed=3)
            channel = Channel(
                pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            trace = TraceCollector()
            medium = Medium(sim, channel, trace=trace, batch_min_candidates=2)
            track = Polyline([Vec2(0, 0), Vec2(8000, 0)])
            rate = rate_by_name("dsss-11")
            ifaces = []
            for i in range(12):
                mobility = PathMobility(
                    track, 10.0 + i, start_arc_length=60.0 * i
                )
                ifaces.append(
                    NetworkInterface(
                        sim,
                        medium,
                        NodeId(i + 1),
                        (lambda m: (lambda: m.position(sim.now)))(mobility),
                        RadioConfig(),
                        sim.streams.get(f"mac-{i}"),
                        name=f"if{i + 1}",
                        mobility=mobility if with_mobility else None,
                    )
                )
            for k in range(40):
                tx = ifaces[k % 12]
                frame = data_frame(tx.node_id, ifaces[(k + 1) % 12].node_id, seq=k)
                sim.schedule(k * 2.3e-3, medium.transmit, tx, frame, rate)
            sim.run()
            return [
                (r.time, int(r.node), r.frame.seq, r.cause, r.snr_db, r.rx_power_dbm)
                for r in trace.rx_records
            ]

        grouped = records(True)
        scalar = records(False)
        assert grouped
        assert grouped == scalar

    def test_cross_broadcast_storm_matches_one_at_a_time(self):
        """The coalescer A/B on a dense storm with clustered instants."""
        # Bursts of same-instant transmissions (three per slot) exercise
        # multi-broadcast drains; the CSMA traffic on top exercises the
        # busy()-triggered early flush.
        def records(cross):
            sim = Simulator(seed=42)
            channel = Channel(
                pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            trace = TraceCollector()
            medium = Medium(
                sim, channel, trace=trace, cross_broadcast_batch=cross
            )
            ifaces = []
            for i in range(18):
                pos = Vec2(45.0 * i, (i % 2) * 9.0)
                ifaces.append(
                    NetworkInterface(
                        sim, medium, NodeId(i + 1),
                        (lambda p: (lambda: p))(pos), RadioConfig(),
                        sim.streams.get(f"mac-{i}"), name=f"if{i + 1}",
                    )
                )
            rate = rate_by_name("dsss-11")
            for k in range(60):
                tx = ifaces[k % 18]
                frame = data_frame(tx.node_id, ifaces[(k + 5) % 18].node_id, seq=k)
                sim.schedule((k // 3) * 2.1e-3, medium.transmit, tx, frame, rate)
            ifaces[2].send(data_frame(ifaces[2].node_id, ifaces[3].node_id, seq=900))
            ifaces[7].send(data_frame(ifaces[7].node_id, ifaces[8].node_id, seq=901))
            sim.run()
            rows = [
                (r.time, int(r.node), r.frame.seq, r.cause, r.snr_db, r.rx_power_dbm)
                for r in trace.rx_records
            ]
            return rows, [i.frames_received for i in ifaces]

        coalesced_rows, coalesced_counts = records(True)
        legacy_rows, legacy_counts = records(False)
        assert coalesced_rows
        assert coalesced_rows == legacy_rows
        assert coalesced_counts == legacy_counts

    def test_coalesced_frame_ends_preserve_delivery_order(self):
        """Same-end-time broadcasts: one coalesced frame-end event must
        deliver in exactly the scalar order (groups in registration
        order, receivers in arrival order within), with per-interface
        ``frames_received`` intact — the PR 7 ``_finish_batch``
        accumulator bug class, now one level up.
        """

        def delivery_log(cross):
            sim = Simulator(seed=5)
            channel = Channel(
                pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            medium = Medium(sim, channel, cross_broadcast_batch=cross)
            ifaces = []
            for i in range(9):
                pos = Vec2(30.0 * i, 0.0)
                ifaces.append(
                    NetworkInterface(
                        sim, medium, NodeId(i + 1),
                        (lambda p: (lambda: p))(pos), RadioConfig(),
                        sim.streams.get(f"mac-{i}"), name=f"if{i + 1}",
                    )
                )
            log = []
            for iface in ifaces:
                iface.add_receive_callback(
                    (lambda me: lambda frame, info: log.append(
                        (sim.now, int(me.node_id), frame.seq)
                    ))(iface)
                )
            # Three same-instant transmissions with equal airtimes: all
            # three frame-ends land on one coalesced URGENT event (the
            # multi-group vectorized path).  A fourth, larger frame ends
            # later and must not be swept into the group.
            for k, tx in enumerate(ifaces[:3]):
                frame = data_frame(tx.node_id, ifaces[4].node_id, seq=k, size=400)
                sim.schedule(0.0, medium.transmit, tx, frame, RATE)
            big = data_frame(ifaces[5].node_id, ifaces[4].node_id, seq=9, size=800)
            sim.schedule(0.0, medium.transmit, ifaces[5], big, RATE)
            sim.run()
            return log, [i.frames_received for i in ifaces]

        coalesced_log, coalesced_counts = delivery_log(True)
        legacy_log, legacy_counts = delivery_log(False)
        assert coalesced_log  # the topology must actually deliver
        assert coalesced_log == legacy_log
        assert coalesced_counts == legacy_counts

    def test_mixed_rate_frame_ends_bucket_without_reordering(self):
        """Coalesced frame-ends across *different* FER curves: the
        per-(rate, size) bucketing must not disturb the sequential
        Bernoulli draw order."""

        def rows(cross):
            trace = TraceCollector()
            sim = Simulator(seed=13)
            channel = Channel(
                pathloss=LogDistancePathLoss(exponent=3.3, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            medium = Medium(
                sim, channel, trace=trace, cross_broadcast_batch=cross
            )
            ifaces = []
            for i in range(8):
                pos = Vec2(140.0 * i, 0.0)
                ifaces.append(
                    NetworkInterface(
                        sim, medium, NodeId(i + 1),
                        (lambda p: (lambda: p))(pos), RadioConfig(),
                        sim.streams.get(f"mac-{i}"), name=f"if{i + 1}",
                    )
                )
            # dsss-1 at 400 B and dsss-11 at 4400 B share one airtime
            # tail closely enough that equal-end groups appear across
            # rates once the start instants line up (4400·8/11 = 3200
            # symbols vs 400·8 = 3200 symbols at 1 Mb/s).
            fast_rate = rate_by_name("dsss-11")
            for k in range(12):
                tx = ifaces[k % 4]
                size = 400 if k % 2 else 4400
                rate = RATE if k % 2 else fast_rate
                frame = data_frame(
                    tx.node_id, ifaces[(k + 1) % 8].node_id, seq=k, size=size
                )
                sim.schedule((k // 4) * 3e-3, medium.transmit, tx, frame, rate)
            sim.run()
            return [
                (r.time, int(r.node), r.frame.seq, r.cause, r.snr_db)
                for r in trace.rx_records
            ]

        coalesced = rows(True)
        legacy = rows(False)
        assert coalesced
        assert coalesced == legacy

    def test_transmission_killed_mid_slot_matches_scalar(self):
        """A receiver that starts transmitting in the same instant as an
        incoming broadcast (direct transmit, CSMA bypassed) must lose
        the arrival to half-duplex exactly as the one-at-a-time arm: the
        new transmitter's flush admits the pending arrival first, then
        the kill loop cancels it mid-flight."""

        def causes(cross):
            trace = TraceCollector()
            sim = Simulator(seed=2)
            channel = Channel(
                pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            medium = Medium(
                sim, channel, trace=trace, cross_broadcast_batch=cross
            )
            ifaces = []
            for i in range(3):
                pos = Vec2(25.0 * i, 0.0)
                ifaces.append(
                    NetworkInterface(
                        sim, medium, NodeId(i + 1),
                        (lambda p: (lambda: p))(pos), RadioConfig(),
                        sim.streams.get(f"mac-{i}"), name=f"if{i + 1}",
                    )
                )
            a, b, c = ifaces
            sim.schedule(
                0.0, medium.transmit, a, data_frame(a.node_id, b.node_id, 1), RATE
            )
            sim.schedule(
                0.0, medium.transmit, b, data_frame(b.node_id, c.node_id, 2), RATE
            )
            sim.run()
            return [
                (r.time, int(r.node), r.frame.seq, r.cause)
                for r in trace.rx_records
            ]

        coalesced = causes(True)
        legacy = causes(False)
        assert coalesced == legacy
        assert any(
            cause is LossCause.HALF_DUPLEX
            for _, node, seq, cause in coalesced
            if node == 2 and seq == 1
        )

    def test_busy_flush_only_drains_candidate_lanes(self):
        """Carrier sense by a non-candidate keeps the queue coalescing;
        sensing by a candidate flushes and reads the admitted energy.

        Needs enough interfaces for the spatial grid to actually cull
        (below ``neighbor_index_min_nodes`` every interface is a
        candidate and any sense would flush).
        """
        positions = [Vec2(15.0 * i, 0.0) for i in range(16)]
        positions.append(Vec2(70_000, 0))
        sim, medium, ifaces = make_net(positions)
        a, b, far = ifaces[0], ifaces[1], ifaces[-1]
        states = []

        def probe():
            sim.schedule(
                0.0, medium.transmit, a, data_frame(a.node_id, b.node_id, 1), RATE
            )
            # Same instant, after the queue formed: the far node is no
            # candidate of a's broadcast, so its carrier sense must not
            # force the drain...
            sim.schedule(0.0, lambda: states.append(
                (medium.busy(far), len(medium._pending))
            ))
            # ...while the in-range receiver's sense must.
            sim.schedule(0.0, lambda: states.append(
                (medium.busy(b), len(medium._pending))
            ))

        sim.schedule(0.0, probe)
        sim.run()
        assert states[0] == (False, 1)  # still queued after far's sense
        assert states[1] == (True, 0)   # drained by b's sense

    def test_cross_broadcast_knob_exposed(self):
        _, medium, _ = make_net([Vec2(0, 0), Vec2(10, 0)])
        assert medium.cross_broadcast_batch is True
        sim = Simulator()
        channel = Channel(rng=sim.streams.get("channel"))
        off = Medium(sim, channel, cross_broadcast_batch=False)
        assert off.cross_broadcast_batch is False

    def test_scripted_channel_subclass_survives_batch_path(self):
        # A Channel subclass that scripts sample() must keep its
        # behaviour even when the candidate set is batch-sized: the
        # batch entry points fall back to the scalar overrides.
        from repro.radio.channel import LinkSample

        class ScriptedChannel(Channel):
            def sample(self, tx_id, rx_id, tx_pos, rx_pos, tx_power_dbm,
                       rx_gain_db=0.0, time=0.0, *, tx_seq=None, budget=None):
                return LinkSample(-60.0, -60.0, 10.0)

        def records(batch):
            sim = Simulator(seed=9)
            channel = ScriptedChannel(
                pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
                rng=sim.streams.get("channel"),
            )
            trace = TraceCollector()
            medium = Medium(sim, channel, trace=trace, batch=batch)
            ifaces = []
            for i in range(16):
                pos = Vec2(40.0 * i, 0.0)
                ifaces.append(
                    NetworkInterface(
                        sim, medium, NodeId(i + 1),
                        (lambda p: (lambda: p))(pos), RadioConfig(),
                        sim.streams.get(f"mac-{i}"), name=f"if{i + 1}",
                    )
                )
            for k in range(20):
                tx = ifaces[k % 16]
                frame = data_frame(tx.node_id, ifaces[(k + 1) % 16].node_id, seq=k)
                sim.schedule(k * 2e-3, medium.transmit, tx, frame, rate_by_name("dsss-11"))
            sim.run()
            return [
                (r.time, int(r.node), r.frame.seq, r.cause, r.rx_power_dbm)
                for r in trace.rx_records
            ]

        batched = records(True)
        scalar = records(False)
        assert batched
        # Scripted power must be visible on every record in both modes.
        assert all(r[-1] == -60.0 for r in batched)
        assert batched == scalar
