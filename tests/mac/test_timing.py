"""802.11 timing constants and airtime."""

import pytest

from repro.errors import MacError
from repro.mac.timing import (
    DSSS_TIMING,
    OFDM_TIMING,
    frame_airtime,
    timing_for,
)
from repro.radio.modulation import rate_by_name


class TestTimingSets:
    def test_dsss_difs(self):
        # DIFS = SIFS + 2 slots = 10 + 40 = 50 µs.
        assert DSSS_TIMING.difs_s == pytest.approx(50e-6)

    def test_ofdm_difs(self):
        assert OFDM_TIMING.difs_s == pytest.approx(34e-6)

    def test_timing_for_selects_family(self):
        assert timing_for(rate_by_name("dsss-1")) is DSSS_TIMING
        assert timing_for(rate_by_name("ofdm-24")) is OFDM_TIMING


class TestAirtime:
    def test_thousand_byte_frame_at_1mbps(self):
        # 192 µs preamble + 8.496 ms payload.
        airtime = frame_airtime(1062, rate_by_name("dsss-1"))
        assert airtime == pytest.approx(192e-6 + 1062 * 8 / 1e6)

    def test_higher_rate_shorter_airtime(self):
        slow = frame_airtime(1062, rate_by_name("dsss-1"))
        fast = frame_airtime(1062, rate_by_name("dsss-11"))
        assert fast < slow / 5

    def test_preamble_dominates_tiny_frames(self):
        airtime = frame_airtime(10, rate_by_name("dsss-1"))
        assert airtime == pytest.approx(192e-6 + 80e-6)

    def test_invalid_size(self):
        with pytest.raises(MacError):
            frame_airtime(0, rate_by_name("dsss-1"))
