"""Frame taxonomy: sizes and invariants."""

import pytest

from repro.mac.frames import (
    BROADCAST,
    CoopDataFrame,
    DataFrame,
    HelloFrame,
    NackFrame,
    NodeId,
    RequestFrame,
    SummaryFrame,
    MAC_OVERHEAD_BYTES,
)


class TestBase:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            DataFrame(src=NodeId(1), dst=NodeId(2), size_bytes=0)

    def test_frames_are_immutable(self):
        frame = DataFrame(src=NodeId(1), dst=NodeId(2), size_bytes=100, seq=5)
        with pytest.raises(Exception):
            frame.seq = 6  # type: ignore[misc]

    def test_broadcast_constant(self):
        assert BROADCAST == -1


class TestSizes:
    def test_data_frame_size_includes_headers(self):
        # 1000 B ICMP payload + 28 B IP/ICMP + 34 B MAC = 1062 B.
        assert DataFrame.size_for_payload(1000) == 1062

    def test_hello_size_scales_with_contents(self):
        empty = HelloFrame.size_for(0, 0)
        assert empty == MAC_OVERHEAD_BYTES + 8
        assert HelloFrame.size_for(3, 0) == empty + 18
        assert HelloFrame.size_for(0, 2) == empty + 20

    def test_request_size_scales_with_seqs(self):
        assert RequestFrame.size_for(1) == MAC_OVERHEAD_BYTES + 8 + 4
        assert RequestFrame.size_for(10) == MAC_OVERHEAD_BYTES + 8 + 40

    def test_nack_size(self):
        assert NackFrame.size_for(5) == MAC_OVERHEAD_BYTES + 8 + 20

    def test_summary_size(self):
        assert SummaryFrame.size_for(100) == MAC_OVERHEAD_BYTES + 8 + 600


class TestSemantics:
    def test_data_flow_dst_independent_of_hop(self):
        relayed = CoopDataFrame(
            src=NodeId(3),
            dst=NodeId(1),
            size_bytes=1062,
            flow_dst=NodeId(1),
            seq=42,
            relayer=NodeId(3),
        )
        assert relayed.flow_dst == NodeId(1)
        assert relayed.relayer == NodeId(3)

    def test_hello_carries_ordered_cooperators(self):
        hello = HelloFrame(
            src=NodeId(1),
            dst=BROADCAST,
            size_bytes=HelloFrame.size_for(2, 0),
            cooperators=(NodeId(2), NodeId(3)),
        )
        assert hello.cooperators.index(NodeId(3)) == 1

    def test_request_carries_seq_tuple(self):
        request = RequestFrame(
            src=NodeId(1),
            dst=BROADCAST,
            size_bytes=RequestFrame.size_for(3),
            seqs=(4, 7, 9),
        )
        assert request.seqs == (4, 7, 9)
