"""TraceSet / VehicleTrace: validation, transformations, mobility bridge."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.geom import Vec2
from repro.mobility.base import TraceMobility
from repro.mobility.static import StaticMobility
from repro.mobility.traceio import TraceSet, VehicleTrace, synth_traces, unit_scale


def vehicle(vid="v", samples=((0.0, 0.0, 0.0), (1.0, 10.0, 0.0))):
    return VehicleTrace.from_samples(vid, samples)


class TestVehicleTraceValidation:
    def test_out_of_order_samples_are_sorted(self):
        trace = vehicle(samples=[(2.0, 20.0, 0.0), (0.0, 0.0, 0.0), (1.0, 10.0, 0.0)])
        assert trace.times == (0.0, 1.0, 2.0)
        assert trace.xs == (0.0, 10.0, 20.0)

    def test_exact_duplicate_samples_merge(self):
        trace = vehicle(samples=[(0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (1.0, 5.0, 0.0)])
        assert trace.times == (0.0, 1.0)

    def test_contradictory_duplicate_timestamps_rejected(self):
        with pytest.raises(TraceFormatError, match="disagree on position"):
            vehicle(samples=[(0.0, 0.0, 0.0), (0.0, 1.0, 0.0)])

    def test_empty_and_nonfinite_rejected(self):
        with pytest.raises(TraceFormatError, match="no samples"):
            VehicleTrace.from_samples("v", [])
        with pytest.raises(TraceFormatError, match="not finite"):
            vehicle(samples=[(0.0, math.nan, 0.0)])
        with pytest.raises(TraceFormatError, match="not finite"):
            vehicle(samples=[(math.inf, 0.0, 0.0)])

    def test_single_waypoint_vehicle_is_valid(self):
        trace = vehicle(samples=[(3.0, 7.0, 8.0)])
        assert trace.duration == 0.0
        assert trace.position_at(0.0) == (7.0, 8.0)
        assert trace.position_at(99.0) == (7.0, 8.0)

    def test_direct_constructor_rejects_unsorted(self):
        with pytest.raises(TraceFormatError, match="strictly increasing"):
            VehicleTrace("v", (1.0, 0.0), (0.0, 1.0), (0.0, 0.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceFormatError, match="lengths differ"):
            VehicleTrace("v", (0.0, 1.0), (0.0,), (0.0, 0.0))


class TestUnits:
    def test_known_units(self):
        assert unit_scale("m") == 1.0
        assert unit_scale("km") == 1000.0
        assert unit_scale("ft") == pytest.approx(0.3048)

    def test_unknown_unit_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown length unit"):
            unit_scale("furlongs")

    def test_scaled_multiplies_coordinates_only(self):
        trace = vehicle().scaled(1000.0)
        assert trace.xs == (0.0, 10000.0)
        assert trace.times == (0.0, 1.0)

    def test_bad_scale_rejected(self):
        with pytest.raises(TraceFormatError):
            vehicle().scaled(0.0)
        with pytest.raises(TraceFormatError):
            vehicle().scaled(-2.0)


class TestTraceSet:
    def test_sorted_vehicle_order(self):
        ts = TraceSet([vehicle("b"), vehicle("a"), vehicle("c")])
        assert ts.vehicle_ids == ["a", "b", "c"]

    def test_duplicate_vehicle_ids_rejected(self):
        with pytest.raises(TraceFormatError, match="duplicate vehicle id"):
            TraceSet([vehicle("a"), vehicle("a")])

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError, match="at least one vehicle"):
            TraceSet([])

    def test_rebased_starts_at_zero(self):
        ts = TraceSet(
            [
                vehicle("a", [(5.0, 0.0, 0.0), (6.0, 1.0, 0.0)]),
                vehicle("b", [(7.0, 0.0, 0.0), (9.0, 1.0, 0.0)]),
            ]
        ).rebased()
        assert ts.start_time == 0.0
        assert ts["b"].times == (2.0, 4.0)

    def test_bounds_and_summary(self):
        ts = TraceSet([vehicle("a", [(0.0, -5.0, 2.0), (1.0, 5.0, -2.0)])])
        assert ts.bounds() == (-5.0, -2.0, 5.0, 2.0)
        summary = ts.summary()
        assert summary["vehicles"] == 1
        assert summary["samples"] == 2


class TestCrop:
    def make(self):
        return TraceSet(
            [
                vehicle(
                    "a",
                    [(float(t), 10.0 * t, 0.0) for t in range(11)],
                ),
                vehicle("b", [(0.0, -50.0, 0.0), (1.0, -40.0, 0.0)]),
            ]
        )

    def test_time_window(self):
        ts = self.make().cropped(t_min=2.0, t_max=5.0)
        assert ts.vehicle_ids == ["a"]  # b has no samples in the window
        assert ts["a"].times == (2.0, 3.0, 4.0, 5.0)

    def test_bbox_keeps_longest_contiguous_run(self):
        # a zig-zag: inside, outside, inside-longer
        trace = vehicle(
            "z",
            [
                (0.0, 0.0, 0.0),
                (1.0, 1.0, 0.0),
                (2.0, 100.0, 0.0),  # outside
                (3.0, 2.0, 0.0),
                (4.0, 3.0, 0.0),
                (5.0, 4.0, 0.0),
            ],
        )
        ts = TraceSet([trace]).cropped(x_max=50.0)
        assert ts["z"].times == (3.0, 4.0, 5.0)  # no teleport across the gap

    def test_crop_to_nothing_rejected(self):
        with pytest.raises(TraceFormatError, match="no vehicle survived"):
            self.make().cropped(t_min=100.0)


class TestResample:
    def test_on_grid_resample_is_identity(self):
        ts = synth_traces(vehicles=4, duration_s=30.0, tick_s=1.0, seed=3)
        assert ts.resampled(1.0) == ts

    def test_downsample_halves_samples(self):
        trace = vehicle("a", [(float(t), float(t), 0.0) for t in range(11)])
        down = trace.resampled(2.0)
        assert down.times == (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)
        assert down.xs == (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)

    def test_upsample_interpolates_linearly(self):
        trace = vehicle("a", [(0.0, 0.0, 0.0), (2.0, 10.0, 4.0)])
        up = trace.resampled(1.0)
        assert up.times == (0.0, 1.0, 2.0)
        assert up.xs[1] == pytest.approx(5.0)
        assert up.ys[1] == pytest.approx(2.0)

    def test_bad_tick_rejected(self):
        with pytest.raises(TraceFormatError, match="tick must be positive"):
            vehicle().resampled(0.0)

    def test_short_lived_vehicle_degrades_to_first_sample(self):
        trace = vehicle("a", [(0.3, 1.0, 2.0), (0.4, 2.0, 2.0)])
        down = trace.resampled(10.0, origin=0.05)
        assert len(down.times) == 1
        assert (down.xs[0], down.ys[0]) == (1.0, 2.0)

    @settings(max_examples=40, deadline=None)
    @given(
        start=st.integers(min_value=0, max_value=100),
        length=st.integers(min_value=2, max_value=25),
        tick=st.sampled_from([0.25, 0.5, 1.0]),
        data=st.data(),
    )
    def test_round_trip_on_grid(self, start, length, tick, data):
        """A trace occupying every instant of a tick grid resamples to
        itself, bit-exactly (interpolation weight 0 at exact samples)."""
        grid_times = [(start + k) * tick for k in range(length)]
        samples = [
            (
                t,
                data.draw(st.floats(-1e4, 1e4, allow_nan=False)),
                data.draw(st.floats(-1e4, 1e4, allow_nan=False)),
            )
            for t in grid_times
        ]
        trace = VehicleTrace.from_samples("h", samples)
        again = trace.resampled(tick)
        assert again == trace


class TestMobilityBridge:
    def test_moving_vehicles_share_one_scene_track(self):
        ts = synth_traces(vehicles=6, duration_s=40.0, seed=11)
        models = ts.to_mobility()
        keys = {m.batch_key() for m in models.values()}
        assert len(keys) == 1
        assert all(isinstance(m, TraceMobility) for m in models.values())

    def test_scalar_and_batch_positions_bit_identical(self):
        ts = synth_traces(vehicles=8, duration_s=50.0, seed=5)
        models = list(ts.to_mobility().values())
        for t in (0.0, 7.3, 25.0, 49.0, 120.0):
            xs, ys = TraceMobility.positions_at_time(models, t)
            for i, model in enumerate(models):
                pos = model.position(t)
                assert pos.x == xs[i] and pos.y == ys[i]
        times = np.linspace(0.0, 60.0, 37)
        for model in models:
            bx, by = model.positions_at(times)
            for j, t in enumerate(times.tolist()):
                pos = model.position(t)
                assert pos.x == bx[j] and pos.y == by[j]

    def test_positions_match_trace_interpolation(self):
        ts = synth_traces(vehicles=3, duration_s=30.0, seed=2)
        models = ts.to_mobility()
        for trace in ts:
            model = models[trace.vehicle_id]
            for t in trace.times:
                pos = model.position(t)
                x, y = trace.position_at(t)
                assert pos.x == pytest.approx(x, abs=1e-9)
                assert pos.y == pytest.approx(y, abs=1e-9)

    def test_single_waypoint_vehicle_becomes_static(self):
        ts = TraceSet(
            [
                vehicle("still", [(0.0, 5.0, 6.0)]),
                vehicle("move", [(0.0, 0.0, 0.0), (1.0, 10.0, 0.0)]),
            ]
        )
        models = ts.to_mobility()
        assert isinstance(models["still"], StaticMobility)
        assert models["still"].position(3.0) == Vec2(5.0, 6.0)
        assert isinstance(models["move"], TraceMobility)

    def test_stationary_vehicle_becomes_static(self):
        ts = TraceSet(
            [vehicle("parked", [(0.0, 1.0, 1.0), (5.0, 1.0, 1.0), (9.0, 1.0, 1.0)])]
        )
        assert isinstance(ts.to_mobility()["parked"], StaticMobility)

    def test_dwell_produces_arc_plateau_not_zero_segment(self):
        # moving, parked for a while, then moving again
        ts = TraceSet(
            [
                vehicle(
                    "d",
                    [
                        (0.0, 0.0, 0.0),
                        (1.0, 10.0, 0.0),
                        (2.0, 10.0, 0.0),
                        (3.0, 10.0, 0.0),
                        (4.0, 20.0, 0.0),
                    ],
                )
            ]
        )
        model = ts.to_mobility()["d"]
        assert model.position(1.5) == Vec2(10.0, 0.0)
        assert model.position(2.9) == Vec2(10.0, 0.0)
        assert model.position(3.5).x == pytest.approx(15.0)

    def test_all_static_set_has_no_track(self):
        ts = TraceSet([vehicle("s1", [(0.0, 1.0, 2.0)]), vehicle("s2", [(0.0, 3.0, 4.0)])])
        models = ts.to_mobility()
        assert all(isinstance(m, StaticMobility) for m in models.values())


class TestSynth:
    def test_deterministic_for_seed_and_params(self):
        a = synth_traces(vehicles=5, duration_s=40.0, seed=9)
        b = synth_traces(vehicles=5, duration_s=40.0, seed=9)
        assert a == b
        c = synth_traces(vehicles=5, duration_s=40.0, seed=10)
        assert a != c

    def test_vehicles_enter_staggered_and_leave_the_road(self):
        ts = synth_traces(
            vehicles=4, duration_s=200.0, seed=1, road_length_m=400.0, entry_gap_s=5.0
        )
        starts = [ts[f"veh{i}"].start_time for i in range(4)]
        assert starts == [0.0, 5.0, 10.0, 15.0]
        # a 400 m road at ~20 m/s is left long before 200 s
        assert all(t.end_time < 60.0 for t in ts)

    def test_parameter_validation(self):
        with pytest.raises(TraceFormatError):
            synth_traces(vehicles=0)
        with pytest.raises(TraceFormatError):
            synth_traces(duration_s=-1.0)
        with pytest.raises(TraceFormatError):
            synth_traces(speed_jitter=1.5)
