"""Curvature-aware target-speed profile."""

import pytest

from repro.errors import MobilityError
from repro.geom import Polyline, Vec2
from repro.mobility.profile import CurvatureSpeedProfile


@pytest.fixture
def rect_profile():
    track = Polyline.rectangle(100.0, 60.0)
    return CurvatureSpeedProfile(
        track, cruise_speed=10.0, corner_speed=3.0, transition_distance=15.0
    )


class TestTargetSpeed:
    def test_cruise_on_straight(self, rect_profile):
        # Middle of the bottom edge: far from both corners.
        assert rect_profile.target_speed(50.0) == pytest.approx(10.0)

    def test_slow_at_corner(self, rect_profile):
        # Vertex at arc length 100 is a 90° corner.
        assert rect_profile.target_speed(100.0) == pytest.approx(3.0)

    def test_ramp_between(self, rect_profile):
        mid_ramp = rect_profile.target_speed(92.5)  # halfway into transition
        assert 3.0 < mid_ramp < 10.0

    def test_wraps_on_loop(self, rect_profile):
        # The vertex at arc 0 (== perimeter) is also a corner.
        assert rect_profile.target_speed(0.0) == pytest.approx(3.0)
        assert rect_profile.target_speed(320.0) == pytest.approx(3.0)

    def test_straight_track_has_no_corners(self):
        profile = CurvatureSpeedProfile(
            Polyline.straight(500.0), cruise_speed=20.0, corner_speed=5.0
        )
        for s in (0.0, 250.0, 500.0):
            assert profile.target_speed(s) == pytest.approx(20.0)

    def test_gentle_bend_barely_slows(self):
        track = Polyline(
            [Vec2(0, 0), Vec2(100, 0), Vec2(200, 10)]  # ~5.7° bend
        )
        profile = CurvatureSpeedProfile(track, cruise_speed=10.0, corner_speed=3.0)
        assert profile.target_speed(100.0) == pytest.approx(10.0)


class TestValidation:
    def test_corner_speed_cannot_exceed_cruise(self):
        with pytest.raises(MobilityError):
            CurvatureSpeedProfile(
                Polyline.rectangle(10, 10), cruise_speed=5.0, corner_speed=6.0
            )

    def test_positive_speeds(self):
        with pytest.raises(MobilityError):
            CurvatureSpeedProfile(
                Polyline.rectangle(10, 10), cruise_speed=0.0, corner_speed=0.0
            )

    def test_positive_transition(self):
        with pytest.raises(MobilityError):
            CurvatureSpeedProfile(
                Polyline.rectangle(10, 10),
                cruise_speed=5.0,
                corner_speed=2.0,
                transition_distance=0.0,
            )
