"""Format parsers: SUMO FCD / ns-2 setdest / CSV → one TraceSet.

The headline property (an acceptance criterion of the trace subsystem):
the *same* two-vehicle motion written in all three formats parses into
the same :class:`TraceSet` — exactly for CSV and SUMO, and to float
tolerance for setdest (whose speeds encode segment times as divisions).
"""

import io
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.mobility.traceio import (
    TraceSet,
    VehicleTrace,
    detect_format,
    dump_traces,
    load_traces,
    parse_csv_trace,
    parse_setdest,
    parse_sumo_fcd,
    synth_traces,
    write_csv_trace,
    write_setdest,
    write_sumo_fcd,
)

# One reference motion: car "a" drives east 0→100 m over 10 s, car "b"
# starts 50 m north at t=2 and drives 40 m east over 8 s.
SUMO_FIXTURE = """<?xml version="1.0" encoding="UTF-8"?>
<fcd-export>
  <timestep time="0.0">
    <vehicle id="a" x="0.0" y="0.0" speed="10.0" angle="90.0"/>
  </timestep>
  <timestep time="2.0">
    <vehicle id="a" x="20.0" y="0.0"/>
    <vehicle id="b" x="0.0" y="50.0"/>
  </timestep>
  <timestep time="10.0">
    <vehicle id="a" x="100.0" y="0.0"/>
    <vehicle id="b" x="40.0" y="50.0"/>
  </timestep>
</fcd-export>
"""

CSV_FIXTURE = """# the same motion, as CSV
time,vehicle,x,y,speed
0.0,a,0.0,0.0,10.0
2.0,a,20.0,0.0,10.0
2.0,b,0.0,50.0,5.0
10.0,a,100.0,0.0,10.0
10.0,b,40.0,50.0,5.0
"""

SETDEST_FIXTURE = """# the same motion, as ns-2 setdest
$node_(a) set X_ 0.0
$node_(a) set Y_ 0.0
$node_(a) set Z_ 0.0
$ns_ at 0.0 "$node_(a) setdest 100.0 0.0 10.0"
$node_(b) set X_ 0.0
$node_(b) set Y_ 50.0
$node_(b) set Z_ 0.0
$ns_ at 2.0 "$node_(b) setdest 40.0 50.0 5.0"
"""


def positions_equal(a: TraceSet, b: TraceSet, *, tol: float = 1e-9) -> bool:
    if a.vehicle_ids != b.vehicle_ids:
        return False
    for trace in a:
        other = b[trace.vehicle_id]
        for t in sorted(set(trace.times) | set(other.times)):
            xa, ya = trace.position_at(t)
            xb, yb = other.position_at(t)
            if math.hypot(xa - xb, ya - yb) > tol:
                return False
    return True


class TestSameMotionAcrossFormats:
    def test_sumo_and_csv_parse_identically(self):
        sumo = parse_sumo_fcd(io.StringIO(SUMO_FIXTURE))
        tabular = parse_csv_trace(CSV_FIXTURE)
        assert sumo == tabular

    def test_setdest_matches_to_tolerance(self):
        sumo = parse_sumo_fcd(io.StringIO(SUMO_FIXTURE))
        setdest = parse_setdest(SETDEST_FIXTURE)
        assert positions_equal(sumo, setdest)

    def test_all_three_drive_the_same_mobility(self):
        sets = [
            parse_sumo_fcd(io.StringIO(SUMO_FIXTURE)),
            parse_csv_trace(CSV_FIXTURE),
            parse_setdest(SETDEST_FIXTURE),
        ]
        positions = []
        for ts in sets:
            models = ts.to_mobility()
            positions.append(
                [
                    (models["a"].position(t), models["b"].position(t))
                    for t in (0.0, 3.0, 6.5, 10.0)
                ]
            )
        for other in positions[1:]:
            for (pa, pb), (qa, qb) in zip(positions[0], other):
                assert pa.distance_to(qa) < 1e-9
                assert pb.distance_to(qb) < 1e-9


class TestSumo:
    def test_interleaved_timesteps_sort_per_vehicle(self):
        ts = parse_sumo_fcd(io.StringIO(SUMO_FIXTURE))
        assert ts["a"].times == (0.0, 2.0, 10.0)
        assert ts["b"].times == (2.0, 10.0)

    def test_malformed_xml_rejected(self):
        with pytest.raises(TraceFormatError, match="malformed SUMO FCD XML"):
            parse_sumo_fcd(io.StringIO("<fcd-export><timestep"))

    def test_missing_attributes_rejected(self):
        with pytest.raises(TraceFormatError, match="no id attribute"):
            parse_sumo_fcd(
                io.StringIO('<f><timestep time="0"><vehicle x="0" y="0"/></timestep></f>')
            )
        with pytest.raises(TraceFormatError, match="missing x/y"):
            parse_sumo_fcd(
                io.StringIO('<f><timestep time="0"><vehicle id="a" x="0"/></timestep></f>')
            )
        with pytest.raises(TraceFormatError, match="without a time"):
            parse_sumo_fcd(
                io.StringIO('<f><timestep><vehicle id="a" x="0" y="0"/></timestep></f>')
            )

    def test_non_numeric_rejected(self):
        with pytest.raises(TraceFormatError, match="not a number"):
            parse_sumo_fcd(
                io.StringIO(
                    '<f><timestep time="0"><vehicle id="a" x="east" y="0"/></timestep></f>'
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError, match="no vehicle samples"):
            parse_sumo_fcd(io.StringIO("<fcd-export/>"))

    def test_unit_conversion(self):
        ts = parse_sumo_fcd(io.StringIO(SUMO_FIXTURE), unit="km")
        assert ts["a"].xs[-1] == pytest.approx(100_000.0)

    def test_write_parse_round_trip_exact(self):
        ts = synth_traces(vehicles=4, duration_s=30.0, seed=13)
        buffer = io.StringIO()
        write_sumo_fcd(ts, buffer)
        assert parse_sumo_fcd(io.StringIO(buffer.getvalue())) == ts


class TestSetdest:
    def test_initial_position_only_node_is_stationary(self):
        ts = parse_setdest("$node_(p) set X_ 4.0\n$node_(p) set Y_ 5.0\n")
        assert ts["p"].is_stationary()

    def test_command_preempts_unfinished_leg(self):
        # 100 m at 10 m/s from t=0, preempted at t=5 (x=50), sent back
        text = (
            "$node_(n) set X_ 0.0\n"
            "$node_(n) set Y_ 0.0\n"
            '$ns_ at 0.0 "$node_(n) setdest 100.0 0.0 10.0"\n'
            '$ns_ at 5.0 "$node_(n) setdest 0.0 0.0 10.0"\n'
        )
        trace = parse_setdest(text)["n"]
        assert trace.position_at(5.0) == pytest.approx((50.0, 0.0))
        assert trace.position_at(10.0) == pytest.approx((0.0, 0.0))

    def test_idle_gap_between_legs(self):
        text = (
            "$node_(n) set X_ 0.0\n"
            "$node_(n) set Y_ 0.0\n"
            '$ns_ at 0.0 "$node_(n) setdest 10.0 0.0 10.0"\n'
            '$ns_ at 5.0 "$node_(n) setdest 20.0 0.0 10.0"\n'
        )
        trace = parse_setdest(text)["n"]
        # arrives at x=10 at t=1, idles until t=5
        assert trace.position_at(3.0) == pytest.approx((10.0, 0.0))

    def test_malformed_line_rejected_with_line_number(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_setdest("$node_(n) set X_ 0.0\nthis is not a movement line\n")

    def test_setdest_without_initial_position_rejected(self):
        with pytest.raises(TraceFormatError, match="no initial"):
            parse_setdest('$ns_ at 0.0 "$node_(n) setdest 1.0 2.0 3.0"\n')

    def test_missing_y_rejected(self):
        with pytest.raises(TraceFormatError, match="missing an initial Y_"):
            parse_setdest("$node_(n) set X_ 0.0\n")

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(TraceFormatError, match="speed must be positive"):
            parse_setdest(
                "$node_(n) set X_ 0.0\n$node_(n) set Y_ 0.0\n"
                '$ns_ at 0.0 "$node_(n) setdest 1.0 0.0 0.0"\n'
            )

    def test_non_numeric_rejected(self):
        with pytest.raises(TraceFormatError, match="not a number"):
            parse_setdest(
                "$node_(n) set X_ east\n$node_(n) set Y_ 0.0\n"
            )

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError, match="no movement lines"):
            parse_setdest("# just a comment\n")

    def test_write_parse_round_trip_positions(self):
        ts = synth_traces(vehicles=4, duration_s=30.0, seed=13).rebased()
        buffer = io.StringIO()
        write_setdest(ts, buffer)
        again = parse_setdest(buffer.getvalue())
        assert positions_equal(ts, again, tol=1e-6)


class TestCsv:
    def test_column_aliases_and_case(self):
        ts = parse_csv_trace("T,ID,X,Y\n0.0,v,1.0,2.0\n1.0,v,3.0,4.0\n")
        assert ts["v"].xs == (1.0, 3.0)

    def test_extra_columns_ignored(self):
        ts = parse_csv_trace("time,vehicle,x,y,lane,speed\n0,v,1,2,0,9\n1,v,2,2,0,9\n")
        assert ts["v"].times == (0.0, 1.0)

    def test_missing_column_rejected(self):
        with pytest.raises(TraceFormatError, match="no vehicle column"):
            parse_csv_trace("time,x,y\n0,1,2\n")

    def test_short_row_rejected(self):
        with pytest.raises(TraceFormatError, match="row 2 has"):
            parse_csv_trace("time,vehicle,x,y\n0,v\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(TraceFormatError, match="not a number"):
            parse_csv_trace("time,vehicle,x,y\n0,v,east,2\n")

    def test_empty_vehicle_id_rejected(self):
        with pytest.raises(TraceFormatError, match="empty vehicle id"):
            parse_csv_trace("time,vehicle,x,y\n0,,1,2\n")

    def test_no_header_rejected(self):
        with pytest.raises(TraceFormatError, match="no header"):
            parse_csv_trace("")

    def test_header_without_rows_rejected(self):
        with pytest.raises(TraceFormatError, match="no sample rows"):
            parse_csv_trace("time,vehicle,x,y\n")

    def test_unit_mismatch_is_loud_not_silent(self):
        with pytest.raises(TraceFormatError, match="unknown length unit"):
            parse_csv_trace("time,vehicle,x,y\n0,v,1,2\n", unit="feet")

    def test_write_parse_round_trip_exact(self):
        ts = synth_traces(vehicles=4, duration_s=30.0, seed=13)
        buffer = io.StringIO()
        write_csv_trace(ts, buffer)
        assert parse_csv_trace(buffer.getvalue()) == ts

    @settings(max_examples=30, deadline=None)
    @given(
        vehicles=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    def test_round_trip_arbitrary_floats_exact(self, vehicles, data):
        """repr-based CSV writing round-trips any float bit-exactly."""
        coords = st.floats(
            allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
        )
        traces = []
        for v in range(vehicles):
            n = data.draw(st.integers(min_value=1, max_value=6))
            samples = [
                (float(k), data.draw(coords), data.draw(coords)) for k in range(n)
            ]
            traces.append(VehicleTrace.from_samples(f"v{v}", samples))
        ts = TraceSet(traces)
        buffer = io.StringIO()
        write_csv_trace(ts, buffer)
        assert parse_csv_trace(buffer.getvalue()) == ts


class TestDetectAndLoad(object):
    def test_detects_all_three(self, tmp_path):
        ts = synth_traces(vehicles=3, duration_s=20.0, seed=4).rebased()
        paths = {}
        for fmt, suffix in (("sumo-fcd", "a.dat"), ("ns2", "b.dat"), ("csv", "c.dat")):
            path = tmp_path / suffix
            dump_traces(ts, path, fmt=fmt)
            paths[fmt] = path
        for fmt, path in paths.items():
            assert detect_format(path) == fmt
            loaded = load_traces(path)
            assert positions_equal(ts, loaded, tol=1e-6)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,vehicle,x,y\n0,v,1,2\n1,v,2,2\n")
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            load_traces(path, fmt="gpx")
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            dump_traces(synth_traces(vehicles=1), path, fmt="gpx")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="is empty"):
            detect_format(path)

    def test_missing_file_rejected(self):
        with pytest.raises(TraceFormatError, match="cannot read"):
            detect_format("/nonexistent/trace.csv")
