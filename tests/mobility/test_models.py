"""Static, path and trace mobility models."""

import pytest

from repro.errors import MobilityError
from repro.geom import Polyline, Vec2
from repro.mobility.base import TraceMobility
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility


class TestStatic:
    def test_position_constant(self):
        model = StaticMobility(Vec2(3, 4))
        assert model.position(0.0) == Vec2(3, 4)
        assert model.position(1e6) == Vec2(3, 4)

    def test_speed_zero(self):
        assert StaticMobility(Vec2(0, 0)).speed(5.0) == 0.0


class TestPathMobility:
    @pytest.fixture
    def straight(self):
        return Polyline.straight(100.0)

    def test_constant_speed_motion(self, straight):
        model = PathMobility(straight, 10.0)
        assert model.position(0.0) == Vec2(0, 0)
        assert model.position(5.0) == Vec2(50, 0)

    def test_parks_at_end_of_open_track(self, straight):
        model = PathMobility(straight, 10.0)
        assert model.position(100.0) == Vec2(100, 0)
        assert model.speed(100.0) == 0.0

    def test_start_time_delays_motion(self, straight):
        model = PathMobility(straight, 10.0, start_time=2.0)
        assert model.position(1.0) == Vec2(0, 0)
        assert model.speed(1.0) == 0.0
        assert model.position(3.0) == Vec2(10, 0)

    def test_loops_on_closed_track(self):
        loop = Polyline.rectangle(40.0, 10.0)
        model = PathMobility(loop, 10.0)
        assert model.position(0.0) == model.position(loop.length / 10.0)

    def test_speed_positive_required(self, straight):
        with pytest.raises(MobilityError):
            PathMobility(straight, 0.0)

    def test_start_arc_offset(self, straight):
        model = PathMobility(straight, 10.0, start_arc_length=30.0)
        assert model.position(0.0) == Vec2(30, 0)


class TestTraceMobility:
    @pytest.fixture
    def track(self):
        return Polyline.straight(1000.0)

    def test_linear_interpolation(self, track):
        trace = TraceMobility(track, [0.0, 10.0], [0.0, 100.0])
        assert trace.arc_length(5.0) == pytest.approx(50.0)
        assert trace.position(5.0) == Vec2(50, 0)

    def test_clamps_before_and_after(self, track):
        trace = TraceMobility(track, [1.0, 2.0], [10.0, 20.0])
        assert trace.arc_length(0.0) == 10.0
        assert trace.arc_length(99.0) == 20.0

    def test_speed_from_samples(self, track):
        trace = TraceMobility(track, [0.0, 10.0], [0.0, 100.0])
        assert trace.speed(5.0) == pytest.approx(10.0, rel=0.01)

    def test_validation(self, track):
        with pytest.raises(MobilityError):
            TraceMobility(track, [0.0], [0.0])
        with pytest.raises(MobilityError):
            TraceMobility(track, [0.0, 0.0], [0.0, 1.0])
        with pytest.raises(MobilityError):
            TraceMobility(track, [0.0, 1.0], [0.0])

    def test_duration(self, track):
        trace = TraceMobility(track, [0.0, 7.5], [0.0, 10.0])
        assert trace.duration == 7.5

    def test_wraps_loop_arc_lengths(self):
        loop = Polyline.rectangle(40.0, 10.0)
        trace = TraceMobility(loop, [0.0, 10.0], [90.0, 110.0])
        # Unwrapped arc 110 on a 100 m loop = position at arc 10.
        assert trace.position(10.0) == loop.point_at(10.0)
