"""Static, path and trace mobility models."""

import pytest

from repro.errors import MobilityError
from repro.geom import Polyline, Vec2
from repro.mobility.base import TraceMobility
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility


class TestStatic:
    def test_position_constant(self):
        model = StaticMobility(Vec2(3, 4))
        assert model.position(0.0) == Vec2(3, 4)
        assert model.position(1e6) == Vec2(3, 4)

    def test_speed_zero(self):
        assert StaticMobility(Vec2(0, 0)).speed(5.0) == 0.0


class TestPathMobility:
    @pytest.fixture
    def straight(self):
        return Polyline.straight(100.0)

    def test_constant_speed_motion(self, straight):
        model = PathMobility(straight, 10.0)
        assert model.position(0.0) == Vec2(0, 0)
        assert model.position(5.0) == Vec2(50, 0)

    def test_parks_at_end_of_open_track(self, straight):
        model = PathMobility(straight, 10.0)
        assert model.position(100.0) == Vec2(100, 0)
        assert model.speed(100.0) == 0.0

    def test_start_time_delays_motion(self, straight):
        model = PathMobility(straight, 10.0, start_time=2.0)
        assert model.position(1.0) == Vec2(0, 0)
        assert model.speed(1.0) == 0.0
        assert model.position(3.0) == Vec2(10, 0)

    def test_loops_on_closed_track(self):
        loop = Polyline.rectangle(40.0, 10.0)
        model = PathMobility(loop, 10.0)
        assert model.position(0.0) == model.position(loop.length / 10.0)

    def test_speed_positive_required(self, straight):
        with pytest.raises(MobilityError):
            PathMobility(straight, 0.0)

    def test_start_arc_offset(self, straight):
        model = PathMobility(straight, 10.0, start_arc_length=30.0)
        assert model.position(0.0) == Vec2(30, 0)


class TestTraceMobility:
    @pytest.fixture
    def track(self):
        return Polyline.straight(1000.0)

    def test_linear_interpolation(self, track):
        trace = TraceMobility(track, [0.0, 10.0], [0.0, 100.0])
        assert trace.arc_length(5.0) == pytest.approx(50.0)
        assert trace.position(5.0) == Vec2(50, 0)

    def test_clamps_before_and_after(self, track):
        trace = TraceMobility(track, [1.0, 2.0], [10.0, 20.0])
        assert trace.arc_length(0.0) == 10.0
        assert trace.arc_length(99.0) == 20.0

    def test_speed_from_samples(self, track):
        trace = TraceMobility(track, [0.0, 10.0], [0.0, 100.0])
        assert trace.speed(5.0) == pytest.approx(10.0, rel=0.01)

    def test_validation(self, track):
        with pytest.raises(MobilityError):
            TraceMobility(track, [0.0], [0.0])
        with pytest.raises(MobilityError):
            TraceMobility(track, [0.0, 0.0], [0.0, 1.0])
        with pytest.raises(MobilityError):
            TraceMobility(track, [0.0, 1.0], [0.0])

    def test_duration(self, track):
        trace = TraceMobility(track, [0.0, 7.5], [0.0, 10.0])
        assert trace.duration == 7.5

    def test_wraps_loop_arc_lengths(self):
        loop = Polyline.rectangle(40.0, 10.0)
        trace = TraceMobility(loop, [0.0, 10.0], [90.0, 110.0])
        # Unwrapped arc 110 on a 100 m loop = position at arc 10.
        assert trace.position(10.0) == loop.point_at(10.0)


class TestBatchPositions:
    """Batched mobility queries are bit-identical to scalar position()."""

    def test_static_positions_at(self):
        import numpy as np

        model = StaticMobility(Vec2(12.5, -3.0))
        times = np.linspace(0.0, 50.0, 101)
        xs, ys = model.positions_at(times)
        assert np.array_equal(xs, np.full(101, 12.5))
        assert np.array_equal(ys, np.full(101, -3.0))

    def test_path_positions_at_matches_scalar(self):
        import numpy as np

        track = Polyline([Vec2(0, 0), Vec2(200, 0), Vec2(200, 150)])
        model = PathMobility(track, 7.5, start_arc_length=10.0, start_time=2.0)
        times = np.linspace(0.0, 60.0, 307)
        xs, ys = model.positions_at(times)
        for t, x, y in zip(times.tolist(), xs.tolist(), ys.tolist()):
            p = model.position(t)
            assert (x, y) == (p.x, p.y)

    def test_trace_positions_at_matches_scalar(self):
        import numpy as np

        track = Polyline([Vec2(0, 0), Vec2(500, 0)])
        trace = TraceMobility(track, [0.0, 5.0, 12.0, 30.0], [0.0, 60.0, 180.0, 420.0])
        times = np.linspace(-2.0, 35.0, 311)
        xs, ys = trace.positions_at(times)
        for t, x, y in zip(times.tolist(), xs.tolist(), ys.tolist()):
            p = trace.position(t)
            assert (x, y) == (p.x, p.y)

    def test_path_group_query_matches_scalar(self):
        import numpy as np

        track = Polyline([Vec2(0, 0), Vec2(5000, 0)])
        models = [
            PathMobility(track, 5.0 + i, start_arc_length=40.0 * i, start_time=0.5 * i)
            for i in range(17)
        ]
        keys = {m.batch_key() for m in models}
        assert len(keys) == 1
        for time in [0.0, 3.3, 17.9, 400.0]:
            xs, ys = PathMobility.positions_at_time(models, time)
            for m, x, y in zip(models, xs.tolist(), ys.tolist()):
                p = m.position(time)
                assert (x, y) == (p.x, p.y)

    def test_distinct_tracks_get_distinct_keys(self):
        a = Polyline([Vec2(0, 0), Vec2(10, 0)])
        b = Polyline([Vec2(0, 0), Vec2(10, 0)])
        assert PathMobility(a, 1.0).batch_key() != PathMobility(b, 1.0).batch_key()
        # Static mounts share one group; path and static never mix.
        assert StaticMobility(Vec2(0, 0)).batch_key() == ("static",)
        assert StaticMobility(Vec2(0, 0)).batch_key() != PathMobility(a, 1.0).batch_key()

    def test_static_group_query_matches_scalar(self):
        import numpy as np

        models = [StaticMobility(Vec2(3.0 * i, -i)) for i in range(9)]
        assert len({m.batch_key() for m in models}) == 1
        xs, ys = StaticMobility.positions_at_time(models, 4.2)
        for m, x, y in zip(models, xs.tolist(), ys.tolist()):
            p = m.position(4.2)
            assert (x, y) == (p.x, p.y)

    def test_trace_group_query_matches_scalar(self):
        track = Polyline([Vec2(0, 0), Vec2(100, 0), Vec2(100, 80)], closed=False)
        models = [
            TraceMobility(track, [0.0, 10.0 + i], [0.0, 90.0 + 5.0 * i])
            for i in range(6)
        ]
        assert len({m.batch_key() for m in models}) == 1
        other = TraceMobility(
            Polyline([Vec2(0, 0), Vec2(1, 0)]), [0.0, 1.0], [0.0, 1.0]
        )
        assert other.batch_key() != models[0].batch_key()
        for time in [0.0, 4.4, 9.9, 25.0]:
            xs, ys = TraceMobility.positions_at_time(models, time)
            for m, x, y in zip(models, xs.tolist(), ys.tolist()):
                p = m.position(time)
                assert (x, y) == (p.x, p.y)
