"""IDM platoon integration: safety and coherence invariants."""

import numpy as np
import pytest

from repro.errors import MobilityError
from repro.geom import Polyline
from repro.mobility.idm import DriverProfile, IdmParameters, simulate_platoon
from repro.mobility.profile import CurvatureSpeedProfile
from repro.mobility.urban import urban_loop


def platoon(n=3, seed=0, duration=120.0, styles=None):
    testbed = urban_loop()
    profile = CurvatureSpeedProfile(
        testbed.track, cruise_speed=5.6, corner_speed=3.2
    )
    base = DriverProfile()
    drivers = [base]
    from dataclasses import replace

    for i in range(1, n):
        style = (styles or ["timid", "aggressive"])[(i - 1) % 2]
        driver = base.timid() if style == "timid" else base.aggressive()
        drivers.append(replace(driver, speed_factor=1.2))
    return simulate_platoon(
        testbed.track,
        profile,
        drivers,
        duration=duration,
        rng=np.random.default_rng(seed),
        lead_start_arc=testbed.start_arc_length,
    )


class TestSafety:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_no_collisions(self, seed):
        """Front-bumper gaps minus vehicle length stay positive."""
        traces = platoon(seed=seed)
        length = IdmParameters().vehicle_length
        for t in np.arange(0.0, 120.0, 0.5):
            arcs = [trace.arc_length(t) for trace in traces]
            for leader, follower in zip(arcs, arcs[1:]):
                assert leader - follower > length * 0.5

    def test_order_preserved(self):
        traces = platoon(seed=7)
        for t in np.arange(0.0, 120.0, 1.0):
            arcs = [trace.arc_length(t) for trace in traces]
            assert arcs == sorted(arcs, reverse=True)

    def test_speeds_bounded(self):
        traces = platoon(seed=3)
        for trace in traces:
            for t in np.arange(1.0, 119.0, 1.0):
                assert 0.0 <= trace.speed(t) <= 5.6 * 1.2 * 1.5


class TestCoherence:
    def test_platoon_stays_together(self):
        """Followers do not drift away (gap bounded)."""
        traces = platoon(seed=5)
        for t in np.arange(30.0, 120.0, 5.0):
            arcs = [trace.arc_length(t) for trace in traces]
            assert arcs[0] - arcs[-1] < 90.0

    def test_progress_made(self):
        traces = platoon(seed=6)
        leader = traces[0]
        assert leader.arc_length(120.0) - leader.arc_length(0.0) > 400.0

    def test_deterministic_given_rng(self):
        a = platoon(seed=9)[0].arc_length(60.0)
        b = platoon(seed=9)[0].arc_length(60.0)
        assert a == b

    def test_different_seeds_differ(self):
        a = platoon(seed=1)[0].arc_length(60.0)
        b = platoon(seed=2)[0].arc_length(60.0)
        assert a != b


class TestValidation:
    def test_needs_drivers(self):
        testbed = urban_loop()
        profile = CurvatureSpeedProfile(
            testbed.track, cruise_speed=5.0, corner_speed=2.0
        )
        with pytest.raises(MobilityError):
            simulate_platoon(
                testbed.track, profile, [], duration=10.0,
                rng=np.random.default_rng(0),
            )

    def test_positive_duration(self):
        testbed = urban_loop()
        profile = CurvatureSpeedProfile(
            testbed.track, cruise_speed=5.0, corner_speed=2.0
        )
        with pytest.raises(MobilityError):
            simulate_platoon(
                testbed.track, profile, [DriverProfile()], duration=0.0,
                rng=np.random.default_rng(0),
            )

    def test_idm_parameters_positive(self):
        with pytest.raises(MobilityError):
            IdmParameters(max_acceleration=0.0)

    def test_driver_profile_validation(self):
        with pytest.raises(MobilityError):
            DriverProfile(speed_factor=0.0)
        with pytest.raises(MobilityError):
            DriverProfile(acceleration_noise_std=-0.1)


class TestGeometryBundles:
    def test_urban_loop_structure(self):
        testbed = urban_loop(block_width=100.0, block_height=80.0)
        assert testbed.track.closed
        assert testbed.track.length == pytest.approx(360.0)
        assert testbed.ap_position.y < 0  # set back behind the street
        assert len(testbed.buildings) == 1
        assert 0.0 < testbed.start_arc_length < testbed.track.length

    def test_urban_loop_building_blocks_far_street(self):
        testbed = urban_loop()
        building = testbed.buildings[0]
        far_street_point = testbed.track.point_at(
            testbed.start_arc_length
        )  # top edge
        assert building.intersects_segment(testbed.ap_position, far_street_point)

    def test_highway_scenario_structure(self):
        from repro.mobility.highway import highway_scenario

        scenario = highway_scenario(road_length=1000.0, ap_offset=20.0)
        assert not scenario.track.closed
        assert scenario.ap_position.x == pytest.approx(500.0)
        assert scenario.ap_position.y == pytest.approx(20.0)
