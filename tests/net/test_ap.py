"""Access-point application: flows, rates, file mode, retransmission hook."""

import numpy as np
import pytest

from repro.core.retransmission import FixedRetransmission
from repro.errors import ConfigurationError
from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.medium import Medium
from repro.mobility.static import StaticMobility
from repro.net.ap import AccessPoint, FlowConfig
from repro.radio.channel import Channel
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

AP = NodeId(100)
CAR1, CAR2 = NodeId(1), NodeId(2)


def make_ap(flows, *, jitter=0.0, retx=None, seed=0):
    sim = Simulator(seed=seed)
    trace = TraceCollector()
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(sim, channel, trace=trace)
    ap = AccessPoint(
        sim,
        medium,
        AP,
        StaticMobility(Vec2(0, 0)),
        RadioConfig(),
        sim.streams.get("ap"),
        flows,
        jitter_fraction=jitter,
        retransmission_policy=retx,
    )
    return sim, trace, ap


class TestValidation:
    def test_needs_flows(self):
        with pytest.raises(ConfigurationError):
            make_ap([])

    def test_duplicate_destinations_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ap([FlowConfig(destination=CAR1), FlowConfig(destination=CAR1)])

    def test_flow_validation(self):
        with pytest.raises(ConfigurationError):
            FlowConfig(destination=CAR1, packet_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            FlowConfig(destination=CAR1, payload_bytes=0)
        with pytest.raises(ConfigurationError):
            FlowConfig(destination=CAR1, blocks=0)

    def test_double_start_rejected(self):
        _, _, ap = make_ap([FlowConfig(destination=CAR1)])
        ap.start()
        with pytest.raises(ConfigurationError):
            ap.start()


class TestStreaming:
    def test_packet_rate(self):
        sim, trace, ap = make_ap(
            [FlowConfig(destination=CAR1, packet_rate_hz=5.0)]
        )
        ap.start()
        sim.run(until=10.0)
        sent = [t for t in trace.tx_records if isinstance(t.frame, DataFrame)]
        assert len(sent) == pytest.approx(50, abs=2)

    def test_sequences_increment_from_first_seq(self):
        sim, trace, ap = make_ap(
            [FlowConfig(destination=CAR1, packet_rate_hz=10.0, first_seq=100)]
        )
        ap.start()
        sim.run(until=1.0)
        seqs = [t.frame.seq for t in trace.tx_records if isinstance(t.frame, DataFrame)]
        assert seqs == list(range(100, 100 + len(seqs)))

    def test_two_flows_independent(self):
        sim, trace, ap = make_ap(
            [
                FlowConfig(destination=CAR1, packet_rate_hz=5.0),
                FlowConfig(destination=CAR2, packet_rate_hz=10.0),
            ]
        )
        ap.start()
        sim.run(until=4.0)
        per_flow = {CAR1: 0, CAR2: 0}
        for record in trace.tx_records:
            if isinstance(record.frame, DataFrame):
                per_flow[record.frame.flow_dst] += 1
        assert per_flow[CAR2] == pytest.approx(2 * per_flow[CAR1], abs=3)

    def test_jitter_keeps_intervals_near_nominal(self):
        sim, trace, ap = make_ap(
            [FlowConfig(destination=CAR1, packet_rate_hz=5.0)], jitter=0.1
        )
        ap.start()
        sim.run(until=20.0)
        times = [
            t.time for t in trace.tx_records if isinstance(t.frame, DataFrame)
        ]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(0.15 <= gap <= 0.25 for gap in gaps)

    def test_last_seq_sent_tracked(self):
        sim, _, ap = make_ap([FlowConfig(destination=CAR1, packet_rate_hz=10.0)])
        ap.start()
        sim.run(until=2.05)
        assert ap.last_seq_sent[CAR1] >= 20


class TestFileMode:
    def test_sequences_wrap_at_blocks(self):
        sim, trace, ap = make_ap(
            [FlowConfig(destination=CAR1, packet_rate_hz=10.0, blocks=5)]
        )
        ap.start()
        sim.run(until=2.0)
        seqs = [t.frame.seq for t in trace.tx_records if isinstance(t.frame, DataFrame)]
        assert set(seqs) == {1, 2, 3, 4, 5}
        assert seqs[:6] == [1, 2, 3, 4, 5, 1]


class TestRetransmissionPolicy:
    def test_fixed_policy_duplicates_frames(self):
        sim, trace, ap = make_ap(
            [FlowConfig(destination=CAR1, packet_rate_hz=2.0)],
            retx=FixedRetransmission(3),
        )
        ap.start()
        sim.run(until=2.4)
        seqs = [t.frame.seq for t in trace.tx_records if isinstance(t.frame, DataFrame)]
        for seq in set(seqs):
            assert seqs.count(seq) == 3
