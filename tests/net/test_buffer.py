"""Packet buffer: storage, queries, capacity eviction."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.net.buffer import BufferEntry, PacketBuffer


def entry(flow, seq, t=0.0):
    return BufferEntry(NodeId(flow), seq, t, 1062)


class TestBasics:
    def test_add_and_has(self):
        buffer = PacketBuffer()
        assert buffer.add(entry(1, 5))
        assert buffer.has(NodeId(1), 5)
        assert not buffer.has(NodeId(1), 6)
        assert not buffer.has(NodeId(2), 5)

    def test_duplicate_add_returns_false(self):
        buffer = PacketBuffer()
        buffer.add(entry(1, 5))
        assert not buffer.add(entry(1, 5, t=9.0))
        assert len(buffer) == 1

    def test_get(self):
        buffer = PacketBuffer()
        buffer.add(entry(1, 5, t=3.0))
        stored = buffer.get(NodeId(1), 5)
        assert stored is not None
        assert stored.received_at == 3.0
        assert buffer.get(NodeId(1), 6) is None

    def test_contains_protocol(self):
        buffer = PacketBuffer()
        buffer.add(entry(1, 5))
        assert (NodeId(1), 5) in buffer

    def test_discard(self):
        buffer = PacketBuffer()
        buffer.add(entry(1, 5))
        assert buffer.discard(NodeId(1), 5)
        assert not buffer.discard(NodeId(1), 5)
        assert len(buffer) == 0

    def test_clear_preserves_eviction_count(self):
        buffer = PacketBuffer(capacity=1)
        buffer.add(entry(1, 1))
        buffer.add(entry(1, 2))
        assert buffer.evictions == 1
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.evictions == 1


class TestFlowQueries:
    def test_seqs_for_flow(self):
        buffer = PacketBuffer()
        for seq in (3, 7, 5):
            buffer.add(entry(1, seq))
        buffer.add(entry(2, 99))
        assert buffer.seqs_for_flow(NodeId(1)) == {3, 5, 7}

    def test_flow_range(self):
        buffer = PacketBuffer()
        for seq in (3, 7, 5):
            buffer.add(entry(1, seq))
        assert buffer.flow_range(NodeId(1)) == (3, 7)

    def test_flow_range_empty(self):
        assert PacketBuffer().flow_range(NodeId(1)) is None

    def test_flows(self):
        buffer = PacketBuffer()
        buffer.add(entry(1, 1))
        buffer.add(entry(2, 1))
        assert buffer.flows() == {NodeId(1), NodeId(2)}

    def test_entries_in_insertion_order(self):
        buffer = PacketBuffer()
        buffer.add(entry(1, 2))
        buffer.add(entry(1, 1))
        assert [e.seq for e in buffer.entries()] == [2, 1]


class TestCapacity:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            PacketBuffer(capacity=0)

    def test_fifo_eviction(self):
        buffer = PacketBuffer(capacity=2)
        buffer.add(entry(1, 1))
        buffer.add(entry(1, 2))
        buffer.add(entry(1, 3))
        assert not buffer.has(NodeId(1), 1)
        assert buffer.has(NodeId(1), 2)
        assert buffer.has(NodeId(1), 3)
        assert buffer.evictions == 1

    def test_duplicates_do_not_refresh_age(self):
        buffer = PacketBuffer(capacity=2)
        buffer.add(entry(1, 1))
        buffer.add(entry(1, 2))
        buffer.add(entry(1, 1, t=5.0))  # duplicate — must not move to back
        buffer.add(entry(1, 3))
        assert not buffer.has(NodeId(1), 1)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_never_exceeds_capacity(self, seqs):
        buffer = PacketBuffer(capacity=10)
        for seq in seqs:
            buffer.add(entry(1, seq))
        assert len(buffer) <= 10

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
    def test_unbounded_keeps_all_distinct(self, seqs):
        buffer = PacketBuffer()
        for seq in seqs:
            buffer.add(entry(1, seq))
        assert len(buffer) == len(set(seqs))
