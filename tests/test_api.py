"""Public API surface and exception hierarchy."""

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "SimulationError",
            "ConfigurationError",
            "GeometryError",
            "MobilityError",
            "RadioError",
            "MacError",
            "ProtocolError",
            "AnalysisError",
        ):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ProtocolError("boom")


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_classes_exported(self):
        assert repro.CarqConfig is not None
        assert repro.VehicleNode is not None
        assert repro.Simulator is not None

    def test_paper_reference_numbers(self):
        # Table 1 percentages from the paper.
        from repro.mac.frames import NodeId

        assert repro.PAPER_TABLE1[NodeId(1)] == (23.4, 10.5)
        assert repro.PAPER_TABLE1[NodeId(2)] == (26.9, 17.3)
        assert repro.PAPER_TABLE1[NodeId(3)] == (28.6, 15.7)


class TestSubpackageExports:
    def test_analysis_all_resolves(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert getattr(analysis, name) is not None

    def test_radio_all_resolves(self):
        import repro.radio as radio

        for name in radio.__all__:
            assert getattr(radio, name) is not None

    def test_mac_all_resolves(self):
        import repro.mac as mac

        for name in mac.__all__:
            assert getattr(mac, name) is not None

    def test_mobility_all_resolves(self):
        import repro.mobility as mobility

        for name in mobility.__all__:
            assert getattr(mobility, name) is not None

    def test_sim_all_resolves(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert getattr(sim, name) is not None

    def test_experiments_all_resolves(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            assert getattr(experiments, name) is not None

    def test_core_all_resolves(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_baselines_all_resolves(self):
        import repro.baselines as baselines

        for name in baselines.__all__:
            assert getattr(baselines, name) is not None
