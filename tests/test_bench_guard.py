"""The CI bench-regression guard: compare logic and exit codes."""

import importlib.util
import json
import pathlib

_GUARD = pathlib.Path(__file__).parent.parent / "benchmarks" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _GUARD)
guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(guard)


def _write(path, entries):
    path.write_text(json.dumps({"schema": 1, "entries": entries}))


class TestCompare:
    def test_within_tolerance_passes(self):
        base = {"a": {"speedup": 4.0, "fast_s": 1.0}}
        fresh = {"a": {"speedup": 3.5, "fast_s": 9.0}}  # timings ignored
        assert guard.compare(base, fresh, 0.2) == []

    def test_regression_detected(self):
        base = {"a": {"speedup": 4.0}}
        fresh = {"a": {"speedup": 2.0}}
        (line,) = guard.compare(base, fresh, 0.2)
        assert "a.speedup" in line

    def test_all_speedup_like_keys_checked(self):
        base = {"a": {"batch_speedup": 2.0, "n50_speedup": 1.5}}
        fresh = {"a": {"batch_speedup": 1.0, "n50_speedup": 1.5}}
        assert len(guard.compare(base, fresh, 0.2)) == 1

    def test_new_and_dropped_entries_skipped(self):
        base = {"gone": {"speedup": 9.0}, "kept": {"speedup": 2.0}}
        fresh = {"new": {"speedup": 0.1}, "kept": {"speedup": 2.0}}
        assert guard.compare(base, fresh, 0.2) == []


class TestMain:
    def test_pass_and_fail_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        _write(base, {"a": {"speedup": 4.0}})
        _write(fresh, {"a": {"speedup": 3.9}})
        assert guard.main(["--baseline", str(base), "--fresh", str(fresh)]) == 0
        _write(fresh, {"a": {"speedup": 1.0}})
        assert guard.main(["--baseline", str(base), "--fresh", str(fresh)]) == 1

    def test_disjoint_entries_error(self, tmp_path):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        _write(base, {"a": {"speedup": 4.0}})
        _write(fresh, {"b": {"speedup": 4.0}})
        assert guard.main(["--baseline", str(base), "--fresh", str(fresh)]) == 2

    def test_nan_or_null_fresh_value_is_a_regression(self):
        base = {"a": {"speedup": 4.0}}
        assert guard.compare(base, {"a": {"speedup": float("nan")}}, 0.2)
        assert guard.compare(base, {"a": {"speedup": None}}, 0.2)
