"""CI guard: every intra-repo markdown link must resolve.

Usage::

    python tools/check_markdown_links.py [root]

Walks every ``*.md`` under *root* (default: the repository root, i.e.
this file's parent's parent), extracts inline links and images
(``[text](target)`` / ``![alt](target)``), and fails when a relative
target does not exist on disk.  External schemes (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped;
anchors on file targets are stripped (``FILE.md#section`` checks
``FILE.md``).  Exit status: 0 all good, 1 broken links (listed), each
as ``source.md: target``.

Also importable — ``tests/test_docs.py`` runs the same check in tier-1,
so a broken link fails locally before CI sees it.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Directories never scanned (VCS internals, caches, generated stores).
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "campaigns", ".hypothesis", "node_modules"}

#: ``[text](target)`` — target captured up to the closing paren (no
#: nested parens in any link this repo writes).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def markdown_files(root: pathlib.Path) -> list[pathlib.Path]:
    """Every ``*.md`` under *root*, skipping :data:`SKIP_DIRS`."""
    found = []
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        found.append(path)
    return found


def links_in(path: pathlib.Path) -> list[str]:
    """All inline link/image targets in *path*, in document order."""
    text = path.read_text(encoding="utf-8")
    # Fenced code blocks show link syntax as *examples*; don't check those.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    # Inline code spans too: docs/LINTING.md quotes waiver comments and
    # index expressions (`table[key](#anchor)`-ish shapes) in backticks.
    text = re.sub(r"`[^`\n]*`", "", text)
    return _LINK_RE.findall(text)


def broken_links(root: pathlib.Path) -> list[tuple[pathlib.Path, str]]:
    """``(source file, target)`` for every unresolvable relative link."""
    broken = []
    for path in markdown_files(root):
        for target in links_in(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if file_part.startswith("/"):
                resolved = root / file_part.lstrip("/")
            else:
                resolved = path.parent / file_part
            if not resolved.exists():
                broken.append((path, target))
    return broken


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(args[0]) if args else pathlib.Path(__file__).resolve().parents[1]
    bad = broken_links(root)
    if bad:
        print("check_markdown_links: broken intra-repo links:")
        for path, target in bad:
            print(f"  {path.relative_to(root)}: {target}")
        return 1
    count = len(markdown_files(root))
    print(f"check_markdown_links: {count} markdown files, all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
