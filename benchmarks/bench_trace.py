"""Experiment ``trace`` — the reception ladder on real-trace geometry.

The batch kernel's headline numbers (bench_kernel.py) come from a tidy
synthetic line of *static* radios.  Trace-driven scenarios are the
opposite regime: irregular curved paths, per-vehicle time spans,
vehicles entering and leaving, and TraceMobility interpolation behind
every position query.  Two pins:

* ``test_trace_broadcast_storm`` — the medium-level kernel pin: dense
  broadcasts through a *moving* trace-driven population must keep the
  storm's batch-vs-scalar ratios (this is where "the speedup holds on
  irregular geometry" is actually proven);
* ``test_trace_scenario_ladder`` — the honest end-to-end number: a full
  protocol round is event-kernel- and protocol-bound (HELLO beaconing,
  REQUEST recovery, per-receiver delivery callbacks), so the ladder
  shows up damped, exactly as the multi-AP large-N bench documents for
  its regime.  The profile that motivated the per-flow buffer index
  (repro/net/buffer.py) came from this workload.

Records into ``BENCH_kernel.json`` like the other kernel benches; the
CI regression gate compares the ``*speedup*`` figures against the
committed baseline.
"""

import dataclasses
import time

import numpy as np

from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.interface import NetworkInterface
from repro.mac.medium import Medium
from repro.mobility.base import TraceMobility
from repro.mobility.traceio import synth_traces
from repro.radio.channel import Channel
from repro.radio.fading import RicianFading
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)
from repro.scenarios.trace import SynthTraceConfig, TraceScenarioConfig, build_trace_round
from repro.sim import Simulator

#: Dense drive-thru for the end-to-end ladder: 32 vehicles one second
#: apart (≈20 m gaps) on a curving 1.2 km road.  Twelve served flows
#: keep the AP's transmit load realistic while every vehicle beacons
#: and cooperates through the dark area.
DENSE = TraceScenarioConfig(
    seed=2300,
    synth=SynthTraceConfig(
        vehicles=32,
        duration_s=70.0,
        road_length_m=1200.0,
        mean_speed_ms=20.0,
        entry_gap_s=1.0,
        lanes=3,
    ),
    served_vehicles=12,
    packet_rate_hz=5.0,
)


def _trace_network(
    *, fast_path: bool, batch: bool, cross: bool = True,
    vehicles: int = 64, seed: int = 23,
):
    """A medium whose interfaces move along a dense synthetic trace.

    Same stochastic stack as bench_kernel's line network (Gudmundson +
    transmitter-anchored OU shadowing, Rician fading) so the two storms
    differ only in geometry: static line there, moving irregular trace
    population here.  All moving vehicles share one scene track, so the
    batch kernel's grouped mobility query covers the whole set.
    """
    traces = synth_traces(
        vehicles=vehicles,
        duration_s=90.0,
        road_length_m=1800.0,
        mean_speed_ms=20.0,
        entry_gap_s=1.0,
        lanes=3,
        seed=seed,
    )
    sim = Simulator(seed=seed)
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(
                    sim.streams.get("shadowing"),
                    sigma_db=4.0,
                    decorrelation_distance_m=20.0,
                ),
                TemporalTxShadowing(
                    sim.streams.get("shadowing-common"),
                    sigma_db=3.0,
                    tau_s=2.0,
                    hub=NodeId(1),
                ),
            ]
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=4.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(
        sim, channel, fast_path=fast_path, batch=batch,
        cross_broadcast_batch=cross,
    )
    models = list(traces.to_mobility().values())
    ifaces = []
    for index, mobility in enumerate(models):
        ifaces.append(
            NetworkInterface(
                sim,
                medium,
                NodeId(index + 1),
                (lambda m: (lambda: m.position(sim.now)))(mobility),
                RadioConfig(),
                sim.streams.get(f"mac-{index}"),
                name=f"veh{index + 1}",
                mobility=mobility,
            )
        )
    return sim, medium, ifaces


def _trace_storm(
    broadcasts: int, *, fast_path: bool, batch: bool, cross: bool = True
) -> float:
    """Wall-clock seconds for *broadcasts* transmissions while the
    population drives past (transmitters rotate; the window 10–70 s keeps
    most of the fleet on the road and moving)."""
    sim, medium, ifaces = _trace_network(
        fast_path=fast_path, batch=batch, cross=cross
    )
    rate = rate_by_name("dsss-11")
    for i in range(broadcasts):
        tx = ifaces[i % len(ifaces)]
        frame = DataFrame(
            src=tx.node_id,
            dst=ifaces[(i + 1) % len(ifaces)].node_id,
            size_bytes=1000,
            flow_dst=ifaces[(i + 1) % len(ifaces)].node_id,
            seq=i,
        )
        sim.schedule(10.0 + (i * 60.0) / broadcasts, medium.transmit, tx, frame, rate)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def test_trace_broadcast_storm(benchmark, bench_json_sink):
    """The kernel pin on irregular geometry: moving trace population."""
    _trace_storm(60, fast_path=True, batch=True)  # warm dispatch caches
    batch = benchmark.pedantic(
        _trace_storm, args=(400,), kwargs={"fast_path": True, "batch": True},
        rounds=1, iterations=1,
    )
    # Legacy reference arms: cross-broadcast coalescing off, so the
    # ratios measure the full reception ladder against PR 3/PR 6 shapes.
    fast = _trace_storm(400, fast_path=True, batch=False, cross=False)
    exhaustive = _trace_storm(400, fast_path=False, batch=False, cross=False)
    bench_json_sink(
        "trace.broadcast_storm",
        {
            "vehicles": 64,
            "broadcasts": 400,
            "batch_s": round(batch, 4),
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "speedup": round(exhaustive / batch, 2),
            "batch_vs_fast_speedup": round(fast / batch, 2),
        },
    )
    # Generous floors (CI machines are noisy); the committed
    # BENCH_kernel.json records the actual measured ratios.
    assert exhaustive / batch > 1.5
    assert fast / batch > 1.2


def _round_seconds(
    config: TraceScenarioConfig, *, fast_path: bool, batch: bool,
    cross: bool = True,
) -> float:
    """Wall-clock seconds for one fully-built-and-run scenario round."""
    radio = dataclasses.replace(
        config.radio, reception_fast_path=fast_path, reception_batch=batch,
        cross_broadcast_batch=cross,
    )
    ctx = build_trace_round(dataclasses.replace(config, radio=radio), 0)
    t0 = time.perf_counter()
    ctx.run()
    return time.perf_counter() - t0


def test_trace_scenario_ladder(bench_json_sink):
    """The honest end-to-end number: protocol-bound, kernel still ahead.

    A full dense round spends most of its time in the event kernel and
    protocol layers (beaconing, recovery, per-receiver deliveries), so
    the batch kernel's end-to-end margin is Amdahl-damped — it must
    match-or-beat the scalar paths, never regress them.  Culling cannot
    help here at all: a 20 m-gap convoy is genuinely all-reachable, so
    fast ≈ exhaustive by construction (same honesty note as the
    multi-AP large-N bench).
    """
    # Warm NumPy dispatch caches and the synth/trace memo off the clock.
    small = dataclasses.replace(
        DENSE, synth=dataclasses.replace(DENSE.synth, vehicles=8, duration_s=20.0)
    )
    _round_seconds(small, fast_path=True, batch=True)
    # Best-of-2 per arm: a full round is ~10 s, single samples swing by
    # ~20% under scheduler noise while the end-to-end margin is only
    # ~1.2×, so one bad draw flips the floor below.  The minimum is the
    # honest hot-path number; the committed JSON records it.
    batch = min(
        _round_seconds(DENSE, fast_path=True, batch=True) for _ in range(2)
    )
    fast = min(
        _round_seconds(DENSE, fast_path=True, batch=False, cross=False)
        for _ in range(2)
    )
    exhaustive = min(
        _round_seconds(DENSE, fast_path=False, batch=False, cross=False)
        for _ in range(2)
    )
    bench_json_sink(
        "trace.scenario_ladder",
        {
            "vehicles": DENSE.synth.vehicles,
            "served": DENSE.served_vehicles,
            "batch_s": round(batch, 4),
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "speedup": round(exhaustive / batch, 2),
            "batch_vs_fast_speedup": round(fast / batch, 2),
        },
    )
    # The end-to-end floor is deliberately modest: the kernel's own
    # ratios are pinned by test_trace_broadcast_storm above.
    assert exhaustive / batch > 1.05
    assert fast / batch > 1.0


def test_trace_mobility_batch_query(bench_json_sink):
    """Scene-track batching: one vectorized pass vs per-model queries.

    The medium issues one ``positions_at_time`` per mobility batch group
    per timestamp; because ``TraceSet.to_mobility`` puts every moving
    vehicle on one shared polyline, that is a single call for the whole
    population.  Ratio recorded as ``*_ratio`` (not ``*speedup*``):
    sub-millisecond timings are too jittery for the CI regression gate.
    """
    traces = synth_traces(
        vehicles=64, duration_s=120.0, road_length_m=2400.0, entry_gap_s=1.0, seed=5
    )
    models = [
        m for m in traces.to_mobility().values() if isinstance(m, TraceMobility)
    ]
    assert len({m.batch_key() for m in models}) == 1
    times = np.linspace(0.0, 120.0, 2000)

    t0 = time.perf_counter()
    for t in times.tolist():
        TraceMobility.positions_at_time(models, t)
    batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    for t in times.tolist():
        for m in models:
            m.position(t)
    scalar = time.perf_counter() - t0

    bench_json_sink(
        "trace.mobility_batch_query",
        {
            "models": len(models),
            "timestamps": len(times),
            "batched_s": round(batched, 4),
            "scalar_s": round(scalar, 4),
            "batch_ratio": round(scalar / batched, 2),
        },
    )
    assert scalar / batched > 1.0
