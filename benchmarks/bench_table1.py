"""Experiment ``table1`` — regenerate the paper's Table 1.

Paper values (30 rounds, urban loop): per-car losses before cooperation
23.4 / 26.9 / 28.6 %, after cooperation 10.5 / 17.3 / 15.7 % — i.e.
cooperation roughly halves residual loss.  The benchmark times one full
simulation round (the unit of work behind every Table-1 cell) and prints
the regenerated table next to the paper's percentages.
"""

from repro.analysis.stats import compute_table1
from repro.analysis.report import render_table1
from repro.experiments.scenario import build_urban_round
from repro.experiments.testbed import PAPER_TABLE1, paper_testbed_config


def test_table1(benchmark, urban_result, artifact_sink):
    cfg = paper_testbed_config()

    def one_round():
        ctx = build_urban_round(cfg, 0)
        ctx.run()
        return ctx

    benchmark.pedantic(one_round, rounds=3, iterations=1)

    rows = compute_table1(urban_result.matrices_by_round())
    text = render_table1(rows, paper_reference=PAPER_TABLE1)
    artifact_sink("table1", text)

    # Shape assertions: cooperation roughly halves losses for every car.
    for row in rows.values():
        assert row.lost_after_mean < row.lost_before_mean
        assert row.loss_reduction_pct > 30.0
        assert 15.0 < row.lost_before_pct < 50.0
