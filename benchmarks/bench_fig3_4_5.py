"""Experiments ``fig3``/``fig4``/``fig5`` — per-packet reception curves.

Each figure plots, for the flow addressed to car *i*, the probability that
each of the three cars received each packet number directly from the AP.
The paper's shape: the destination's curve is high while it is deep in
coverage and collapses at its own entry (Region I) or exit (Region III)
edge, where the *other* cars — shifted in space — still receive well.
"""

import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.reception_prob import reception_curves
from repro.analysis.regions import estimate_regions
from repro.analysis.report import format_series
from repro.mac.frames import NodeId

CARS = [NodeId(1), NodeId(2), NodeId(3)]
NAMES = {car: f"car {car}" for car in CARS}


@pytest.mark.parametrize("flow_car", CARS, ids=["fig3", "fig4", "fig5"])
def test_reception_probability_figure(flow_car, benchmark, urban_result, artifact_sink):
    matrices = urban_result.matrices_for_flow(flow_car)

    curves = benchmark(reception_curves, matrices, CARS, car_names=NAMES)
    smoothed = [curves[car].smoothed(7) for car in CARS]
    regions = estimate_regions(matrices, CARS)

    figure_number = 2 + int(flow_car)
    header = (
        f"Figure {figure_number}: P(reception) of packets addressed to car "
        f"{flow_car}\nRegion I ends ~pkt {regions.region_i_end}, Region III "
        f"starts ~pkt {regions.region_iii_start} (window ≈ {regions.window_length})"
    )
    text = (
        header
        + "\n"
        + ascii_plot(smoothed, title="")
        + "\n"
        + format_series(smoothed, every=15)
    )
    artifact_sink(f"fig{figure_number}", text)

    # Shape assertions ----------------------------------------------------
    destination = curves[flow_car].probabilities
    others = [curves[car].probabilities for car in CARS if car != flow_car]
    window = regions.window_length

    # Region II: the destination receives most packets directly.
    mid = slice(regions.region_i_end + 5, regions.region_iii_start - 5)
    mid_values = destination[mid]
    assert sum(mid_values) / max(len(mid_values), 1) > 0.5

    # Region structure exists: I and III are non-trivial slices.
    assert 1 <= regions.region_i_end < regions.region_iii_start <= window

    # Staggered platoon: for car 1's flow the followers lag at the start;
    # for car 3's flow the leaders fade at the end (paper Figs 3 and 5).
    if flow_car == NodeId(1):
        head = slice(0, max(regions.region_i_end - 5, 3))
        for other in others:
            assert sum(destination[head]) >= sum(other[head])
    if flow_car == NodeId(3):
        tail = slice(regions.region_iii_start + 5, window)
        leader = curves[NodeId(1)].probabilities
        assert sum(destination[tail]) >= sum(leader[tail])
