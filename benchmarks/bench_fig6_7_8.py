"""Experiments ``fig6``/``fig7``/``fig8`` — after-coop vs joint reception.

The paper's key near-optimality result: for every car the probability of
holding a packet *after* the Cooperative-ARQ phase is almost coincident
with the joint probability that *any* platoon car received it — the
protocol behaves like "a virtual car which uses the better reception
conditions of all of them".
"""

import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.joint import coop_curves, optimality_gap
from repro.analysis.report import format_series
from repro.mac.frames import NodeId

CARS = [NodeId(1), NodeId(2), NodeId(3)]


@pytest.mark.parametrize("flow_car", CARS, ids=["fig6", "fig7", "fig8"])
def test_after_coop_vs_joint_figure(flow_car, benchmark, urban_result, artifact_sink):
    matrices = urban_result.matrices_for_flow(flow_car)

    curves = benchmark(coop_curves, matrices, car_name=f"car {flow_car}")
    gap = optimality_gap(matrices)

    figure_number = 5 + int(flow_car)
    smoothed = [curves.joint.smoothed(7), curves.after_coop.smoothed(7)]
    text = (
        f"Figure {figure_number}: reception with C-ARQ in car {flow_car} "
        f"vs joint reception\nmean optimality gap (joint − after-coop) = {gap:.4f}\n"
        + ascii_plot(smoothed, title="")
        + "\n"
        + format_series(smoothed, every=15)
    )
    artifact_sink(f"fig{figure_number}", text)

    # Shape assertions ----------------------------------------------------
    # 1. Near-optimality: the two curves are "almost coincident".
    assert gap <= 0.02

    # 2. Pointwise: after-coop never exceeds joint (no invented packets),
    #    and tracks it within a small margin almost everywhere.
    after = curves.after_coop.probabilities
    joint = curves.joint.probabilities
    close = 0
    for a, j in zip(after, joint):
        assert a <= j + 1e-9
        if j - a <= 0.15:
            close += 1
    assert close / len(joint) > 0.9
