"""Experiment ``ablate-selection`` — cooperator-selection strategies (§6).

The paper leaves "an algorithm for selecting the optimal cooperators" as
future work.  With a 5-car platoon this ablation compares using every
neighbour (the prototype), the best-2 by HELLO RSSI, and a random-2
control: selection should cut responder traffic with only a small loss
penalty, and BestK should beat RandomK.
"""

from dataclasses import replace

import numpy as np

from repro.analysis.report import format_table
from repro.core.selection import AllNeighbors, BestK, RandomK
from repro.experiments.runner import run_urban_experiment
from repro.experiments.testbed import paper_testbed_config

ROUNDS = 5


def run_strategy(strategy):
    base = paper_testbed_config(seed=777)
    cfg = replace(
        base,
        platoon=replace(
            base.platoon,
            n_cars=5,
            driver_styles=("normal", "timid", "aggressive", "normal", "timid"),
        ),
        carq=replace(base.carq, selection=strategy),
    )
    result = run_urban_experiment(cfg, rounds=ROUNDS)
    tx = after = responses = 0
    for outcome in result.rounds:
        for matrix in outcome.matrices.values():
            tx += matrix.tx_by_ap
            after += matrix.lost_after_coop
        for stats in outcome.stats.values():
            responses += stats.responses_sent
    return {
        "after_pct": 100.0 * after / tx,
        "responses": responses / ROUNDS,
    }


def test_cooperator_selection_ablation(benchmark, artifact_sink):
    all_neighbors = run_strategy(AllNeighbors())
    best2 = benchmark.pedantic(
        run_strategy, args=(BestK(2),), rounds=1, iterations=1
    )
    random2 = run_strategy(RandomK(2, np.random.default_rng(0)))

    rows = [
        ["all neighbours (paper)", f"{all_neighbors['after_pct']:.1f}%",
         f"{all_neighbors['responses']:.0f}"],
        ["best-2 by RSSI", f"{best2['after_pct']:.1f}%", f"{best2['responses']:.0f}"],
        ["random-2", f"{random2['after_pct']:.1f}%", f"{random2['responses']:.0f}"],
    ]
    text = format_table(
        ["Strategy", "Loss after coop", "Coop responses/round"],
        rows,
        title="Cooperator selection (5-car platoon)",
    )
    artifact_sink("ablate-selection", text)

    # All-neighbours is the delivery upper bound (more diversity on tap).
    assert all_neighbors["after_pct"] <= best2["after_pct"] + 2.0
    # Selection strategies answer with at most as many responder frames.
    assert best2["responses"] <= all_neighbors["responses"] * 1.1
