"""Experiment ``ablate-batching`` — per-packet vs batched REQUESTs.

§3.3: "one optimization that arises directly is to include in the REQUEST
messages all the missing packets, instead of sending a REQUEST for each
one."  The ablation quantifies it: same recovery, several-fold fewer
request frames and less dark-area airtime.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.experiments.runner import run_urban_experiment
from repro.experiments.testbed import paper_testbed_config

ROUNDS = 6


def run_variant(batched: bool):
    base = paper_testbed_config(seed=501)
    cfg = replace(base, carq=replace(base.carq, batch_requests=batched, max_batch=64))
    result = run_urban_experiment(cfg, rounds=ROUNDS)
    request_frames = recovered = after = tx = 0
    for outcome in result.rounds:
        for stats in outcome.stats.values():
            request_frames += stats.request_frames_sent
        for matrix in outcome.matrices.values():
            tx += matrix.tx_by_ap
            after += matrix.lost_after_coop
            recovered += matrix.lost_before_coop - matrix.lost_after_coop
    return {
        "request_frames": request_frames / ROUNDS,
        "recovered": recovered / ROUNDS,
        "after_pct": 100.0 * after / tx,
    }


def test_batched_requests_ablation(benchmark, artifact_sink):
    per_packet = run_variant(batched=False)
    batched = benchmark.pedantic(run_variant, args=(True,), rounds=1, iterations=1)

    text = format_table(
        ["Variant", "REQUEST frames/round", "Recovered pkts/round", "Loss after coop"],
        [
            [
                "per-packet (paper §3.3 base)",
                f"{per_packet['request_frames']:.0f}",
                f"{per_packet['recovered']:.1f}",
                f"{per_packet['after_pct']:.1f}%",
            ],
            [
                "batched (§3.3 optimisation)",
                f"{batched['request_frames']:.0f}",
                f"{batched['recovered']:.1f}",
                f"{batched['after_pct']:.1f}%",
            ],
        ],
        title="Batched vs per-packet REQUESTs (urban testbed)",
    )
    artifact_sink("ablate-batching", text)

    # Batched requests need several-fold fewer frames at equal recovery.
    assert batched["request_frames"] < per_packet["request_frames"] / 3
    assert batched["after_pct"] <= per_packet["after_pct"] + 2.0
