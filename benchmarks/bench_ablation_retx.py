"""Experiment ``ablate-retx`` — retransmission policies vs C-ARQ (§3.2/§6).

The paper disables AP retransmissions so the whole coverage window carries
*new* data, betting on dark-area recovery.  This ablation measures the
trade: the paper's design (no retx + C-ARQ) against blind double
transmission and against the in-coverage NACK/ARQ baseline, all on the
same testbed.  Metric: distinct packets delivered to the destination
(after any recovery) per AP data frame spent — airtime efficiency.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.core.retransmission import FixedRetransmission
from repro.experiments.baseline_runner import (
    build_baseline_round,
    collect_baseline_matrices,
)
from repro.experiments.runner import collect_round
from repro.experiments.scenario import build_urban_round
from repro.experiments.testbed import paper_testbed_config

ROUNDS = 5


def _efficiency(matrices, ap_frames):
    delivered = sum(m.tx_by_ap - m.lost_after_coop for m in matrices.values())
    return delivered, delivered / max(ap_frames, 1)


def run_carq(retx_policy=None):
    cfg = paper_testbed_config(seed=909)
    delivered_total = frames_total = 0
    after = tx = 0
    for index in range(ROUNDS):
        ctx = build_urban_round(cfg, index)
        if retx_policy is not None:
            ctx.ap._retx_policy = retx_policy
        ctx.run()
        outcome = collect_round(ctx, index)
        delivered, _ = _efficiency(outcome.matrices, ctx.ap.iface.frames_sent)
        delivered_total += delivered
        frames_total += ctx.ap.iface.frames_sent
        for matrix in outcome.matrices.values():
            tx += matrix.tx_by_ap
            after += matrix.lost_after_coop
    return {
        "efficiency": delivered_total / frames_total,
        "after_pct": 100.0 * after / tx,
    }


def run_arq_baseline():
    cfg = paper_testbed_config(seed=909)
    delivered_total = frames_total = after = tx = 0
    for index in range(ROUNDS):
        ctx = build_baseline_round(cfg, index, "arq")
        ctx.run()
        matrices = collect_baseline_matrices(ctx)
        delivered, _ = _efficiency(matrices, ctx.ap.iface.frames_sent)
        delivered_total += delivered
        frames_total += ctx.ap.iface.frames_sent
        for matrix in matrices.values():
            tx += matrix.tx_by_ap
            after += matrix.lost_after_coop
    return {
        "efficiency": delivered_total / frames_total,
        "after_pct": 100.0 * after / tx,
    }


def test_retransmission_ablation(benchmark, artifact_sink):
    carq = benchmark.pedantic(run_carq, rounds=1, iterations=1)
    double_tx = run_carq(FixedRetransmission(2))
    arq = run_arq_baseline()

    text = format_table(
        ["Scheme", "Residual loss", "Delivered pkts / AP frame"],
        [
            ["no retx + C-ARQ (paper)", f"{carq['after_pct']:.1f}%",
             f"{carq['efficiency']:.3f}"],
            ["2× blind retx + C-ARQ", f"{double_tx['after_pct']:.1f}%",
             f"{double_tx['efficiency']:.3f}"],
            ["in-coverage NACK ARQ, no coop", f"{arq['after_pct']:.1f}%",
             f"{arq['efficiency']:.3f}"],
        ],
        title="Retransmission policy ablation (urban testbed)",
    )
    artifact_sink("ablate-retx", text)

    # The paper's bet: C-ARQ without retransmissions uses AP airtime more
    # efficiently than either spending it on blind copies or on ARQ.
    assert carq["efficiency"] > double_tx["efficiency"]
    assert carq["efficiency"] > arq["efficiency"]
    # And still ends with less residual loss than the ARQ baseline.
    assert carq["after_pct"] < arq["after_pct"]
