"""Experiment ``overhead-epidemic`` — C-ARQ vs epidemic exchange (§3.3).

§3.3 argues the cooperation "would not behave as epidemic routing":
C-ARQ moves only packets the destination is missing, on demand.  The
comparison runs both schemes in the same dark area and counts the bytes
cars transmit to reach their final delivery: epidemic anti-entropy pays
for summary vectors plus bidirectional flooding.
"""

from repro.analysis.report import format_table
from repro.experiments.baseline_runner import (
    build_baseline_round,
    collect_baseline_matrices,
)
from repro.experiments.runner import collect_round
from repro.experiments.scenario import build_urban_round
from repro.experiments.testbed import paper_testbed_config

ROUNDS = 5


def run_carq():
    cfg = paper_testbed_config(seed=1201)
    car_bytes = tx = after = 0
    for index in range(ROUNDS):
        ctx = build_urban_round(cfg, index)
        ctx.run()
        outcome = collect_round(ctx, index)
        car_bytes += sum(car.iface.bytes_sent for car in ctx.cars.values())
        for matrix in outcome.matrices.values():
            tx += matrix.tx_by_ap
            after += matrix.lost_after_coop
    return {"car_kb": car_bytes / ROUNDS / 1000.0, "after_pct": 100.0 * after / tx}


def run_epidemic():
    cfg = paper_testbed_config(seed=1201)
    car_bytes = tx = after = 0
    for index in range(ROUNDS):
        ctx = build_baseline_round(cfg, index, "epidemic")
        ctx.run()
        matrices = collect_baseline_matrices(ctx)
        car_bytes += sum(car.iface.bytes_sent for car in ctx.cars.values())
        for matrix in matrices.values():
            tx += matrix.tx_by_ap
            after += matrix.lost_after_coop
    return {"car_kb": car_bytes / ROUNDS / 1000.0, "after_pct": 100.0 * after / tx}


def test_epidemic_overhead(benchmark, artifact_sink):
    carq = benchmark.pedantic(run_carq, rounds=1, iterations=1)
    epidemic = run_epidemic()

    text = format_table(
        ["Scheme", "Loss after recovery", "Car-transmitted kB/round"],
        [
            ["C-ARQ (paper)", f"{carq['after_pct']:.1f}%", f"{carq['car_kb']:.0f}"],
            ["epidemic exchange [6]", f"{epidemic['after_pct']:.1f}%",
             f"{epidemic['car_kb']:.0f}"],
        ],
        title="Dark-area recovery overhead",
    )
    artifact_sink("overhead-epidemic", text)

    # Both recover (far below the ~35 % raw loss) …
    assert carq["after_pct"] < 25.0
    assert epidemic["after_pct"] < 25.0
    # … but epidemic anti-entropy costs materially more car airtime.
    assert epidemic["car_kb"] > carq["car_kb"] * 1.3
