"""Experiment ``campaign-speedup`` — parallel campaign vs the serial path.

Runs the same platoon-size campaign twice — serial executor and a
2-worker process pool — and reports wall-clock, speedup, and the per-task
throughput.  The engine guarantees the runs are bit-identical (task seeds
depend only on the spec), which this benchmark also verifies row by row:
the speedup is free of reproducibility cost.

On a single-core container the pool adds overhead instead of speed; the
artifact records whatever the hardware gives, the invariant is identity.
"""

import time

from repro.analysis.report import format_table
from repro.campaign.executor import run_campaign
from repro.campaign.store import MemoryStore
from repro.experiments.scenario import UrbanScenarioConfig
from repro.experiments.sweeps import platoon_size_spec

SIZES = [2, 3]
ROUNDS = 4
WORKERS = 2


def _timed_run(spec, workers):
    store = MemoryStore()
    start = time.perf_counter()
    stats = run_campaign(spec, store, workers=workers)
    elapsed = time.perf_counter() - start
    rows = {t.task_id(): store.get(t.task_id()) for t in spec.expand()}
    return elapsed, stats, rows


def test_campaign_parallel_speedup(artifact_sink):
    spec = platoon_size_spec(UrbanScenarioConfig(seed=55), SIZES, rounds=ROUNDS)

    serial_s, serial_stats, serial_rows = _timed_run(spec, workers=1)
    parallel_s, parallel_stats, parallel_rows = _timed_run(spec, workers=WORKERS)

    assert serial_stats.executed == parallel_stats.executed == len(spec.expand())
    # The load-bearing claim: fan-out never changes a row.
    assert parallel_rows == serial_rows

    rows = [
        ["serial", "1", f"{serial_s:.2f} s",
         f"{serial_stats.executed / serial_s:.2f}/s", "1.00x"],
        ["pool", str(WORKERS), f"{parallel_s:.2f} s",
         f"{parallel_stats.executed / parallel_s:.2f}/s",
         f"{serial_s / parallel_s:.2f}x"],
    ]
    text = format_table(
        ["Executor", "Workers", "Wall clock", "Tasks/s", "Speedup"],
        rows,
        title=(
            f"Campaign executor: {len(spec.expand())} urban tasks "
            f"(platoon sizes {SIZES}, {ROUNDS} rounds), rows bit-identical"
        ),
    )
    artifact_sink("campaign-speedup", text)
