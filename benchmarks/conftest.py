"""Shared fixtures for the benchmark harness.

The urban experiment is expensive (≈0.5 s per round), so one
session-scoped run is shared by every table/figure benchmark.  Each
benchmark writes the artifact it regenerates (table rows / figure series)
to ``benchmarks/output/<experiment id>.txt`` — the numbers recorded in
EXPERIMENTS.md come from these files — and also prints it (visible with
``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import run_urban_experiment
from repro.experiments.testbed import paper_testbed_config

#: Rounds used by the shared urban run (paper: 30; benches trade a little
#: variance for wall-clock time).
URBAN_ROUNDS = 12

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def urban_result():
    """One shared multi-round run of the paper testbed."""
    return run_urban_experiment(paper_testbed_config(rounds=URBAN_ROUNDS))


@pytest.fixture(scope="session")
def artifact_sink():
    """Writer that persists benchmark artifacts for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(experiment_id: str, text: str) -> None:
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n===== {experiment_id} =====")
        print(text)

    return write
