"""Shared fixtures for the benchmark harness.

The urban experiment is expensive (≈0.5 s per round), so one
session-scoped run is shared by every table/figure benchmark.  Each
benchmark writes the artifact it regenerates (table rows / figure series)
to ``benchmarks/output/<experiment id>.txt`` — the numbers recorded in
EXPERIMENTS.md come from these files — and also prints it (visible with
``pytest -s``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.runner import run_urban_experiment
from repro.experiments.testbed import paper_testbed_config
from repro.ioutil import atomic_write_json, atomic_write_text

#: Rounds used by the shared urban run (paper: 30; benches trade a little
#: variance for wall-clock time).
URBAN_ROUNDS = 12

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Machine-readable perf trajectory: kernel and medium throughput numbers
#: land here so future PRs have a baseline to compare against (the CI
#: bench-smoke job uploads it as an artifact).
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_kernel.json"


@pytest.fixture(scope="session")
def urban_result():
    """One shared multi-round run of the paper testbed."""
    return run_urban_experiment(paper_testbed_config(rounds=URBAN_ROUNDS))


@pytest.fixture(scope="session")
def bench_json_sink():
    """Writer that merges ``{key: payload}`` entries into BENCH_kernel.json.

    Entries survive across runs (merge, not overwrite), so one invocation
    of ``bench_kernel.py`` and one of the scenario benches together build
    the full perf record.
    """

    def write(key: str, payload: dict) -> None:
        data = {"schema": 1, "entries": {}}
        if BENCH_JSON.exists():
            data = json.loads(BENCH_JSON.read_text())
        data.setdefault("entries", {})[key] = payload
        # Atomic replace: check_bench_regression.py reads this file as a
        # baseline — an interrupt mid-write must never tear it.
        atomic_write_json(BENCH_JSON, data)
        print(f"\n===== BENCH_kernel.json[{key}] =====")
        print(json.dumps(payload, indent=2, sort_keys=True))

    return write


@pytest.fixture(scope="session")
def artifact_sink():
    """Writer that persists benchmark artifacts for EXPERIMENTS.md."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(experiment_id: str, text: str) -> None:
        atomic_write_text(OUTPUT_DIR / f"{experiment_id}.txt", text + "\n")
        print(f"\n===== {experiment_id} =====")
        print(text)

    return write
