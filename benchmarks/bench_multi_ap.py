"""Experiment ``multi-ap`` — APs needed to download a file (§6).

"…study how the presented loss reduction can reduce the number of APs
that a vehicular node needs to visit to download a file."  Infostations
every 800 m cyclically broadcast a 250-block file per car; cooperative
recovery runs in the gaps.  Paired comparison on identical channel
realisations: infostations passed until the file is complete, with
C-ARQ vs direct reception only.
"""

import math

from repro.analysis.report import format_table
from repro.experiments.multi_ap import MultiApConfig, run_multi_ap_experiment

ROUNDS = 3


def test_multi_ap_download(benchmark, artifact_sink):
    cfg = MultiApConfig(rounds=ROUNDS, seed=67)

    all_rounds = benchmark.pedantic(
        run_multi_ap_experiment, args=(cfg,), rounds=1, iterations=1
    )

    outcomes = [outcome for round_outcomes in all_rounds for outcome in round_outcomes]
    coop = [o.aps_visited_coop for o in outcomes if math.isfinite(o.aps_visited_coop)]
    direct = [
        o.aps_visited_direct for o in outcomes if math.isfinite(o.aps_visited_direct)
    ]
    coop_incomplete = sum(1 for o in outcomes if math.isinf(o.aps_visited_coop))
    direct_incomplete = sum(1 for o in outcomes if math.isinf(o.aps_visited_direct))

    def fmt(values, incomplete):
        if not values:
            return f"never completed ({incomplete} cars)"
        mean = sum(values) / len(values)
        return f"{mean:.1f} APs (+{incomplete} never finished)"

    text = format_table(
        ["Scheme", "Infostations needed for the 250-block file"],
        [
            ["C-ARQ (coop in gaps)", fmt(coop, coop_incomplete)],
            ["direct reception only", fmt(direct, direct_incomplete)],
        ],
        title=f"Multi-AP download, {len(outcomes)} car-rounds, APs every "
        f"{cfg.ap_spacing_m:.0f} m",
    )
    artifact_sink("multi-ap", text)

    # Paired: cooperation never delays completion, and on aggregate
    # completes with strictly fewer infostation visits.
    for outcome in outcomes:
        assert outcome.aps_visited_coop <= outcome.aps_visited_direct
    finished_pairs = [
        (o.aps_visited_coop, o.aps_visited_direct)
        for o in outcomes
        if math.isfinite(o.aps_visited_direct)
    ]
    if finished_pairs:
        assert sum(c for c, _ in finished_pairs) < sum(d for _, d in finished_pairs)
    assert coop_incomplete <= direct_incomplete
