"""Experiment ``multi-ap`` — APs needed to download a file (§6).

"…study how the presented loss reduction can reduce the number of APs
that a vehicular node needs to visit to download a file."  Infostations
every 800 m cyclically broadcast a 250-block file per car; cooperative
recovery runs in the gaps.  Paired comparison on identical channel
realisations: infostations passed until the file is complete, with
C-ARQ vs direct reception only.
"""

import math

from repro.analysis.report import format_table
from repro.experiments.multi_ap import MultiApConfig, run_multi_ap_experiment

ROUNDS = 3


def test_multi_ap_download(benchmark, artifact_sink):
    cfg = MultiApConfig(rounds=ROUNDS, seed=67)

    all_rounds = benchmark.pedantic(
        run_multi_ap_experiment, args=(cfg,), rounds=1, iterations=1
    )

    outcomes = [outcome for round_outcomes in all_rounds for outcome in round_outcomes]
    coop = [o.aps_visited_coop for o in outcomes if math.isfinite(o.aps_visited_coop)]
    direct = [
        o.aps_visited_direct for o in outcomes if math.isfinite(o.aps_visited_direct)
    ]
    coop_incomplete = sum(1 for o in outcomes if math.isinf(o.aps_visited_coop))
    direct_incomplete = sum(1 for o in outcomes if math.isinf(o.aps_visited_direct))

    def fmt(values, incomplete):
        if not values:
            return f"never completed ({incomplete} cars)"
        mean = sum(values) / len(values)
        return f"{mean:.1f} APs (+{incomplete} never finished)"

    text = format_table(
        ["Scheme", "Infostations needed for the 250-block file"],
        [
            ["C-ARQ (coop in gaps)", fmt(coop, coop_incomplete)],
            ["direct reception only", fmt(direct, direct_incomplete)],
        ],
        title=f"Multi-AP download, {len(outcomes)} car-rounds, APs every "
        f"{cfg.ap_spacing_m:.0f} m",
    )
    artifact_sink("multi-ap", text)

    # Paired: cooperation never delays completion, and on aggregate
    # completes with strictly fewer infostation visits.
    for outcome in outcomes:
        assert outcome.aps_visited_coop <= outcome.aps_visited_direct
    finished_pairs = [
        (o.aps_visited_coop, o.aps_visited_direct)
        for o in outcomes
        if math.isfinite(o.aps_visited_direct)
    ]
    if finished_pairs:
        assert sum(c for c, _ in finished_pairs) < sum(d for _, d in finished_pairs)
    assert coop_incomplete <= direct_incomplete


def test_multi_ap_large_n_fast_path(benchmark, bench_json_sink):
    """Largest-N corridor: 20 infostations + 48 cars (68 radios).

    A dense car wave passing closely spaced infostations: the wave's
    broadcasts carry ~60 candidates each (the batch kernel's regime)
    while the many out-of-range infostations keep beaconing into
    near-empty neighborhoods (3-candidate sets, scalar loop) — so this
    case measures the *blended* end-to-end win, protocol and event
    kernel included, not just the reception pipeline.  Three arms over a
    fixed 10-simulated-second window; outcomes are pinned bit-identical
    by ``tests/scenarios/test_fast_path_ab.py``.
    """
    import dataclasses
    import time

    from repro.experiments.multi_ap import build_multi_ap_round

    def window_seconds(fast_path: bool, batch: bool, cross: bool = True) -> float:
        cfg = MultiApConfig(
            road_length_m=4000.0,
            ap_spacing_m=200.0,
            n_cars=48,
            file_blocks=250,
            speed_ms=15.0,
            seed=5,
        )
        cfg = dataclasses.replace(
            cfg,
            radio=dataclasses.replace(
                cfg.radio,
                reception_fast_path=fast_path,
                reception_batch=batch,
                cross_broadcast_batch=cross,
            ),
        )
        ctx = build_multi_ap_round(cfg, 0)
        t0 = time.perf_counter()
        ctx.sim.run(until=10.0)
        return time.perf_counter() - t0

    batch = benchmark.pedantic(
        window_seconds, args=(True, True), rounds=1, iterations=1
    )
    # Reference arms stay on the pre-coalescer legacy paths (cross off)
    # so the recorded speedups measure the whole reception ladder.
    fast = window_seconds(True, False, cross=False)
    exhaustive = window_seconds(False, False, cross=False)
    bench_json_sink(
        "multi_ap.large_n",
        {
            "radios": 68,
            "window_s": 10.0,
            "batch_s": round(batch, 3),
            "fast_s": round(fast, 3),
            "exhaustive_s": round(exhaustive, 3),
            "speedup": round(exhaustive / batch, 2),
            "batch_vs_fast_speedup": round(fast / batch, 2),
        },
    )
    # Generous floor for noisy CI boxes; BENCH_kernel.json records the
    # actual ratios measured on an idle machine.  The batch-vs-fast
    # ratio of this protocol-bound case is recorded (and covered by the
    # CI regression gate's noise tolerance) rather than asserted inline:
    # two sequential 6 s windows on a shared runner don't share
    # instantaneous load, so a hard floor here would only add flakes.
    assert exhaustive / batch > 1.5
