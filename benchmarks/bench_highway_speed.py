"""Experiment ``sweep-speed`` — highway drive-thru losses vs speed.

Reproduces the motivation scenario (Ott & Kutscher [1], cited in §1/§4):
a platoon passing a road-side AP at highway speeds suffers on the order
of 50–60 % losses at the lossy 11 Mb/s setting, getting worse with speed,
and C-ARQ recovers a substantial share in the dark area behind the AP.
"""

from repro.analysis.report import format_table
from repro.experiments.highway import HighwayConfig
from repro.experiments.sweeps import speed_sweep
from repro.units import ms_to_kmh

SPEEDS_MS = [10.0, 20.0, 30.0, 40.0]
ROUNDS = 3


def test_highway_speed_sweep(benchmark, artifact_sink):
    cfg = HighwayConfig(rounds=ROUNDS, seed=31)

    points = benchmark.pedantic(
        speed_sweep, args=(cfg, SPEEDS_MS), rounds=1, iterations=1
    )

    rows = [
        [
            f"{ms_to_kmh(point.parameter):.0f} km/h",
            f"{point.tx_by_ap_mean:.0f}",
            f"{100 * point.lost_before_fraction:.1f}%",
            f"{100 * point.lost_after_fraction:.1f}%",
            f"{100 * point.reduction_fraction:.0f}%",
        ]
        for point in points
    ]
    text = format_table(
        ["Speed", "Pkts in window", "Lost before", "Lost after", "Coop reduction"],
        rows,
        title="Drive-thru losses vs speed (11 Mb/s, after [1])",
    )
    artifact_sink("sweep-speed", text)

    # Shape: losses in the 30–70 % band reported by [1] for the fast passes,
    # window shrinking with speed, and cooperation always helping.
    assert points[-1].lost_before_fraction > 0.3
    assert points[0].tx_by_ap_mean > points[-1].tx_by_ap_mean
    for point in points:
        assert point.lost_after_fraction < point.lost_before_fraction
    # Loss fraction worsens from the slowest to the fastest pass.
    assert points[-1].lost_before_fraction > points[0].lost_before_fraction
