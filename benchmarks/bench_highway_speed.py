"""Experiment ``sweep-speed`` — highway drive-thru losses vs speed.

Reproduces the motivation scenario (Ott & Kutscher [1], cited in §1/§4):
a platoon passing a road-side AP at highway speeds suffers on the order
of 50–60 % losses at the lossy 11 Mb/s setting, getting worse with speed,
and C-ARQ recovers a substantial share in the dark area behind the AP.
"""

from repro.analysis.report import format_table
from repro.experiments.highway import HighwayConfig
from repro.experiments.sweeps import speed_sweep
from repro.units import ms_to_kmh

SPEEDS_MS = [10.0, 20.0, 30.0, 40.0]
ROUNDS = 3


def test_highway_speed_sweep(benchmark, artifact_sink):
    cfg = HighwayConfig(rounds=ROUNDS, seed=31)

    points = benchmark.pedantic(
        speed_sweep, args=(cfg, SPEEDS_MS), rounds=1, iterations=1
    )

    rows = [
        [
            f"{ms_to_kmh(point.parameter):.0f} km/h",
            f"{point.tx_by_ap_mean:.0f}",
            f"{100 * point.lost_before_fraction:.1f}%",
            f"{100 * point.lost_after_fraction:.1f}%",
            f"{100 * point.reduction_fraction:.0f}%",
        ]
        for point in points
    ]
    text = format_table(
        ["Speed", "Pkts in window", "Lost before", "Lost after", "Coop reduction"],
        rows,
        title="Drive-thru losses vs speed (11 Mb/s, after [1])",
    )
    artifact_sink("sweep-speed", text)

    # Shape: losses in the 30–70 % band reported by [1] for the fast passes,
    # window shrinking with speed, and cooperation always helping.
    assert points[-1].lost_before_fraction > 0.3
    assert points[0].tx_by_ap_mean > points[-1].tx_by_ap_mean
    for point in points:
        assert point.lost_after_fraction < point.lost_before_fraction
    # Loss fraction worsens from the slowest to the fastest pass.
    assert points[-1].lost_before_fraction > points[0].lost_before_fraction


def test_highway_large_n_fast_path(benchmark, bench_json_sink):
    """Largest-N highway: 96 vehicles over 14.6 km of dense traffic.

    Dense through-traffic (``spread_along_road``, 150 m gaps) is the
    batch kernel's target regime: each broadcast reaches most of the
    fleet, so per-candidate Python cost dominates the scalar paths.
    Three arms over a fixed 5-simulated-second window — the vectorized
    batch kernel (default), PR 3's scalar fast path, and the scalar
    exhaustive reference; outcomes are pinned bit-identical by the
    fast-path/batch A/B test.
    """
    import dataclasses
    import time

    from repro.experiments.highway import build_highway_round

    def window_seconds(fast_path: bool, batch: bool, cross: bool = True) -> float:
        cfg = HighwayConfig(
            n_cars=96,
            gap_m=150.0,
            speed_ms=30.0,
            road_length_m=14625.0,
            seed=5,
            spread_along_road=True,
        )
        cfg = dataclasses.replace(
            cfg,
            radio=dataclasses.replace(
                cfg.radio,
                reception_fast_path=fast_path,
                reception_batch=batch,
                cross_broadcast_batch=cross,
            ),
        )
        ctx = build_highway_round(cfg, 0)
        t0 = time.perf_counter()
        ctx.sim.run(until=5.0)
        return time.perf_counter() - t0

    batch = benchmark.pedantic(
        window_seconds, args=(True, True), rounds=1, iterations=1
    )
    # Legacy reference arms keep cross-broadcast coalescing off.
    fast = window_seconds(True, False, cross=False)
    exhaustive = window_seconds(False, False, cross=False)
    bench_json_sink(
        "highway.large_n",
        {
            "radios": 97,
            "window_s": 5.0,
            "batch_s": round(batch, 3),
            "fast_s": round(fast, 3),
            "exhaustive_s": round(exhaustive, 3),
            "speedup": round(exhaustive / batch, 2),
            "batch_vs_fast_speedup": round(fast / batch, 2),
        },
    )
    # Generous floors for noisy CI boxes; BENCH_kernel.json records the
    # actual ratios measured on an idle machine.
    assert exhaustive / batch > 1.4
    assert fast / batch > 1.2
