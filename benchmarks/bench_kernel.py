"""Experiment ``kernel`` — discrete-event kernel microbenchmarks.

Not a paper artifact: these keep the substrate honest.  A full urban
round schedules on the order of 10⁵ events; the kernel must sustain
hundreds of thousands of events per second for the 30-round experiment
to stay interactive.
"""

from repro.sim import Signal, Simulator


def test_event_throughput(benchmark):
    """Schedule-and-drain 50k events."""

    def run():
        sim = Simulator()
        for i in range(50_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0


def test_process_context_switching(benchmark):
    """10k generator-process wake-ups."""

    def run():
        sim = Simulator()
        counter = []

        def ticker():
            for _ in range(10_000):
                yield 0.001
            counter.append(sim.now)

        sim.process(ticker())
        sim.run()
        return counter[0]

    result = benchmark(run)
    assert result > 9.9


def test_signal_fanout(benchmark):
    """One signal waking 1000 waiting processes, 10 times."""

    def run():
        sim = Simulator()
        woken = []
        signal = Signal("broadcast")

        def waiter():
            for _ in range(10):
                value = yield signal
                woken.append(value)

        for _ in range(1000):
            sim.process(waiter())
        for shot in range(10):
            sim.schedule(float(shot + 1), signal.trigger, shot)
        sim.run()
        return len(woken)

    assert benchmark(run) == 10_000
