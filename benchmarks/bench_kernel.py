"""Experiment ``kernel`` — discrete-event kernel microbenchmarks.

Not a paper artifact: these keep the substrate honest.  A full urban
round schedules on the order of 10⁵ events; the kernel must sustain
hundreds of thousands of events per second for the 30-round experiment
to stay interactive.

Each benchmark also records its headline number into
``BENCH_kernel.json`` (via ``bench_json_sink``) so the perf trajectory
is machine-readable across PRs.
"""

import time

from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.interface import NetworkInterface
from repro.mac.medium import Medium
from repro.radio.channel import Channel
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.sim import Signal, Simulator


def test_event_throughput(benchmark, bench_json_sink):
    """Schedule-and-drain 50k events."""

    def run():
        sim = Simulator()
        for i in range(50_000):
            sim.schedule(i * 1e-4, lambda: None)
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0
    t0 = time.perf_counter()
    run()
    bench_json_sink(
        "kernel.event_throughput",
        {"events": 50_000, "events_per_s": round(50_000 / (time.perf_counter() - t0))},
    )


def test_process_context_switching(benchmark):
    """10k generator-process wake-ups."""

    def run():
        sim = Simulator()
        counter = []

        def ticker():
            for _ in range(10_000):
                yield 0.001
            counter.append(sim.now)

        sim.process(ticker())
        sim.run()
        return counter[0]

    result = benchmark(run)
    assert result > 9.9


def test_signal_fanout(benchmark):
    """One signal waking 1000 waiting processes, 10 times."""

    def run():
        sim = Simulator()
        woken = []
        signal = Signal("broadcast")

        def waiter():
            for _ in range(10):
                value = yield signal
                woken.append(value)

        for _ in range(1000):
            sim.process(waiter())
        for shot in range(10):
            sim.schedule(float(shot + 1), signal.trigger, shot)
        sim.run()
        return len(woken)

    assert benchmark(run) == 10_000


def _line_network(n_nodes: int, *, fast_path: bool, seed: int = 11):
    """One medium with *n_nodes* static interfaces spaced along a line."""
    sim = Simulator(seed=seed)
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(sim, channel, fast_path=fast_path)
    ifaces = []
    for index in range(n_nodes):
        position = Vec2(60.0 * index, 0.0)
        ifaces.append(
            NetworkInterface(
                sim,
                medium,
                NodeId(index + 1),
                (lambda p: (lambda: p))(position),
                RadioConfig(),
                sim.streams.get(f"mac-{index}"),
                name=f"if{index + 1}",
            )
        )
    return sim, medium, ifaces


def _broadcast_storm(n_nodes: int, broadcasts: int, *, fast_path: bool) -> float:
    """Wall-clock seconds for *broadcasts* medium-level transmissions."""
    sim, medium, ifaces = _line_network(n_nodes, fast_path=fast_path)
    rate = rate_by_name("dsss-11")
    frame = DataFrame(
        src=ifaces[0].node_id,
        dst=ifaces[-1].node_id,
        size_bytes=1000,
        flow_dst=ifaces[-1].node_id,
        seq=1,
    )
    for i in range(broadcasts):
        tx = ifaces[i % n_nodes]
        shifted = DataFrame(
            src=tx.node_id, dst=frame.dst, size_bytes=1000, flow_dst=frame.dst, seq=i
        )
        sim.schedule(i * 2e-3, medium.transmit, tx, shifted, rate)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def test_medium_broadcast_o_reachable(benchmark, bench_json_sink):
    """The tentpole pin: broadcast cost is O(reachable), not O(N).

    200 nodes on a 12 km line, each broadcast reaching only its ~60-node
    radio neighborhood: the culling fast path must beat the exhaustive
    path by a wide margin, and the gap must grow with N (measured at
    N=200 against N=50 for the record).
    """
    fast = benchmark.pedantic(
        _broadcast_storm, args=(200, 400), kwargs={"fast_path": True},
        rounds=1, iterations=1,
    )
    exhaustive = _broadcast_storm(200, 400, fast_path=False)
    small_fast = _broadcast_storm(50, 400, fast_path=True)
    small_exhaustive = _broadcast_storm(50, 400, fast_path=False)
    bench_json_sink(
        "medium.broadcast_storm",
        {
            "nodes": 200,
            "broadcasts": 400,
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "speedup": round(exhaustive / fast, 2),
            "n50_fast_s": round(small_fast, 4),
            "n50_exhaustive_s": round(small_exhaustive, 4),
            "n50_speedup": round(small_exhaustive / small_fast, 2),
        },
    )
    # Generous floor (CI machines are noisy); the committed
    # BENCH_kernel.json records the actual measured ratio.
    assert exhaustive / fast > 1.5
