"""Experiment ``kernel`` — discrete-event kernel microbenchmarks.

Not a paper artifact: these keep the substrate honest.  A full urban
round schedules on the order of 10⁵ events; the kernel must sustain
hundreds of thousands of events per second for the 30-round experiment
to stay interactive.

Each benchmark also records its headline number into
``BENCH_kernel.json`` (via ``bench_json_sink``) so the perf trajectory
is machine-readable across PRs.
"""

import time

from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.interface import NetworkInterface
from repro.mac.medium import Medium, _Arrival
from repro.radio.channel import Channel, LinkSample
from repro.radio.fading import RicianFading
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)
from repro.sim import Signal, Simulator, gc_paused


def test_event_throughput(benchmark, bench_json_sink):
    """Schedule-and-drain 50k events.

    Runs under the kernel's ``gc_paused()`` bulk-load mode: scheduling
    50k events up front otherwise triggers full cyclic-GC collections
    that re-scan the entire pending set mid-burst and dominate the
    measurement (``run()`` already pauses collection internally; the
    context manager extends that to the pre-load loop, which is how any
    bulk-loading driver is expected to use the kernel).
    """

    def run():
        sim = Simulator()
        with gc_paused():
            for i in range(50_000):
                sim.schedule(i * 1e-4, lambda: None)
            sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0
    t0 = time.perf_counter()
    run()
    bench_json_sink(
        "kernel.event_throughput",
        {"events": 50_000, "events_per_s": round(50_000 / (time.perf_counter() - t0))},
    )


def test_scheduler_wheel_vs_heap(benchmark, bench_json_sink):
    """Satellite pin: the slot-wheel scheduler vs the legacy binary heap.

    Identical workload through both queue implementations — 50k events
    on a mixed grid (MAC-slot-aligned and off-grid times, the shape
    frame scheduling produces) — so the recorded ``speedup`` isolates
    the data structure from everything else.  Pop order is bit-identical
    (pinned by the Hypothesis equivalence suite).
    """

    def storm(scheduler: str) -> float:
        sim = Simulator(scheduler=scheduler)
        with gc_paused():
            for i in range(50_000):
                # Mixed grid: slot-aligned bulk, off-grid stragglers.
                t = i * 2e-5 if i % 4 else i * 1e-4 + 3.3e-7
                sim.schedule(t, lambda: None)
            t0 = time.perf_counter()
            sim.run()
            return time.perf_counter() - t0

    storm("wheel")  # warm-up
    wheel = benchmark.pedantic(storm, args=("wheel",), rounds=3, iterations=1)
    heap = storm("heap")
    bench_json_sink(
        "kernel.scheduler_wheel",
        {
            "events": 50_000,
            "wheel_s": round(wheel, 4),
            "heap_s": round(heap, 4),
            "drain_speedup": round(heap / wheel, 2),
        },
    )
    assert wheel > 0 and heap > 0


def test_protocol_step(benchmark, bench_json_sink):
    """Tentpole pin: pooled protocol stepping vs the legacy callback path.

    One full urban round (real channel, mobility and C-ARQ protocol),
    run twice: with the :class:`~repro.core.engine.ProtocolPool` as the
    medium's coalesced delivery sink (default — one coverage-sweep event
    per AP broadcast, SoA deadlines) and with the legacy per-vehicle
    receive callbacks plus cancel/re-schedule coverage watchdogs.  The
    result rows are bit-identical (pinned by the scenario A/B suite);
    only the event traffic differs.  Recorded as ``*_ratio``: full-round
    wall clock includes channel sampling, so the pool's share jitters
    too much for the CI ``*speedup*`` gate.
    """
    import dataclasses

    from repro.scenarios.urban import UrbanScenarioConfig, build_urban_round

    def round_seconds(batched_delivery: bool) -> float:
        cfg = UrbanScenarioConfig(seed=17, round_duration_s=60.0)
        cfg = dataclasses.replace(
            cfg,
            radio=dataclasses.replace(
                cfg.radio, batched_delivery=batched_delivery
            ),
        )
        ctx = build_urban_round(cfg, 0)
        t0 = time.perf_counter()
        ctx.run()
        return time.perf_counter() - t0

    round_seconds(True)  # warm-up
    pooled = benchmark.pedantic(
        round_seconds, args=(True,), rounds=3, iterations=1
    )
    legacy = round_seconds(False)
    bench_json_sink(
        "kernel.protocol_step",
        {
            "round_s": 60.0,
            "pooled_s": round(pooled, 4),
            "legacy_s": round(legacy, 4),
            "pool_ratio": round(legacy / pooled, 2),
        },
    )
    assert pooled > 0 and legacy > 0


def test_process_context_switching(benchmark):
    """10k generator-process wake-ups."""

    def run():
        sim = Simulator()
        counter = []

        def ticker():
            for _ in range(10_000):
                yield 0.001
            counter.append(sim.now)

        sim.process(ticker())
        sim.run()
        return counter[0]

    result = benchmark(run)
    assert result > 9.9


def test_signal_fanout(benchmark):
    """One signal waking 1000 waiting processes, 10 times."""

    def run():
        sim = Simulator()
        woken = []
        signal = Signal("broadcast")

        def waiter():
            for _ in range(10):
                value = yield signal
                woken.append(value)

        for _ in range(1000):
            sim.process(waiter())
        for shot in range(10):
            sim.schedule(float(shot + 1), signal.trigger, shot)
        sim.run()
        return len(woken)

    assert benchmark(run) == 10_000


def _line_network(
    n_nodes: int, *, fast_path: bool, batch: bool, cross: bool = True,
    spacing_m: float = 25.0, seed: int = 11,
):
    """One medium with *n_nodes* static interfaces spaced along a line.

    The channel is the representative urban stack — Gudmundson +
    transmitter-anchored OU shadowing and Rician fading — so the storm
    exercises the full per-frame reception pipeline the scenarios run,
    not just path-loss arithmetic.  The default 25 m spacing makes the
    broadcast neighborhoods dense (~100 reachable candidates), the
    regime the batch kernel targets; pass a wider spacing for the
    sparse O(reachable) culling pin.
    """
    sim = Simulator(seed=seed)
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(
                    sim.streams.get("shadowing"),
                    sigma_db=4.0,
                    decorrelation_distance_m=20.0,
                ),
                TemporalTxShadowing(
                    sim.streams.get("shadowing-common"),
                    sigma_db=3.0,
                    tau_s=2.0,
                    hub=NodeId(1),
                ),
            ]
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=4.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(
        sim, channel, fast_path=fast_path, batch=batch,
        cross_broadcast_batch=cross,
    )
    ifaces = []
    for index in range(n_nodes):
        position = Vec2(spacing_m * index, 0.0)
        ifaces.append(
            NetworkInterface(
                sim,
                medium,
                NodeId(index + 1),
                (lambda p: (lambda: p))(position),
                RadioConfig(),
                sim.streams.get(f"mac-{index}"),
                name=f"if{index + 1}",
            )
        )
    return sim, medium, ifaces


def _broadcast_storm(
    n_nodes: int, broadcasts: int, *, fast_path: bool, batch: bool,
    cross: bool = True, spacing_m: float = 25.0,
) -> float:
    """Wall-clock seconds for *broadcasts* medium-level transmissions."""
    sim, medium, ifaces = _line_network(
        n_nodes, fast_path=fast_path, batch=batch, cross=cross,
        spacing_m=spacing_m,
    )
    rate = rate_by_name("dsss-11")
    frame = DataFrame(
        src=ifaces[0].node_id,
        dst=ifaces[-1].node_id,
        size_bytes=1000,
        flow_dst=ifaces[-1].node_id,
        seq=1,
    )
    for i in range(broadcasts):
        tx = ifaces[i % n_nodes]
        shifted = DataFrame(
            src=tx.node_id, dst=frame.dst, size_bytes=1000, flow_dst=frame.dst, seq=i
        )
        sim.schedule(i * 2e-3, medium.transmit, tx, shifted, rate)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def test_medium_broadcast_batch_kernel(benchmark, bench_json_sink):
    """The tentpole pin: dense broadcasts run as one NumPy batch.

    200 nodes on a 5 km line with the full stochastic channel stack.
    Three arms, all bit-identical by the A/B pins: the batch kernel
    (default), PR 3's scalar fast path (culling, per-candidate Python),
    and the fully scalar exhaustive reference.  The batch kernel must
    clearly beat the scalar fast path at this density and crush the
    exhaustive path; N=50 is recorded for the scaling story.
    """
    # Warm NumPy's dispatch caches off the clock so the measured batch
    # arm is not charged for one-time import/ufunc setup.
    _broadcast_storm(50, 40, fast_path=True, batch=True)
    batch = benchmark.pedantic(
        _broadcast_storm, args=(200, 400),
        kwargs={"fast_path": True, "batch": True},
        rounds=1, iterations=1,
    )
    # The reference arms are the true pre-coalescer legacy paths: the
    # cross-broadcast queue stays off so they measure PR 3/PR 6 shapes.
    fast = _broadcast_storm(200, 400, fast_path=True, batch=False, cross=False)
    exhaustive = _broadcast_storm(
        200, 400, fast_path=False, batch=False, cross=False
    )
    small_batch = _broadcast_storm(50, 400, fast_path=True, batch=True)
    small_fast = _broadcast_storm(
        50, 400, fast_path=True, batch=False, cross=False
    )
    small_exhaustive = _broadcast_storm(
        50, 400, fast_path=False, batch=False, cross=False
    )
    bench_json_sink(
        "medium.broadcast_storm",
        {
            "nodes": 200,
            "broadcasts": 400,
            "batch_s": round(batch, 4),
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "speedup": round(exhaustive / batch, 2),
            "batch_vs_fast_speedup": round(fast / batch, 2),
            "n50_batch_s": round(small_batch, 4),
            "n50_fast_s": round(small_fast, 4),
            "n50_exhaustive_s": round(small_exhaustive, 4),
            # Named "ratio", not "speedup", deliberately: sub-second
            # single-iteration timings jitter too much on shared runners
            # for the CI regression gate (which keys on *speedup*).
            "n50_ratio": round(small_exhaustive / small_batch, 2),
        },
    )
    # Generous floors (CI machines are noisy); the committed
    # BENCH_kernel.json records the actual measured ratios.
    assert exhaustive / batch > 2.0
    assert fast / batch > 1.3


def test_medium_broadcast_o_reachable_sparse(bench_json_sink):
    """PR 3's pin, kept alive: sparse broadcasts stay O(reachable).

    200 nodes at 60 m spacing (12 km line) with the batch kernel off —
    each broadcast reaches only its ~40-node neighborhood, so the
    culling fast path alone must beat the exhaustive path by a wide
    margin.  This guards the neighbor index + reachability bound
    independently of the batch kernel's dense-regime numbers above.
    """
    fast = _broadcast_storm(
        200, 400, fast_path=True, batch=False, cross=False, spacing_m=60.0
    )
    exhaustive = _broadcast_storm(
        200, 400, fast_path=False, batch=False, cross=False, spacing_m=60.0
    )
    bench_json_sink(
        "medium.broadcast_storm_sparse",
        {
            "nodes": 200,
            "broadcasts": 400,
            "spacing_m": 60.0,
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "cull_speedup": round(exhaustive / fast, 2),
        },
    )
    assert exhaustive / fast > 1.5


def test_broadcast_storm_counter_snapshot(bench_json_sink):
    """Observability satellite: the storm's shape, in counters.

    One dense and one sparse storm under ``obs.instrumented()``, with
    the medium/kernel counter snapshot recorded next to the wall-clock
    numbers above — so the perf record says not just *how fast* but
    *how much work*: events fired, candidates before/after the cull,
    batch-vs-scalar broadcast split, batch lane distribution.  The
    regression gate only compares ``*speedup*`` keys, so these are
    informational (and tolerated by ``check_bench_regression.py``).
    """
    from repro import obs

    def storm_snapshot(spacing_m: float) -> dict:
        with obs.instrumented():
            _broadcast_storm(
                100, 200, fast_path=True, batch=True, spacing_m=spacing_m
            )
            snap = obs.registry().snapshot()
        before = snap["medium.candidates_before_cull"]["value"]
        after = snap["medium.candidates_after_cull"]["value"]
        lanes = snap["medium.batch_lanes"]
        return {
            "events_fired": snap["sim.events_fired"]["value"],
            "broadcasts": snap["medium.broadcasts"]["value"],
            "batch_broadcasts": snap["medium.batch_broadcasts"]["value"],
            "scalar_broadcasts": snap["medium.scalar_broadcasts"]["value"],
            "candidates_before_cull": before,
            "candidates_after_cull": after,
            "cull_keep_pct": round(100.0 * after / before, 1) if before else 0.0,
            "batch_lanes_mean": (
                round(lanes["total"] / lanes["count"], 1) if lanes["count"] else 0.0
            ),
        }

    dense = storm_snapshot(25.0)
    sparse = storm_snapshot(60.0)
    assert dense["broadcasts"] == sparse["broadcasts"] == 200
    # Dense 25 m spacing is the batch regime; sparse keeps fewer
    # neighbors per broadcast, so the cull must discard more.
    assert dense["batch_broadcasts"] > 0
    assert sparse["candidates_after_cull"] < dense["candidates_after_cull"]
    bench_json_sink(
        "medium.storm_counters",
        {"nodes": 100, "broadcasts": 200, "dense": dense, "sparse": sparse},
    )


def _ap_cluster_network(*, cross: bool, n_aps: int = 6, clients_per_ap: int = 4):
    """The multi-AP shape: isolated infostation cells along a long road.

    Each AP reaches only its own handful of clients — below the
    ``batch_min_candidates`` floor, so without cross-broadcast
    coalescing every delivery samples the channel scalar, one
    ``channel.sample`` call per client.  The 5 km cell spacing is far
    beyond the path-loss reach radius (~1.7 km at these defaults), so
    the neighbor grid culls the other cells and the candidate sets stay
    genuinely small.
    """
    sim = Simulator(seed=7)
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(
                    sim.streams.get("shadowing"),
                    sigma_db=4.0,
                    decorrelation_distance_m=20.0,
                ),
                TemporalTxShadowing(
                    sim.streams.get("shadowing-common"),
                    sigma_db=3.0,
                    tau_s=2.0,
                    hub=NodeId(1),
                ),
            ]
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=4.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(
        sim, channel, fast_path=True, batch=True, cross_broadcast_batch=cross
    )
    aps = []
    node = 0
    for cell in range(n_aps):
        base = 5000.0 * cell
        for k in range(clients_per_ap + 1):
            node += 1
            position = Vec2(base + 15.0 * k, 0.0)
            iface = NetworkInterface(
                sim,
                medium,
                NodeId(node),
                (lambda p: (lambda: p))(position),
                RadioConfig(),
                sim.streams.get(f"mac-{node}"),
                name=f"n{node}",
            )
            if k == 0:
                aps.append(iface)
    return sim, medium, aps


def _ap_cluster_storm(cross: bool, waves: int = 50) -> float:
    """Wall-clock seconds for *waves* rounds of simultaneous AP beacons.

    All APs transmit at the same instant each wave — the multi-AP
    beaconing pattern — so the coalescer can pool their sub-floor
    candidate sets into one cross-broadcast sampling pass.
    """
    sim, medium, aps = _ap_cluster_network(cross=cross)
    rate = rate_by_name("dsss-11")
    seq = 0
    for wave in range(waves):
        for ap in aps:
            seq += 1
            frame = DataFrame(
                src=ap.node_id,
                dst=NodeId(int(ap.node_id) + 1),
                size_bytes=200,
                flow_dst=NodeId(int(ap.node_id) + 1),
                seq=seq,
            )
            sim.schedule(wave * 2e-3, medium.transmit, ap, frame, rate)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def test_cross_broadcast_scalar_floor(bench_json_sink):
    """Reception-ladder rung 5 pin: coalescing lifts the scalar floor.

    Six APs with four clients each beacon simultaneously, 50 waves.
    Every individual broadcast carries 4 candidates — under the
    ``batch_min_candidates=8`` floor, so the pre-coalescer medium runs
    4 scalar ``channel.sample`` calls per broadcast (1200 total).  With
    ``cross_broadcast_batch`` on the six same-instant candidate sets
    concatenate into one 24-lane multibatch pass and the scalar floor
    disappears entirely.  The call counts are deterministic, so the
    recorded ``scalar_call_speedup`` is exact and safely inside the CI
    regression gate's tolerance; wall times are informational (the
    window is sub-second and jittery on shared runners).
    """
    from repro import obs

    def counted(cross: bool):
        with obs.instrumented():
            seconds = _ap_cluster_storm(cross)
            snapshot = obs.registry().snapshot()
        return seconds, snapshot

    _ap_cluster_storm(True)  # warm NumPy dispatch caches off the clock
    coalesced_s, coalesced = counted(True)
    legacy_s, legacy = counted(False)
    legacy_calls = legacy["medium.scalar_floor_calls"]["value"]
    coalesced_calls = coalesced["medium.scalar_floor_calls"]["value"]
    pooled = coalesced["medium.coalesced_broadcasts"]["value"]
    # The exact deterministic shape: 50 waves x 6 APs x 4 clients
    # sampled scalar without the coalescer; all 300 broadcasts pooled
    # (and off the scalar floor) with it.
    assert legacy_calls == 50 * 6 * 4
    assert pooled == 50 * 6
    # The acceptance bar: the multi-AP window's scalar channel.sample
    # count must drop at least 5x (here it drops to zero).
    assert legacy_calls >= 5 * max(coalesced_calls, 1)
    bench_json_sink(
        "kernel.cross_broadcast",
        {
            "aps": 6,
            "clients_per_ap": 4,
            "waves": 50,
            "coalesced_s": round(coalesced_s, 4),
            "legacy_s": round(legacy_s, 4),
            "scalar_calls_legacy": legacy_calls,
            "scalar_calls_coalesced": coalesced_calls,
            "scalar_call_speedup": round(
                legacy_calls / max(coalesced_calls, 1), 2
            ),
            "coalesced_broadcasts": pooled,
        },
    )


def test_lane_scratch_alloc_delta(bench_json_sink):
    """The small-array-churn pin: warm candidate gathers allocate nothing.

    ``Medium._receive_batch`` and the coalescer's drain write candidate
    lanes into one medium-owned :class:`~repro.radio.batch.LaneScratch`
    instead of building per-broadcast ``np.array`` temporaries.  Once
    the scratch has grown to the storm's peak lane count, every further
    ``reserve`` must hand back the same buffers — tracemalloc pins the
    allocation delta of 10k warm gathers at (near) zero, while a
    capacity-crossing reserve still visibly reallocates.
    """
    import tracemalloc

    from repro.radio.batch import LaneScratch

    scratch = LaneScratch()
    scratch.reserve(200)  # warm to the peak (rounds up to 256 capacity)
    warm_xs, warm_gains = scratch.rx_xs, scratch.rx_gains
    tracemalloc.start()
    base = tracemalloc.get_traced_memory()[0]
    for lanes in (1, 8, 64, 200, 256):
        for _ in range(2_000):
            scratch.reserve(lanes)
    warm_delta = tracemalloc.get_traced_memory()[0] - base
    assert scratch.rx_xs is warm_xs and scratch.rx_gains is warm_gains
    scratch.reserve(4096)  # crossing capacity must still grow for real
    grow_delta = tracemalloc.get_traced_memory()[0] - base
    tracemalloc.stop()
    assert scratch.rx_xs is not warm_xs
    # 10k warm reserves: no array churn (tolerance covers tracemalloc's
    # own bookkeeping residue, far below one 64-lane float64 column).
    assert warm_delta < 512
    # The growth path really reallocated the float64/int64 columns.
    assert grow_delta > 4096 * 8
    bench_json_sink(
        "kernel.lane_scratch_alloc",
        {
            "warm_reserves": 10_000,
            "warm_capacity": 256,
            "warm_alloc_bytes": warm_delta,
            "grow_to": 4096,
            "grow_alloc_bytes": grow_delta,
        },
    )


def test_hot_object_alloc_slots(benchmark, bench_json_sink):
    """The satellite pin: hot per-frame objects stay ``__slots__``-lean.

    Every broadcast allocates one ``LinkSample`` + ``_Arrival`` per
    surviving receiver and the queue churns ``Event`` objects; slotted
    classes drop the per-instance dict.  Measured against dict-based
    stand-ins of the same shape so the delta is visible in the record.
    """

    import sys
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class DictSample:  # LinkSample minus slots=True — the control
        rx_power_dbm: float
        mean_rx_power_dbm: float
        distance_m: float

    class DictArrival:  # _Arrival minus __slots__ — the control
        def __init__(self, frame, rate, sample, start, end):
            self.frame = frame
            self.rate = rate
            self.sample = sample
            self.start = start
            self.end = end
            self.interferers_dbm = []
            self.half_duplex = False

    frame = DataFrame(
        src=NodeId(1), dst=NodeId(2), size_bytes=1000, flow_dst=NodeId(2), seq=1
    )
    rate = rate_by_name("dsss-11")

    def alloc_slotted(count=20_000):
        for i in range(count):
            sample = LinkSample(-70.0 - i, -72.0, 120.0)
            _Arrival(frame, rate, sample, 0.0, 1.0)
        return count

    def alloc_dict(count=20_000):
        for i in range(count):
            sample = DictSample(-70.0 - i, -72.0, 120.0)
            DictArrival(frame, rate, sample, 0.0, 1.0)
        return count

    assert LinkSample.__slots__ and _Arrival.__slots__
    assert not hasattr(LinkSample(-70.0, -72.0, 1.0), "__dict__")
    benchmark(alloc_slotted)
    alloc_dict()  # warm the control off the clock too
    t0 = time.perf_counter()
    alloc_slotted()
    slotted_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    alloc_dict()
    dict_s = time.perf_counter() - t0
    slotted_bytes = sys.getsizeof(LinkSample(-70.0, -72.0, 1.0))
    dict_sample = DictSample(-70.0, -72.0, 1.0)
    dict_bytes = sys.getsizeof(dict_sample) + sys.getsizeof(dict_sample.__dict__)
    bench_json_sink(
        "kernel.hot_object_alloc",
        {
            "objects": 40_000,
            "slots_s": round(slotted_s, 4),
            "dict_control_s": round(dict_s, 4),
            "slots_gain": round(dict_s / slotted_s, 2),
            "sample_bytes_slots": slotted_bytes,
            "sample_bytes_dict": dict_bytes,
        },
    )
