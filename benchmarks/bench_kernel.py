"""Experiment ``kernel`` — discrete-event kernel microbenchmarks.

Not a paper artifact: these keep the substrate honest.  A full urban
round schedules on the order of 10⁵ events; the kernel must sustain
hundreds of thousands of events per second for the 30-round experiment
to stay interactive.

Each benchmark also records its headline number into
``BENCH_kernel.json`` (via ``bench_json_sink``) so the perf trajectory
is machine-readable across PRs.
"""

import time

from repro.geom import Vec2
from repro.mac.frames import DataFrame, NodeId
from repro.mac.interface import NetworkInterface
from repro.mac.medium import Medium, _Arrival
from repro.radio.channel import Channel, LinkSample
from repro.radio.fading import RicianFading
from repro.radio.modulation import rate_by_name
from repro.radio.pathloss import LogDistancePathLoss
from repro.radio.phy import RadioConfig
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)
from repro.sim import Signal, Simulator, gc_paused


def test_event_throughput(benchmark, bench_json_sink):
    """Schedule-and-drain 50k events.

    Runs under the kernel's ``gc_paused()`` bulk-load mode: scheduling
    50k events up front otherwise triggers full cyclic-GC collections
    that re-scan the entire pending set mid-burst and dominate the
    measurement (``run()`` already pauses collection internally; the
    context manager extends that to the pre-load loop, which is how any
    bulk-loading driver is expected to use the kernel).
    """

    def run():
        sim = Simulator()
        with gc_paused():
            for i in range(50_000):
                sim.schedule(i * 1e-4, lambda: None)
            sim.run()
        return sim.now

    result = benchmark(run)
    assert result > 0
    t0 = time.perf_counter()
    run()
    bench_json_sink(
        "kernel.event_throughput",
        {"events": 50_000, "events_per_s": round(50_000 / (time.perf_counter() - t0))},
    )


def test_scheduler_wheel_vs_heap(benchmark, bench_json_sink):
    """Satellite pin: the slot-wheel scheduler vs the legacy binary heap.

    Identical workload through both queue implementations — 50k events
    on a mixed grid (MAC-slot-aligned and off-grid times, the shape
    frame scheduling produces) — so the recorded ``speedup`` isolates
    the data structure from everything else.  Pop order is bit-identical
    (pinned by the Hypothesis equivalence suite).
    """

    def storm(scheduler: str) -> float:
        sim = Simulator(scheduler=scheduler)
        with gc_paused():
            for i in range(50_000):
                # Mixed grid: slot-aligned bulk, off-grid stragglers.
                t = i * 2e-5 if i % 4 else i * 1e-4 + 3.3e-7
                sim.schedule(t, lambda: None)
            t0 = time.perf_counter()
            sim.run()
            return time.perf_counter() - t0

    storm("wheel")  # warm-up
    wheel = benchmark.pedantic(storm, args=("wheel",), rounds=3, iterations=1)
    heap = storm("heap")
    bench_json_sink(
        "kernel.scheduler_wheel",
        {
            "events": 50_000,
            "wheel_s": round(wheel, 4),
            "heap_s": round(heap, 4),
            "drain_speedup": round(heap / wheel, 2),
        },
    )
    assert wheel > 0 and heap > 0


def test_protocol_step(benchmark, bench_json_sink):
    """Tentpole pin: pooled protocol stepping vs the legacy callback path.

    One full urban round (real channel, mobility and C-ARQ protocol),
    run twice: with the :class:`~repro.core.engine.ProtocolPool` as the
    medium's coalesced delivery sink (default — one coverage-sweep event
    per AP broadcast, SoA deadlines) and with the legacy per-vehicle
    receive callbacks plus cancel/re-schedule coverage watchdogs.  The
    result rows are bit-identical (pinned by the scenario A/B suite);
    only the event traffic differs.  Recorded as ``*_ratio``: full-round
    wall clock includes channel sampling, so the pool's share jitters
    too much for the CI ``*speedup*`` gate.
    """
    import dataclasses

    from repro.scenarios.urban import UrbanScenarioConfig, build_urban_round

    def round_seconds(batched_delivery: bool) -> float:
        cfg = UrbanScenarioConfig(seed=17, round_duration_s=60.0)
        cfg = dataclasses.replace(
            cfg,
            radio=dataclasses.replace(
                cfg.radio, batched_delivery=batched_delivery
            ),
        )
        ctx = build_urban_round(cfg, 0)
        t0 = time.perf_counter()
        ctx.run()
        return time.perf_counter() - t0

    round_seconds(True)  # warm-up
    pooled = benchmark.pedantic(
        round_seconds, args=(True,), rounds=3, iterations=1
    )
    legacy = round_seconds(False)
    bench_json_sink(
        "kernel.protocol_step",
        {
            "round_s": 60.0,
            "pooled_s": round(pooled, 4),
            "legacy_s": round(legacy, 4),
            "pool_ratio": round(legacy / pooled, 2),
        },
    )
    assert pooled > 0 and legacy > 0


def test_process_context_switching(benchmark):
    """10k generator-process wake-ups."""

    def run():
        sim = Simulator()
        counter = []

        def ticker():
            for _ in range(10_000):
                yield 0.001
            counter.append(sim.now)

        sim.process(ticker())
        sim.run()
        return counter[0]

    result = benchmark(run)
    assert result > 9.9


def test_signal_fanout(benchmark):
    """One signal waking 1000 waiting processes, 10 times."""

    def run():
        sim = Simulator()
        woken = []
        signal = Signal("broadcast")

        def waiter():
            for _ in range(10):
                value = yield signal
                woken.append(value)

        for _ in range(1000):
            sim.process(waiter())
        for shot in range(10):
            sim.schedule(float(shot + 1), signal.trigger, shot)
        sim.run()
        return len(woken)

    assert benchmark(run) == 10_000


def _line_network(
    n_nodes: int, *, fast_path: bool, batch: bool, spacing_m: float = 25.0,
    seed: int = 11,
):
    """One medium with *n_nodes* static interfaces spaced along a line.

    The channel is the representative urban stack — Gudmundson +
    transmitter-anchored OU shadowing and Rician fading — so the storm
    exercises the full per-frame reception pipeline the scenarios run,
    not just path-loss arithmetic.  The default 25 m spacing makes the
    broadcast neighborhoods dense (~100 reachable candidates), the
    regime the batch kernel targets; pass a wider spacing for the
    sparse O(reachable) culling pin.
    """
    sim = Simulator(seed=seed)
    channel = Channel(
        pathloss=LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(
                    sim.streams.get("shadowing"),
                    sigma_db=4.0,
                    decorrelation_distance_m=20.0,
                ),
                TemporalTxShadowing(
                    sim.streams.get("shadowing-common"),
                    sigma_db=3.0,
                    tau_s=2.0,
                    hub=NodeId(1),
                ),
            ]
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=4.0),
        rng=sim.streams.get("channel"),
    )
    medium = Medium(sim, channel, fast_path=fast_path, batch=batch)
    ifaces = []
    for index in range(n_nodes):
        position = Vec2(spacing_m * index, 0.0)
        ifaces.append(
            NetworkInterface(
                sim,
                medium,
                NodeId(index + 1),
                (lambda p: (lambda: p))(position),
                RadioConfig(),
                sim.streams.get(f"mac-{index}"),
                name=f"if{index + 1}",
            )
        )
    return sim, medium, ifaces


def _broadcast_storm(
    n_nodes: int, broadcasts: int, *, fast_path: bool, batch: bool,
    spacing_m: float = 25.0,
) -> float:
    """Wall-clock seconds for *broadcasts* medium-level transmissions."""
    sim, medium, ifaces = _line_network(
        n_nodes, fast_path=fast_path, batch=batch, spacing_m=spacing_m
    )
    rate = rate_by_name("dsss-11")
    frame = DataFrame(
        src=ifaces[0].node_id,
        dst=ifaces[-1].node_id,
        size_bytes=1000,
        flow_dst=ifaces[-1].node_id,
        seq=1,
    )
    for i in range(broadcasts):
        tx = ifaces[i % n_nodes]
        shifted = DataFrame(
            src=tx.node_id, dst=frame.dst, size_bytes=1000, flow_dst=frame.dst, seq=i
        )
        sim.schedule(i * 2e-3, medium.transmit, tx, shifted, rate)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def test_medium_broadcast_batch_kernel(benchmark, bench_json_sink):
    """The tentpole pin: dense broadcasts run as one NumPy batch.

    200 nodes on a 5 km line with the full stochastic channel stack.
    Three arms, all bit-identical by the A/B pins: the batch kernel
    (default), PR 3's scalar fast path (culling, per-candidate Python),
    and the fully scalar exhaustive reference.  The batch kernel must
    clearly beat the scalar fast path at this density and crush the
    exhaustive path; N=50 is recorded for the scaling story.
    """
    # Warm NumPy's dispatch caches off the clock so the measured batch
    # arm is not charged for one-time import/ufunc setup.
    _broadcast_storm(50, 40, fast_path=True, batch=True)
    batch = benchmark.pedantic(
        _broadcast_storm, args=(200, 400),
        kwargs={"fast_path": True, "batch": True},
        rounds=1, iterations=1,
    )
    fast = _broadcast_storm(200, 400, fast_path=True, batch=False)
    exhaustive = _broadcast_storm(200, 400, fast_path=False, batch=False)
    small_batch = _broadcast_storm(50, 400, fast_path=True, batch=True)
    small_fast = _broadcast_storm(50, 400, fast_path=True, batch=False)
    small_exhaustive = _broadcast_storm(50, 400, fast_path=False, batch=False)
    bench_json_sink(
        "medium.broadcast_storm",
        {
            "nodes": 200,
            "broadcasts": 400,
            "batch_s": round(batch, 4),
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "speedup": round(exhaustive / batch, 2),
            "batch_vs_fast_speedup": round(fast / batch, 2),
            "n50_batch_s": round(small_batch, 4),
            "n50_fast_s": round(small_fast, 4),
            "n50_exhaustive_s": round(small_exhaustive, 4),
            # Named "ratio", not "speedup", deliberately: sub-second
            # single-iteration timings jitter too much on shared runners
            # for the CI regression gate (which keys on *speedup*).
            "n50_ratio": round(small_exhaustive / small_batch, 2),
        },
    )
    # Generous floors (CI machines are noisy); the committed
    # BENCH_kernel.json records the actual measured ratios.
    assert exhaustive / batch > 2.0
    assert fast / batch > 1.3


def test_medium_broadcast_o_reachable_sparse(bench_json_sink):
    """PR 3's pin, kept alive: sparse broadcasts stay O(reachable).

    200 nodes at 60 m spacing (12 km line) with the batch kernel off —
    each broadcast reaches only its ~40-node neighborhood, so the
    culling fast path alone must beat the exhaustive path by a wide
    margin.  This guards the neighbor index + reachability bound
    independently of the batch kernel's dense-regime numbers above.
    """
    fast = _broadcast_storm(
        200, 400, fast_path=True, batch=False, spacing_m=60.0
    )
    exhaustive = _broadcast_storm(
        200, 400, fast_path=False, batch=False, spacing_m=60.0
    )
    bench_json_sink(
        "medium.broadcast_storm_sparse",
        {
            "nodes": 200,
            "broadcasts": 400,
            "spacing_m": 60.0,
            "fast_s": round(fast, 4),
            "exhaustive_s": round(exhaustive, 4),
            "cull_speedup": round(exhaustive / fast, 2),
        },
    )
    assert exhaustive / fast > 1.5


def test_broadcast_storm_counter_snapshot(bench_json_sink):
    """Observability satellite: the storm's shape, in counters.

    One dense and one sparse storm under ``obs.instrumented()``, with
    the medium/kernel counter snapshot recorded next to the wall-clock
    numbers above — so the perf record says not just *how fast* but
    *how much work*: events fired, candidates before/after the cull,
    batch-vs-scalar broadcast split, batch lane distribution.  The
    regression gate only compares ``*speedup*`` keys, so these are
    informational (and tolerated by ``check_bench_regression.py``).
    """
    from repro import obs

    def storm_snapshot(spacing_m: float) -> dict:
        with obs.instrumented():
            _broadcast_storm(
                100, 200, fast_path=True, batch=True, spacing_m=spacing_m
            )
            snap = obs.registry().snapshot()
        before = snap["medium.candidates_before_cull"]["value"]
        after = snap["medium.candidates_after_cull"]["value"]
        lanes = snap["medium.batch_lanes"]
        return {
            "events_fired": snap["sim.events_fired"]["value"],
            "broadcasts": snap["medium.broadcasts"]["value"],
            "batch_broadcasts": snap["medium.batch_broadcasts"]["value"],
            "scalar_broadcasts": snap["medium.scalar_broadcasts"]["value"],
            "candidates_before_cull": before,
            "candidates_after_cull": after,
            "cull_keep_pct": round(100.0 * after / before, 1) if before else 0.0,
            "batch_lanes_mean": (
                round(lanes["total"] / lanes["count"], 1) if lanes["count"] else 0.0
            ),
        }

    dense = storm_snapshot(25.0)
    sparse = storm_snapshot(60.0)
    assert dense["broadcasts"] == sparse["broadcasts"] == 200
    # Dense 25 m spacing is the batch regime; sparse keeps fewer
    # neighbors per broadcast, so the cull must discard more.
    assert dense["batch_broadcasts"] > 0
    assert sparse["candidates_after_cull"] < dense["candidates_after_cull"]
    bench_json_sink(
        "medium.storm_counters",
        {"nodes": 100, "broadcasts": 200, "dense": dense, "sparse": sparse},
    )


def test_hot_object_alloc_slots(benchmark, bench_json_sink):
    """The satellite pin: hot per-frame objects stay ``__slots__``-lean.

    Every broadcast allocates one ``LinkSample`` + ``_Arrival`` per
    surviving receiver and the queue churns ``Event`` objects; slotted
    classes drop the per-instance dict.  Measured against dict-based
    stand-ins of the same shape so the delta is visible in the record.
    """

    import sys
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class DictSample:  # LinkSample minus slots=True — the control
        rx_power_dbm: float
        mean_rx_power_dbm: float
        distance_m: float

    class DictArrival:  # _Arrival minus __slots__ — the control
        def __init__(self, frame, rate, sample, start, end):
            self.frame = frame
            self.rate = rate
            self.sample = sample
            self.start = start
            self.end = end
            self.interferers_dbm = []
            self.half_duplex = False

    frame = DataFrame(
        src=NodeId(1), dst=NodeId(2), size_bytes=1000, flow_dst=NodeId(2), seq=1
    )
    rate = rate_by_name("dsss-11")

    def alloc_slotted(count=20_000):
        for i in range(count):
            sample = LinkSample(-70.0 - i, -72.0, 120.0)
            _Arrival(frame, rate, sample, 0.0, 1.0)
        return count

    def alloc_dict(count=20_000):
        for i in range(count):
            sample = DictSample(-70.0 - i, -72.0, 120.0)
            DictArrival(frame, rate, sample, 0.0, 1.0)
        return count

    assert LinkSample.__slots__ and _Arrival.__slots__
    assert not hasattr(LinkSample(-70.0, -72.0, 1.0), "__dict__")
    benchmark(alloc_slotted)
    alloc_dict()  # warm the control off the clock too
    t0 = time.perf_counter()
    alloc_slotted()
    slotted_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    alloc_dict()
    dict_s = time.perf_counter() - t0
    slotted_bytes = sys.getsizeof(LinkSample(-70.0, -72.0, 1.0))
    dict_sample = DictSample(-70.0, -72.0, 1.0)
    dict_bytes = sys.getsizeof(dict_sample) + sys.getsizeof(dict_sample.__dict__)
    bench_json_sink(
        "kernel.hot_object_alloc",
        {
            "objects": 40_000,
            "slots_s": round(slotted_s, 4),
            "dict_control_s": round(dict_s, 4),
            "slots_gain": round(dict_s / slotted_s, 2),
            "sample_bytes_slots": slotted_bytes,
            "sample_bytes_dict": dict_bytes,
        },
    )
