"""CI guard: fail when a fresh bench run regresses against the baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline /tmp/BENCH_kernel.baseline.json --fresh BENCH_kernel.json

Compares every ``*speedup*`` figure of every entry present in *both*
files and exits non-zero when a fresh value falls more than
``--tolerance`` (default 20 %) below the committed baseline.  Absolute
timings are deliberately ignored — CI machines vary wildly — but the
*ratios* between the paths of one run share the same noise, so a real
regression (a batch-kernel slowdown, a de-vectorised hot loop) shows up
while machine-to-machine drift does not.  Entries or keys that exist
only on one side are skipped: adding a new benchmark must not break the
guard, and a dropped one is a review problem, not a CI problem.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_entries(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle).get("entries", {})


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Human-readable regression descriptions (empty = all good)."""
    regressions = []
    for name in sorted(set(baseline) & set(fresh)):
        base_entry, fresh_entry = baseline[name], fresh[name]
        for key in sorted(set(base_entry) & set(fresh_entry)):
            if "speedup" not in key:
                continue
            base_value, fresh_value = base_entry[key], fresh_entry[key]
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            if not isinstance(fresh_value, (int, float)) or not math.isfinite(
                fresh_value
            ):
                # A null/NaN fresh figure means the bench recorded
                # garbage; never let `NaN < floor == False` pass it.
                regressions.append(
                    f"{name}.{key}: non-numeric fresh value {fresh_value!r} "
                    f"(baseline {base_value:.2f})"
                )
                continue
            floor = base_value * (1.0 - tolerance)
            if fresh_value < floor:
                regressions.append(
                    f"{name}.{key}: {fresh_value:.2f} < {floor:.2f} "
                    f"(baseline {base_value:.2f}, tolerance {tolerance:.0%})"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_kernel.json")
    parser.add_argument("--fresh", required=True, help="freshly generated file")
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional drop below the baseline (default 0.2)",
    )
    args = parser.parse_args(argv)
    baseline = load_entries(args.baseline)
    fresh = load_entries(args.fresh)
    shared = set(baseline) & set(fresh)
    if not shared:
        print("bench-regression: no shared entries to compare", file=sys.stderr)
        return 2
    regressions = compare(baseline, fresh, args.tolerance)
    if regressions:
        print("bench-regression: speedups fell below the baseline:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(
        f"bench-regression: {len(shared)} shared entr{'y' if len(shared) == 1 else 'ies'} "
        "within tolerance"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
