"""Experiment ``obs`` — observability overhead pins.

The instrumentation contract (docs/OBSERVABILITY.md) has a hard perf
clause: with the registry disabled and no tracer installed, the only
cost left on the event hot path is one attribute load plus an ``is``
test per event.  This bench pins that clause with a measured number —
the disabled-probe overhead against a control simulator whose ``step``
and ``schedule_at`` carry no instrumentation at all — and records the
fully-enabled cost alongside it for scale.

The committed BENCH_kernel.json entry must show ``overhead_disabled_pct``
within the ≤2% budget; the in-test assertion is looser (shared CI boxes
jitter) but still catches a probe accidentally left unguarded.  Values
inside roughly ±2% are the noise floor of this measurement — the guard
costs tens of nanoseconds against a ~2 µs event dispatch — so small
negative figures just mean "indistinguishable from zero".
"""

import time

from repro import obs
from repro.sim import Simulator
from repro.sim.event import Event

#: Events per drain; large enough that per-event costs dominate setup.
N_EVENTS = 50_000
#: Interleaved arm pairs; the median pair ratio rejects scheduler noise.
REPEATS = 15


class BareSimulator(Simulator):
    """Control arm: the kernel hot path with instrumentation erased.

    ``step`` and ``schedule_at`` are verbatim copies of the Simulator
    bodies minus the obs branches — measuring against this isolates the
    cost of the *guards themselves* (the attribute load + ``is`` test),
    which is exactly what the disabled-probe budget promises to bound.
    """

    def schedule_at(self, time, callback, *args, priority=None):
        from repro.sim.event import Priority

        if priority is None:
            priority = Priority.NORMAL
        if time < self._now:
            raise ValueError(time)
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        self._queue.push(event)
        return event

    def step(self) -> bool:
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        event.callback(*event.args)
        return True


def _drain(sim_cls) -> float:
    """Wall-clock seconds to schedule and drain N_EVENTS no-op events."""
    sim = sim_cls()
    noop = lambda: None  # noqa: E731 - the cheapest possible callback
    for i in range(N_EVENTS):
        sim.schedule(i * 1e-4, noop)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def _min_of(fn, repeats=REPEATS) -> float:
    return min(fn() for _ in range(repeats))


def test_disabled_probe_overhead(bench_json_sink):
    """The pinned clause: probes compiled out cost ≤2% on the hot loop.

    Three arms over the identical 50k-event drain:

    * ``bare`` — BareSimulator, instrumentation erased (control);
    * ``disabled`` — real Simulator, registry off (the default every
      test and experiment runs under);
    * ``enabled`` — real Simulator inside ``obs.instrumented()``, for
      scale (this arm pays perf_counter + counter bumps per event and
      is *expected* to be markedly slower; it is recorded, not gated).
    """
    assert not obs.registry().enabled
    # Warm both classes off the clock (bytecode caches, queue growth).
    _drain(BareSimulator)
    _drain(Simulator)

    # Interleave the arms so CPU-frequency drift on shared runners hits
    # both equally; each back-to-back pair shares machine state, so the
    # *median* of the per-pair ratios is a far more stable overhead
    # estimate than the ratio of two independent minima.
    import statistics

    bare_ts, disabled_ts, ratios = [], [], []
    for _ in range(REPEATS):
        bare = _drain(BareSimulator)
        disabled = _drain(Simulator)
        bare_ts.append(bare)
        disabled_ts.append(disabled)
        ratios.append(disabled / bare)
    bare_s = min(bare_ts)
    disabled_s = min(disabled_ts)
    ratio = statistics.median(ratios)

    def enabled_drain() -> float:
        with obs.instrumented():
            return _drain(Simulator)

    enabled_s = _min_of(enabled_drain, repeats=2)

    overhead_disabled_pct = (ratio - 1.0) * 100.0
    overhead_enabled_pct = (enabled_s / bare_s - 1.0) * 100.0
    bench_json_sink(
        "obs.disabled_probe_overhead",
        {
            "events": N_EVENTS,
            "repeats": REPEATS,
            "bare_s": round(bare_s, 4),
            "disabled_s": round(disabled_s, 4),
            "enabled_s": round(enabled_s, 4),
            "overhead_disabled_pct": round(overhead_disabled_pct, 2),
            "overhead_enabled_pct": round(overhead_enabled_pct, 1),
        },
    )
    # The committed number demonstrates ≤2%; the gate here is loose
    # enough for noisy shared runners yet fails hard if a probe ever
    # runs unguarded on the disabled path (that costs tens of percent).
    assert overhead_disabled_pct < 10.0


def test_enabled_instrumentation_counts(bench_json_sink):
    """Sanity on the enabled arm: the counters actually count.

    Cheap cross-check that the overhead being paid in the enabled arm
    above buys correct numbers — every scheduled event is counted pushed
    and fired, and queue-depth sampling saw the drain.
    """
    with obs.instrumented():
        _drain(Simulator)
        snapshot = obs.registry().snapshot()
    kernel = {k: v for k, v in snapshot.items() if k.startswith("sim.")}
    assert kernel["sim.events_pushed"]["value"] == N_EVENTS
    assert kernel["sim.events_fired"]["value"] == N_EVENTS
    assert kernel["sim.queue_depth"]["samples"] == N_EVENTS
    bench_json_sink(
        "obs.enabled_counts",
        {
            "events_pushed": kernel["sim.events_pushed"]["value"],
            "events_fired": kernel["sim.events_fired"]["value"],
            "cost_center_rows": len(kernel["sim.cost_centers"]["rows"]),
        },
    )
