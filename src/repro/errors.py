"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling into the past, running a simulator that has been
    stopped and not reset, or resuming a finished process.
    """


class ConfigurationError(ReproError):
    """A configuration dataclass carries invalid or inconsistent values."""


class GeometryError(ReproError):
    """A geometric primitive was constructed or queried out of domain."""


class MobilityError(ReproError):
    """A mobility model was asked for a state it cannot produce."""


class TraceFormatError(MobilityError):
    """A mobility trace file could not be parsed or validated.

    Examples: malformed SUMO FCD XML, an ns-2 ``setdest`` command for a
    node without an initial position, duplicate timestamps that disagree
    on position, or an unknown length unit.  Subclasses
    :class:`MobilityError` because a broken trace is, to every caller
    above the parser, a mobility substrate that cannot be built.
    """


class RadioError(ReproError):
    """A PHY-layer computation received out-of-domain inputs."""


class MacError(ReproError):
    """The MAC layer was driven through an illegal state transition."""


class ProtocolError(ReproError):
    """The C-ARQ protocol state machine was driven illegally."""


class AnalysisError(ReproError):
    """Post-processing was asked to analyse inconsistent trace data."""


class ObsError(ReproError):
    """The observability layer was used or configured incorrectly.

    Examples: registering one metric name under two types, merging
    histograms with different bucket bounds, closing a span that was
    never opened, or exporting a malformed Chrome trace document.
    """


class CampaignError(ReproError):
    """A campaign spec, store, or execution request is invalid.

    Examples: a spec that cannot be serialised to JSON, a corrupt result
    store, or a report over a store that is missing task rows.
    """


class ChaosError(ReproError):
    """A deterministically *injected* fault from the chaos harness.

    Raised inside a campaign worker when the fault-injection schedule
    (:mod:`repro.campaign.chaos`) selects the ``raise`` kind for a
    ``(task, attempt)`` pair.  The executor classifies it as transient —
    the injection is keyed by attempt number, so a retry draws a fresh
    decision — which is exactly how a recoverable infrastructure error
    should behave.  Kept separate from :class:`CampaignError` so a
    chaos-injected failure can never be mistaken for an invalid spec or
    store.
    """


class ScenarioError(CampaignError):
    """The scenario plugin registry was used incorrectly.

    Examples: looking up a scenario name nobody registered, or
    registering two plugins under the same name.  Subclasses
    :class:`CampaignError` because campaigns dispatch through the
    registry: an unknown scenario in a spec is both a registry miss and
    an invalid campaign, and callers catching campaign failures must see
    it either way.
    """
