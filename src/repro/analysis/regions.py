"""Region I/II/III segmentation of the packet-number axis.

The paper (Figures 3–5) divides each flow's packet numbers into:

* **Region I** — the destination is at the edge of coverage while other
  platoon members are still entering;
* **Region II** — the platoon is jointly inside the coverage area;
* **Region III** — the destination is leaving while others still receive.

We estimate the boundaries from the reception data itself: Region I ends
at the mean packet number where the *last* car's reception first exceeds a
threshold, Region III starts where the *first* car's reception last falls
below it.  This mirrors how one reads the regions off the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix


@dataclass(frozen=True)
class Regions:
    """Packet-number boundaries ``[1, i_end] (i_end, iii_start) [iii_start, n]``."""

    region_i_end: int
    region_iii_start: int
    window_length: int

    def label_for(self, packet_number: int) -> str:
        """``"I"``, ``"II"`` or ``"III"`` for a packet number."""
        if packet_number <= self.region_i_end:
            return "I"
        if packet_number >= self.region_iii_start:
            return "III"
        return "II"


def _first_reception(matrix: ReceptionMatrix, car: NodeId) -> int | None:
    indicator = matrix.direct_indicator(car)
    for index, received in enumerate(indicator):
        if received:
            return index + 1
    return None


def _last_reception(matrix: ReceptionMatrix, car: NodeId) -> int | None:
    indicator = matrix.direct_indicator(car)
    for index in range(len(indicator) - 1, -1, -1):
        if indicator[index]:
            return index + 1
    return None


def estimate_regions(
    matrices: list[ReceptionMatrix], cars: list[NodeId]
) -> Regions:
    """Estimate region boundaries for one flow across rounds.

    Region I ends at the mean (over rounds) of the *latest* first-reception
    packet number among the cars; Region III starts at the mean of the
    *earliest* last-reception packet number.

    Raises
    ------
    AnalysisError
        If no usable rounds exist (no car ever received anything).
    """
    if not matrices:
        raise AnalysisError("no matrices given")
    i_ends: list[int] = []
    iii_starts: list[int] = []
    lengths: list[int] = []
    for matrix in matrices:
        firsts = [f for car in cars if (f := _first_reception(matrix, car)) is not None]
        lasts = [l for car in cars if (l := _last_reception(matrix, car)) is not None]
        if not firsts or not lasts:
            continue
        i_ends.append(max(firsts))
        iii_starts.append(min(lasts))
        lengths.append(matrix.tx_by_ap)
    if not i_ends:
        raise AnalysisError("no round with receptions at the given cars")
    window_length = round(sum(lengths) / len(lengths))
    region_i_end = round(sum(i_ends) / len(i_ends))
    region_iii_start = round(sum(iii_starts) / len(iii_starts))
    region_i_end = max(1, min(region_i_end, window_length))
    region_iii_start = max(region_i_end + 1, min(region_iii_start, window_length))
    return Regions(
        region_i_end=region_i_end,
        region_iii_start=region_iii_start,
        window_length=window_length,
    )
