"""Table 1: per-car loss statistics over the experiment rounds."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass(frozen=True)
class Table1Row:
    """One car's row of the paper's Table 1.

    All counts are per-round means with sample standard deviations; the
    percentage columns are the means of the per-round percentages,
    mirroring the paper's presentation.
    """

    car: NodeId
    rounds: int
    tx_by_ap_mean: float
    tx_by_ap_std: float
    lost_before_mean: float
    lost_before_std: float
    lost_before_pct: float
    lost_after_mean: float
    lost_after_std: float
    lost_after_pct: float

    @property
    def loss_reduction_pct(self) -> float:
        """Relative reduction of lost packets thanks to cooperation."""
        if self.lost_before_mean == 0.0:
            return 0.0
        return 100.0 * (1.0 - self.lost_after_mean / self.lost_before_mean)


def compute_table1(
    matrices_by_round: list[dict[NodeId, ReceptionMatrix]],
) -> dict[NodeId, Table1Row]:
    """Aggregate per-round reception matrices into Table 1 rows.

    Parameters
    ----------
    matrices_by_round:
        One dict per round, mapping each car to its flow's matrix.  Rounds
        in which a car never associated are skipped for that car.

    Raises
    ------
    AnalysisError
        If no round contains any data.
    """
    per_car: dict[NodeId, list[ReceptionMatrix]] = {}
    for round_matrices in matrices_by_round:
        for car, matrix in round_matrices.items():
            per_car.setdefault(car, []).append(matrix)
    if not per_car:
        raise AnalysisError("no reception data in any round")

    rows: dict[NodeId, Table1Row] = {}
    for car, matrices in sorted(per_car.items()):
        tx = [float(m.tx_by_ap) for m in matrices]
        before = [float(m.lost_before_coop) for m in matrices]
        after = [float(m.lost_after_coop) for m in matrices]
        before_pct = [100.0 * b / t for b, t in zip(before, tx)]
        after_pct = [100.0 * a / t for a, t in zip(after, tx)]
        rows[car] = Table1Row(
            car=car,
            rounds=len(matrices),
            tx_by_ap_mean=_mean(tx),
            tx_by_ap_std=_std(tx),
            lost_before_mean=_mean(before),
            lost_before_std=_std(before),
            lost_before_pct=_mean(before_pct),
            lost_after_mean=_mean(after),
            lost_after_std=_std(after),
            lost_after_pct=_mean(after_pct),
        )
    return rows
