"""Per-packet-number reception probability curves (Figures 3–5).

For the flow addressed to car *i*, the probability that each of the cars
received packet number *n* directly from the AP, estimated across rounds.
Packet numbers are window-relative (see
:class:`~repro.trace.matrix.ReceptionMatrix`); rounds contribute to a
packet number only while their window is at least that long.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix


@dataclass(frozen=True)
class ProbabilityCurve:
    """P(reception) as a function of packet number.

    Attributes
    ----------
    label:
        Series label, e.g. ``"Rx in car 2"``.
    probabilities:
        ``probabilities[n-1]`` is the estimate for packet number *n*.
    samples:
        Number of rounds contributing to each packet number.
    """

    label: str
    probabilities: tuple[float, ...]
    samples: tuple[int, ...]

    def smoothed(self, window: int = 5) -> "ProbabilityCurve":
        """Centred moving average, as the paper's plotted curves are.

        Raises
        ------
        AnalysisError
            If *window* is not positive.
        """
        if window <= 0:
            raise AnalysisError(f"smoothing window must be positive, got {window!r}")
        if window == 1 or not self.probabilities:
            return self
        values = self.probabilities
        half = window // 2
        out = []
        for i in range(len(values)):
            lo = max(0, i - half)
            hi = min(len(values), i + half + 1)
            out.append(sum(values[lo:hi]) / (hi - lo))
        return ProbabilityCurve(self.label, tuple(out), self.samples)


def _aggregate(indicator_lists: list[list[bool]], label: str) -> ProbabilityCurve:
    if not indicator_lists:
        return ProbabilityCurve(label, (), ())
    max_len = max(len(ind) for ind in indicator_lists)
    hits = [0] * max_len
    counts = [0] * max_len
    for indicators in indicator_lists:
        for i, received in enumerate(indicators):
            counts[i] += 1
            if received:
                hits[i] += 1
    probs = tuple(h / c if c else 0.0 for h, c in zip(hits, counts))
    return ProbabilityCurve(label, probs, tuple(counts))


def reception_curves(
    matrices: list[ReceptionMatrix],
    observers: list[NodeId],
    *,
    car_names: dict[NodeId, str] | None = None,
) -> dict[NodeId, ProbabilityCurve]:
    """Direct-reception probability curves for one flow at several cars.

    Parameters
    ----------
    matrices:
        Per-round matrices of the *same* flow.
    observers:
        The cars to compute curves for (all three platoon cars in the
        paper's figures).
    car_names:
        Optional id → display-name mapping for the series labels.

    Raises
    ------
    AnalysisError
        If matrices of different flows are mixed.
    """
    if not matrices:
        raise AnalysisError("no matrices given")
    flows = {m.flow for m in matrices}
    if len(flows) != 1:
        raise AnalysisError(f"mixed flows in input: {sorted(flows)}")
    names = car_names or {}
    curves: dict[NodeId, ProbabilityCurve] = {}
    for car in observers:
        label = f"Rx in {names.get(car, f'car {car}')}"
        indicators = [m.direct_indicator(car) for m in matrices]
        curves[car] = _aggregate(indicators, label)
    return curves
