"""Post-processing: from reception matrices to the paper's tables/figures.

* :mod:`repro.analysis.stats` — Table 1 (mean/σ of transmitted / lost
  before / lost after, per car);
* :mod:`repro.analysis.reception_prob` — per-packet-number reception
  probability curves (Figures 3–5);
* :mod:`repro.analysis.joint` — after-cooperation vs joint curves
  (Figures 6–8) and the near-optimality gap;
* :mod:`repro.analysis.regions` — Region I/II/III boundaries;
* :mod:`repro.analysis.report` — ASCII tables / series and CSV output.
"""

from repro.analysis.stats import Table1Row, compute_table1
from repro.analysis.reception_prob import ProbabilityCurve, reception_curves
from repro.analysis.joint import CoopCurves, coop_curves, optimality_gap
from repro.analysis.regions import Regions, estimate_regions
from repro.analysis.report import (
    format_series,
    format_table,
    render_table1,
    write_csv,
)
from repro.analysis.ascii_plot import ascii_plot

__all__ = [
    "CoopCurves",
    "ascii_plot",
    "ProbabilityCurve",
    "Regions",
    "Table1Row",
    "compute_table1",
    "coop_curves",
    "estimate_regions",
    "format_series",
    "format_table",
    "optimality_gap",
    "reception_curves",
    "render_table1",
    "write_csv",
]
