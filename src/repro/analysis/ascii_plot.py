"""Terminal line plots for the paper's figures.

The benchmark harness and examples render the probability curves as ASCII
charts so the figure *shapes* (region structure, curve coincidence) can
be inspected without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.reception_prob import ProbabilityCurve
from repro.errors import AnalysisError

#: Symbols assigned to successive curves.
_MARKERS = "XO*#@+"


def ascii_plot(
    curves: Sequence[ProbabilityCurve],
    *,
    height: int = 12,
    width: int = 78,
    title: str = "",
    y_label: str = "P(rx)",
) -> str:
    """Render probability curves as a character grid.

    Curves are horizontally resampled to *width* columns and plotted on a
    ``[0, 1]`` y-axis.  When several curves hit the same cell, the later
    curve's marker wins — plot the reference curve first.

    Raises
    ------
    AnalysisError
        If no curves or empty curves are given.
    """
    if not curves:
        raise AnalysisError("nothing to plot")
    length = max(len(c.probabilities) for c in curves)
    if length == 0:
        raise AnalysisError("curves are empty")
    if height < 3 or width < 10:
        raise AnalysisError("plot area too small")

    grid = [[" "] * width for _ in range(height)]
    for curve_index, curve in enumerate(curves):
        marker = _MARKERS[curve_index % len(_MARKERS)]
        values = curve.probabilities
        if not values:
            continue
        for col in range(width):
            source = col * (len(values) - 1) / max(width - 1, 1)
            value = values[min(int(round(source)), len(values) - 1)]
            row = height - 1 - min(int(value * (height - 1) + 0.5), height - 1)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = 1.0 - row_index / (height - 1)
        prefix = f"{y_value:4.1f} |" if row_index % 3 == 0 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      packet number 1 .. {length}   ({y_label})")
    for curve_index, curve in enumerate(curves):
        marker = _MARKERS[curve_index % len(_MARKERS)]
        lines.append(f"      {marker} = {curve.label}")
    return "\n".join(lines)
