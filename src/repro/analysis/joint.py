"""After-cooperation vs joint reception (Figures 6–8) and near-optimality.

The paper's key claim: the after-cooperation curve of each car is "almost
coincident" with the joint probability that *any* platoon car received the
packet — i.e. the protocol extracts essentially all available diversity
("performs as well as a virtual car which uses the better reception
conditions of all of them").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.analysis.reception_prob import ProbabilityCurve, _aggregate
from repro.trace.matrix import ReceptionMatrix


@dataclass(frozen=True)
class CoopCurves:
    """The two series of one of Figures 6–8."""

    after_coop: ProbabilityCurve
    joint: ProbabilityCurve


def coop_curves(matrices: list[ReceptionMatrix], *, car_name: str = "") -> CoopCurves:
    """Build the Figure-6/7/8 series for one flow across rounds.

    Raises
    ------
    AnalysisError
        If no matrices are given or flows are mixed.
    """
    if not matrices:
        raise AnalysisError("no matrices given")
    flows = {m.flow for m in matrices}
    if len(flows) != 1:
        raise AnalysisError(f"mixed flows in input: {sorted(flows)}")
    name = car_name or f"car {matrices[0].flow}"
    after = _aggregate(
        [m.after_coop_indicator() for m in matrices], f"Rx in {name} after coop."
    )
    joint = _aggregate(
        [m.joint_indicator() for m in matrices], "Joint Rx in any car"
    )
    return CoopCurves(after_coop=after, joint=joint)


def optimality_gap(matrices: list[ReceptionMatrix]) -> float:
    """Mean per-round gap between joint and after-coop delivery fractions.

    0.0 means the protocol recovered every packet some car held (the
    paper's "almost optimal" result corresponds to a gap of a few
    hundredths at most).

    Raises
    ------
    AnalysisError
        If no matrices are given.
    """
    if not matrices:
        raise AnalysisError("no matrices given")
    gaps = []
    for m in matrices:
        joint_fraction = len(m.joint) / m.tx_by_ap
        after_fraction = len(m.after_coop) / m.tx_by_ap
        gaps.append(joint_fraction - after_fraction)
    return sum(gaps) / len(gaps)
