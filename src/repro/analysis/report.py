"""ASCII and CSV rendering of results.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that presentation in one place.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.analysis.reception_prob import ProbabilityCurve
from repro.analysis.stats import Table1Row
from repro.mac.frames import NodeId


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """A plain monospace table with column alignment."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1(
    rows: dict[NodeId, Table1Row],
    *,
    paper_reference: dict[NodeId, tuple[float, float]] | None = None,
) -> str:
    """Render Table 1 (optionally with the paper's percentages alongside).

    Parameters
    ----------
    rows:
        Output of :func:`repro.analysis.stats.compute_table1`.
    paper_reference:
        Optional car → (paper lost-before %, paper lost-after %) columns
        for side-by-side comparison.
    """
    headers = [
        "Car", "Rounds", "Tx by AP", "Lost before coop", "Lost after coop",
        "Reduction",
    ]
    if paper_reference:
        headers += ["Paper before", "Paper after"]
    table_rows = []
    for car, row in sorted(rows.items()):
        cells: list[object] = [
            car,
            row.rounds,
            f"{row.tx_by_ap_mean:.1f} ± {row.tx_by_ap_std:.1f}",
            f"{row.lost_before_mean:.1f} ({row.lost_before_pct:.1f}%)",
            f"{row.lost_after_mean:.1f} ({row.lost_after_pct:.1f}%)",
            f"{row.loss_reduction_pct:.0f}%",
        ]
        if paper_reference:
            ref = paper_reference.get(car)
            cells += (
                [f"{ref[0]:.1f}%", f"{ref[1]:.1f}%"] if ref else ["-", "-"]
            )
        table_rows.append(cells)
    return format_table(headers, table_rows, title="Table 1 — packet losses per car")


def format_series(
    curves: Sequence[ProbabilityCurve], *, every: int = 10, title: str = ""
) -> str:
    """Print probability curves as aligned columns, one row per packet number.

    ``every`` subsamples the axis so benchmark output stays compact.
    """
    if not curves:
        return title
    length = max(len(c.probabilities) for c in curves)
    headers = ["Pkt#"] + [c.label for c in curves]
    rows = []
    for n in range(0, length, max(every, 1)):
        row: list[object] = [n + 1]
        for curve in curves:
            if n < len(curve.probabilities):
                row.append(f"{curve.probabilities[n]:.2f}")
            else:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def write_csv(
    curves: Sequence[ProbabilityCurve], *, dialect: str = "excel"
) -> str:
    """Serialise curves to CSV (packet number + one column per curve)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, dialect=dialect)
    writer.writerow(["packet_number"] + [c.label for c in curves])
    length = max((len(c.probabilities) for c in curves), default=0)
    for n in range(length):
        row: list[object] = [n + 1]
        for curve in curves:
            row.append(curve.probabilities[n] if n < len(curve.probabilities) else "")
        writer.writerow(row)
    return buffer.getvalue()
