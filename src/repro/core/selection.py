"""Cooperator-selection strategies (paper §6 future work).

The prototype "does not focus on the cooperators selection algorithm" and
uses every one-hop neighbour.  The paper lists optimal selection as an open
issue; these strategies make the design space explorable:

* :class:`AllNeighbors` — the paper's implicit rule;
* :class:`BestK` — keep the *k* cooperators with the strongest mean HELLO
  RSSI (a proxy for link quality / proximity);
* :class:`RandomK` — keep a random *k* (the control for BestK).

A strategy filters the *ordered* cooperator list a node advertises in its
HELLOs; order among the survivors is preserved, so the responder-ordering
collision-avoidance scheme is untouched.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.cooperators import CooperatorTable
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId


class CooperatorSelection(abc.ABC):
    """Interface: pick which heard neighbours to enlist as cooperators."""

    __slots__ = ()

    @abc.abstractmethod
    def select(
        self, table: CooperatorTable, candidates: tuple[NodeId, ...]
    ) -> tuple[NodeId, ...]:
        """Return the (ordered) subset of *candidates* to advertise."""


class AllNeighbors(CooperatorSelection):
    """Use every one-hop neighbour (the paper's prototype behaviour)."""

    __slots__ = ()

    def select(
        self, table: CooperatorTable, candidates: tuple[NodeId, ...]
    ) -> tuple[NodeId, ...]:
        return candidates


class BestK(CooperatorSelection):
    """Keep the *k* candidates with the strongest mean HELLO RSSI."""

    __slots__ = ("k",)

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k!r}")
        self.k = k

    def select(
        self, table: CooperatorTable, candidates: tuple[NodeId, ...]
    ) -> tuple[NodeId, ...]:
        if len(candidates) <= self.k:
            return candidates
        ranked = sorted(
            candidates,
            key=lambda node: table.mean_rssi_of(node) or float("-inf"),
            reverse=True,
        )
        keep = set(ranked[: self.k])
        return tuple(node for node in candidates if node in keep)


class RandomK(CooperatorSelection):
    """Keep a uniformly random subset of size *k* (control strategy)."""

    __slots__ = ("k", "_rng",)

    def __init__(self, k: int, rng: np.random.Generator) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k!r}")
        self.k = k
        self._rng = rng

    def select(
        self, table: CooperatorTable, candidates: tuple[NodeId, ...]
    ) -> tuple[NodeId, ...]:
        if len(candidates) <= self.k:
            return candidates
        chosen_idx = self._rng.choice(len(candidates), size=self.k, replace=False)
        keep = {candidates[i] for i in chosen_idx}
        return tuple(node for node in candidates if node in keep)
