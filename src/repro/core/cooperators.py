"""Cooperator-table management (paper §3.2).

Two symmetric relations are tracked:

* **my cooperators** — nodes whose HELLOs I have heard; I put them in *my*
  HELLO's ordered list, and they answer my REQUESTs in that order;
* **I cooperate for** — nodes whose HELLO listed *me*; I buffer their
  packets and answer their REQUESTs, using the order their list gave me.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.frames import NodeId


@dataclass(slots=True)
class _CooperatorEntry:
    node: NodeId
    last_heard: float
    hello_count: int = 1
    mean_rssi_dbm: float = 0.0


class CooperatorTable:
    """Ordered cooperator bookkeeping for one vehicle.

    Order is assignment order (first HELLO heard first), exactly as the
    prototype behaves: the cooperator list in outgoing HELLOs "indicates
    the order in which cooperators should act" (§3.2).
    """

    __slots__ = ("_my_cooperators", "_cooperating_for",)

    def __init__(self) -> None:
        self._my_cooperators: list[_CooperatorEntry] = []
        # Nodes that consider me a cooperator → (my order index, last heard).
        self._cooperating_for: dict[NodeId, tuple[int, float]] = {}

    # -- my cooperators ---------------------------------------------------------

    def hear_hello(self, node: NodeId, time: float, rssi_dbm: float) -> bool:
        """Register a HELLO from *node*; returns ``True`` if newly added."""
        for entry in self._my_cooperators:
            if entry.node == node:
                entry.last_heard = time
                entry.mean_rssi_dbm += (rssi_dbm - entry.mean_rssi_dbm) / (
                    entry.hello_count + 1
                )
                entry.hello_count += 1
                return False
        self._my_cooperators.append(
            _CooperatorEntry(node, time, mean_rssi_dbm=rssi_dbm)
        )
        return True

    def expire(self, now: float, ttl_s: float) -> list[NodeId]:
        """Drop cooperators not heard within *ttl_s*; returns the dropped ids."""
        dropped = [e.node for e in self._my_cooperators if now - e.last_heard > ttl_s]
        if dropped:
            self._my_cooperators = [
                e for e in self._my_cooperators if now - e.last_heard <= ttl_s
            ]
        stale_partners = [
            node
            for node, (_order, heard) in self._cooperating_for.items()
            if now - heard > ttl_s
        ]
        for node in stale_partners:
            del self._cooperating_for[node]
        return dropped

    def my_cooperators(self) -> tuple[NodeId, ...]:
        """Ordered cooperator ids — the list carried in my HELLOs."""
        return tuple(e.node for e in self._my_cooperators)

    def order_of(self, node: NodeId) -> int | None:
        """The responder order I assigned to *node*, or ``None``."""
        for index, entry in enumerate(self._my_cooperators):
            if entry.node == node:
                return index
        return None

    def mean_rssi_of(self, node: NodeId) -> float | None:
        """Running mean HELLO RSSI of a cooperator (selection metric)."""
        for entry in self._my_cooperators:
            if entry.node == node:
                return entry.mean_rssi_dbm
        return None

    # -- nodes I cooperate for ----------------------------------------------------

    def note_partner(self, node: NodeId, my_order: int, time: float) -> None:
        """*node*'s HELLO listed me at index *my_order*."""
        self._cooperating_for[node] = (my_order, time)

    def forget_partner(self, node: NodeId) -> None:
        """*node*'s HELLO no longer lists me."""
        self._cooperating_for.pop(node, None)

    def cooperating_for(self) -> set[NodeId]:
        """Nodes whose packets I must buffer (a copy)."""
        return set(self._cooperating_for)

    def is_partner(self, node: NodeId) -> bool:
        """Whether I buffer packets for *node* — the hot-path membership
        test (``cooperating_for`` builds a fresh set per call, which the
        per-frame dispatch cannot afford)."""
        return node in self._cooperating_for

    def my_order_for(self, node: NodeId) -> int | None:
        """My responder order in *node*'s list, or ``None``."""
        entry = self._cooperating_for.get(node)
        return entry[0] if entry is not None else None

    def __len__(self) -> int:
        return len(self._my_cooperators)
