"""The paper's contribution: Cooperative ARQ for delay-tolerant VANETs.

The protocol (paper §3) runs on every vehicle and has three phases:

* **Association** — implicit: a car is associated from the first AP frame
  it receives (:class:`~repro.core.state.Phase` tracks this).
* **Reception** — in coverage, record own packets, buffer packets addressed
  to cooperation partners, broadcast HELLOs that establish cooperator
  lists and responder ordering.
* **Cooperative-ARQ** — in the dark area (no AP frame for
  ``coverage_timeout``), cycle REQUESTs over the missing list; cooperators
  answer in their assigned back-off order, suppressing duplicates they
  overhear.

Extensions implemented alongside the base protocol (paper §3.3 note and §6
future work): batched REQUESTs, cooperator-selection strategies, and AP
retransmission policies.
"""

from repro.core.config import CarqConfig
from repro.core.state import FlowReceptionState, Phase
from repro.core.cooperators import CooperatorTable
from repro.core.selection import (
    AllNeighbors,
    BestK,
    CooperatorSelection,
    RandomK,
)
from repro.core.retransmission import (
    AdaptiveRetransmission,
    FixedRetransmission,
    NoRetransmission,
    RetransmissionPolicy,
)
from repro.core.engine import ProtocolPool
from repro.core.protocol import CarqProtocol, CarqStats
from repro.core.vehicle import VehicleNode

__all__ = [
    "AdaptiveRetransmission",
    "AllNeighbors",
    "BestK",
    "CarqConfig",
    "CarqProtocol",
    "CarqStats",
    "ProtocolPool",
    "CooperatorSelection",
    "CooperatorTable",
    "FixedRetransmission",
    "FlowReceptionState",
    "NoRetransmission",
    "Phase",
    "RandomK",
    "RetransmissionPolicy",
    "VehicleNode",
]
