"""The Cooperative-ARQ vehicle protocol (paper §3).

One :class:`CarqProtocol` instance runs per vehicle.  It owns:

* the per-flow reception state (own download) and the cooperative buffer
  (packets held for platoon partners);
* the HELLO beacon process that maintains the cooperator table and
  responder ordering;
* the coverage watchdog that flips the node between the Reception phase
  and the dark-area Cooperative-ARQ phase;
* the recovery loop (requester side) and the ordered-response logic with
  overhearing suppression (responder side).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import CarqConfig
from repro.core.cooperators import CooperatorTable
from repro.core.state import FlowReceptionState, Phase
from repro.errors import ProtocolError
from repro.mac.frames import (
    BROADCAST,
    CoopDataFrame,
    DataFrame,
    Frame,
    HelloFrame,
    NodeId,
    RequestFrame,
)
from repro.mac.medium import RxInfo
from repro.mac.timing import frame_airtime
from repro.net.buffer import BufferEntry, PacketBuffer
from repro.net.node import Node
from repro.obs.probes import protocol_probes
from repro.sim import Event, Interrupt, Process, Simulator


def hello_order(frame: HelloFrame) -> dict[NodeId, int]:
    """Cooperator → responder-order map of one HELLO frame.

    First occurrence wins, exactly like the ``list.index`` scan it
    replaces (cooperator tuples should never repeat a node, but the
    digest must not silently change semantics if one does).
    """
    order: dict[NodeId, int] = {}
    for position, node_id in enumerate(frame.cooperators):
        if node_id not in order:
            order[node_id] = position
    return order


def hello_ranges(frame: HelloFrame) -> dict[NodeId, list[tuple[int, int]]]:
    """Flow → ``(lo, hi)`` known-range list of one HELLO frame.

    Entry order within a flow is preserved, so replaying a flow's list
    issues the same ``extend_range`` calls in the same order as the
    legacy whole-tuple scan.
    """
    ranges: dict[NodeId, list[tuple[int, int]]] = {}
    for flow, lo, hi in frame.flow_ranges:
        ranges.setdefault(flow, []).append((lo, hi))
    return ranges


@dataclass(slots=True)
class CarqStats:
    """Protocol activity counters for one vehicle and one round."""

    hellos_sent: int = 0
    request_frames_sent: int = 0
    seqs_requested: int = 0
    responses_sent: int = 0
    responses_suppressed: int = 0
    duplicate_recoveries: int = 0
    recovery_passes: int = 0
    recovery_completed_at: float | None = None
    recovery_started_at: float | None = None


class CarqProtocol:
    """Vehicle-side Cooperative ARQ.

    Parameters
    ----------
    sim:
        The simulation kernel.
    node:
        The vehicle node (provides identity, position and the interface).
    ap_ids:
        Identity (or identities, for multi-AP roads) of the access points
        whose frames define coverage.
    config:
        Protocol tunables (defaults = the paper's prototype).
    rng:
        Stream for HELLO jitter.
    pool:
        Optional :class:`~repro.core.engine.ProtocolPool`.  When given,
        the pool takes over receive dispatch and the coverage watchdog
        (struct-of-arrays deadlines, one sweep event per broadcast)
        instead of a per-vehicle receive callback and timer events.
        Protocol semantics are identical either way (pinned by the A/B
        suite); the pool is purely an event-traffic optimisation.
    """

    __slots__ = (
        "sim",
        "node",
        "my_flow",
        "config",
        "_rng",
        "phase",
        "state",
        "table",
        "coop_buffer",
        "stats",
        "_obs",
        "_started",
        "_last_ap_time",
        "_coverage_event",
        "_recovery_process",
        "_overheard_responses",
        "ap_ids",
    )

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        ap_ids: NodeId | typing.Iterable[NodeId],
        config: CarqConfig,
        rng: np.random.Generator,
        pool: "typing.Any | None" = None,
    ) -> None:
        self.sim = sim
        self.node = node
        #: The flow addressed to this vehicle (its own download).  A plain
        #: attribute, not a property — it is read on every frame.
        self.my_flow: NodeId = node.node_id
        if isinstance(ap_ids, int):
            self.ap_ids: frozenset[NodeId] = frozenset({NodeId(ap_ids)})
        else:
            self.ap_ids = frozenset(ap_ids)
        self.config = config
        self._rng = rng

        self.phase = Phase.IDLE
        self.state = FlowReceptionState()
        self.table = CooperatorTable()
        self.coop_buffer = PacketBuffer(config.buffer_capacity)
        self.stats = CarqStats()
        # Frame-level metrics (None while repro.obs is disabled).  The
        # per-round science numbers stay in ``stats``; the probes feed the
        # cross-round/cross-task telemetry stream.
        self._obs = protocol_probes()

        self._started = False
        self._last_ap_time: float | None = None
        self._coverage_event: Event | None = None
        self._recovery_process: Process | None = None
        # (flow, seq) → time a coop response was last overheard (suppression).
        self._overheard_responses: dict[tuple[NodeId, int], float] = {}

        if pool is not None:
            pool.register(self)
        else:
            node.iface.add_receive_callback(self._on_frame)

    # ------------------------------------------------------------------ API --

    def start(self) -> None:
        """Launch the HELLO beacon process.

        Raises
        ------
        ProtocolError
            If called twice.
        """
        if self._started:
            raise ProtocolError(f"protocol on {self.node.name!r} already started")
        self._started = True
        self.sim.process(self._hello_loop(), name=f"{self.node.name}.hello")

    def lost_before_cooperation(self) -> list[int]:
        """Sequence numbers in the known range missed from the AP directly."""
        if self.state.known_lo is None:
            return []
        return [
            seq
            for seq in range(self.state.known_lo, self.state.known_hi + 1)
            if seq not in self.state.received
        ]

    def lost_after_cooperation(self) -> list[int]:
        """Sequence numbers still missing after cooperative recovery."""
        return self.state.missing()

    # ------------------------------------------------------------ HELLO beacon --

    def _hello_loop(self) -> typing.Generator[float, None, None]:
        period = self.config.hello_period_s
        jitter = self.config.hello_jitter_fraction * period
        # Desynchronise first beacons across cars.
        yield float(self._rng.uniform(0.0, period))
        while True:
            self._broadcast_hello()
            if jitter > 0.0:
                yield period + float(self._rng.uniform(-jitter, jitter))
            else:
                yield period

    def _broadcast_hello(self) -> None:
        now = self.sim.now
        self.table.expire(now, self.config.cooperator_ttl_s)
        cooperators = self.table.my_cooperators()
        if self.config.selection is not None:
            cooperators = self.config.selection.select(self.table, cooperators)
        flow_ranges = tuple(
            (flow, *self.coop_buffer.flow_range(flow))
            for flow in sorted(self.coop_buffer.flows())
        )
        frame = HelloFrame(
            src=self.node.node_id,
            dst=BROADCAST,
            size_bytes=HelloFrame.size_for(len(cooperators), len(flow_ranges)),
            cooperators=cooperators,
            flow_ranges=flow_ranges,
        )
        self.node.iface.send(frame)
        self.stats.hellos_sent += 1
        if self._obs is not None:
            self._obs.hello_tx.value += 1

    # ------------------------------------------------------------ frame dispatch --

    def _on_frame(self, frame: Frame, info: RxInfo) -> None:
        if isinstance(frame, DataFrame):
            self._on_data(frame, info)
        elif isinstance(frame, HelloFrame):
            self._on_hello(frame, info)
        elif isinstance(frame, RequestFrame):
            self._on_request(frame, info)
        elif isinstance(frame, CoopDataFrame):
            self._on_coop_data(frame, info)
        # Other frame kinds (baseline ACK/NACK/SUMMARY) are not ours.

    def _on_data(self, frame: DataFrame, info: RxInfo) -> None:
        if frame.src not in self.ap_ids:
            return
        self._receive_ap_data(frame, self.sim.now)
        self._arm_coverage_watchdog()

    def _receive_ap_data(self, frame: DataFrame, now: float) -> None:
        """Reception bookkeeping for one AP data frame.

        The watchdog-free part of :meth:`_on_data`: the pooled path
        (:class:`repro.core.engine.ProtocolPool`) calls this directly —
        phase entry and the coverage deadline are handled by the pool's
        struct-of-arrays sweep instead of per-vehicle timer events — so
        the reception semantics exist exactly once.
        """
        self._last_ap_time = now
        self._enter_reception()
        if frame.flow_dst == self.my_flow:
            self.state.record_direct(frame.seq, now)
        elif self.table.is_partner(frame.flow_dst):
            self.coop_buffer.add(
                BufferEntry(frame.flow_dst, frame.seq, now, frame.size_bytes)
            )

    def _on_hello(self, frame: HelloFrame, info: RxInfo) -> None:
        self._receive_hello(
            frame, info, hello_order(frame), hello_ranges(frame)
        )

    def _receive_hello(
        self,
        frame: HelloFrame,
        info: RxInfo,
        order: dict[NodeId, int],
        ranges: dict[NodeId, list[tuple[int, int]]],
    ) -> None:
        """Reception bookkeeping for one HELLO frame.

        *order* and *ranges* are the frame's cooperator list and flow
        ranges pre-digested by :func:`hello_order` / :func:`hello_ranges`
        — the pooled path (:class:`repro.core.engine.ProtocolPool`)
        digests them once per broadcast and fans the dicts out to every
        member receiver, so the per-receiver work drops from two list
        scans to two dict lookups while the semantics exist exactly once.
        """
        now = self.sim.now
        if self._obs is not None:
            self._obs.hello_rx.value += 1
        self.table.hear_hello(NodeId(frame.src), now, info.rx_power_dbm)
        my_order = order.get(self.node.node_id)
        if my_order is not None:
            self.table.note_partner(NodeId(frame.src), my_order, now)
        else:
            self.table.forget_partner(NodeId(frame.src))
        if self.config.recovery_range == "platoon":
            extended = False
            for lo, hi in ranges.get(self.my_flow, ()):
                old = (self.state.known_lo, self.state.known_hi)
                self.state.extend_range(lo, hi)
                extended = extended or old != (
                    self.state.known_lo,
                    self.state.known_hi,
                )
            if extended:
                self._maybe_restart_recovery()

    def _on_request(self, frame: RequestFrame, info: RxInfo) -> None:
        if self._obs is not None:
            self._obs.request_rx.value += 1
        requester = NodeId(frame.src)
        my_order = self.table.my_order_for(requester)
        if my_order is None:
            return  # the requester does not consider me a cooperator
        held = [seq for seq in frame.seqs if self.coop_buffer.has(requester, seq)]
        if not held:
            return
        self.sim.process(
            self._respond(requester, held, my_order, self.sim.now),
            name=f"{self.node.name}.respond-{requester}",
        )

    def _on_coop_data(self, frame: CoopDataFrame, info: RxInfo) -> None:
        now = self.sim.now
        if self._obs is not None:
            self._obs.coop_data_rx.value += 1
        key = (frame.flow_dst, frame.seq)
        self._overheard_responses[key] = now
        if frame.flow_dst == self.my_flow:
            if not self.state.record_recovered(frame.seq, now):
                self.stats.duplicate_recoveries += 1
        elif (
            self.config.buffer_overheard_responses
            and self.table.is_partner(frame.flow_dst)
        ):
            self.coop_buffer.add(
                BufferEntry(frame.flow_dst, frame.seq, now, frame.size_bytes)
            )

    # ------------------------------------------------------------ coverage watchdog --

    def _enter_reception(self) -> None:
        """AP contact: abort any recovery and enter the Reception phase.

        The phase-transition half of hearing the AP, shared by the
        legacy per-vehicle path and the pooled path; only *when the
        watchdog fires* differs between the two (a per-vehicle timer
        event here, the pool's deadline array there).
        """
        if self.phase is Phase.RECOVERY and self._recovery_process is not None:
            if self._recovery_process.alive:
                self._recovery_process.interrupt("ap-contact")
            self._recovery_process = None
        self.phase = Phase.RECEPTION

    def _arm_coverage_watchdog(self) -> None:
        """Legacy watchdog: one cancel + one schedule per AP reception."""
        if self._coverage_event is not None:
            self.sim.cancel(self._coverage_event)
        self._coverage_event = self.sim.schedule(
            self.config.coverage_timeout_s, self._coverage_timeout
        )

    def _coverage_timeout(self) -> None:
        self._coverage_event = None
        self._coverage_expired()

    def _coverage_expired(self) -> None:
        """The watchdog verdict: no AP heard for the timeout → dark area.

        Shared by the legacy timer event and the pool's coverage sweep.
        """
        if self.phase is not Phase.RECEPTION:
            return
        self.phase = Phase.RECOVERY
        if self.stats.recovery_started_at is None:
            self.stats.recovery_started_at = self.sim.now
        self._start_recovery()

    def _start_recovery(self) -> None:
        self._recovery_process = self.sim.process(
            self._recovery_loop(), name=f"{self.node.name}.recovery"
        )

    def _maybe_restart_recovery(self) -> None:
        """New range knowledge arrived while idle in the dark area."""
        if self.phase is Phase.RECOVERY and (
            self._recovery_process is None or not self._recovery_process.alive
        ):
            if self.state.missing():
                self._start_recovery()

    # ------------------------------------------------------------ requester side --

    def _response_window(self, n_seqs: int) -> float:
        """How long to wait for cooperators to answer *n_seqs* requests."""
        cooperators = max(len(self.table), 1)
        per_frame = self._coop_frame_airtime() + self.config.request_guard_s
        return cooperators * self.config.responder_slot_s + n_seqs * per_frame

    def _coop_frame_airtime(self) -> float:
        size = DataFrame.size_for_payload(1000)
        return frame_airtime(size, self.node.iface.config.rate)

    def _recovery_loop(self) -> typing.Generator[float, None, None]:
        """Cycle REQUESTs over the missing list (paper §3.3).

        The paper's node "starts again from the beginning of the actualized
        (shorter) list" after each pass; we additionally stop after
        ``max_stagnant_passes`` passes with zero progress, because two cars
        that have drifted out of range would otherwise request forever.
        """
        stagnant_passes = 0
        try:
            while True:
                missing = self.state.missing()
                if not missing:
                    if self.stats.recovery_completed_at is None:
                        self.stats.recovery_completed_at = self.sim.now
                    return
                if len(self.table) == 0:
                    return  # nobody to ask
                recovered_before = len(self.state.recovered)
                self.stats.recovery_passes += 1
                if self.config.batch_requests:
                    yield from self._request_batched(missing)
                else:
                    yield from self._request_one_by_one(missing)
                if len(self.state.recovered) == recovered_before:
                    stagnant_passes += 1
                    if stagnant_passes >= self.config.max_stagnant_passes:
                        return
                else:
                    stagnant_passes = 0
                yield self.config.request_guard_s
        except Interrupt:
            return  # back in AP coverage: the reception phase takes over

    def _request_one_by_one(
        self, missing: list[int]
    ) -> typing.Generator[float, None, None]:
        for seq in missing:
            if self.state.has(seq):
                continue  # recovered earlier in this pass
            frame = RequestFrame(
                src=self.node.node_id,
                dst=BROADCAST,
                size_bytes=RequestFrame.size_for(1),
                seqs=(seq,),
            )
            self.node.iface.send(frame)
            self.stats.request_frames_sent += 1
            self.stats.seqs_requested += 1
            if self._obs is not None:
                self._obs.request_tx.value += 1
            yield self._response_window(1)

    def _request_batched(
        self, missing: list[int]
    ) -> typing.Generator[float, None, None]:
        for start in range(0, len(missing), self.config.max_batch):
            chunk = tuple(
                seq for seq in missing[start : start + self.config.max_batch]
                if not self.state.has(seq)
            )
            if not chunk:
                continue
            frame = RequestFrame(
                src=self.node.node_id,
                dst=BROADCAST,
                size_bytes=RequestFrame.size_for(len(chunk)),
                seqs=chunk,
            )
            self.node.iface.send(frame)
            self.stats.request_frames_sent += 1
            self.stats.seqs_requested += len(chunk)
            if self._obs is not None:
                self._obs.request_tx.value += 1
            yield self._response_window(len(chunk))

    # ------------------------------------------------------------ responder side --

    def _respond(
        self,
        requester: NodeId,
        seqs: list[int],
        my_order: int,
        request_time: float,
    ) -> typing.Generator[float, None, None]:
        """Answer a REQUEST after the order-based back-off (§3.2/§3.3)."""
        yield my_order * self.config.responder_slot_s
        for seq in seqs:
            entry = self.coop_buffer.get(requester, seq)
            if entry is None:
                continue  # evicted meanwhile
            overheard = self._overheard_responses.get((requester, seq))
            if overheard is not None and overheard >= request_time:
                self.stats.responses_suppressed += 1
                if self._obs is not None:
                    self._obs.responses_suppressed.value += 1
                continue
            frame = CoopDataFrame(
                src=self.node.node_id,
                dst=requester,
                size_bytes=entry.size_bytes,
                flow_dst=requester,
                seq=seq,
                relayer=self.node.node_id,
            )
            self.node.iface.send(frame)
            self.stats.responses_sent += 1
            if self._obs is not None:
                self._obs.coop_data_tx.value += 1
            yield frame_airtime(entry.size_bytes, self.node.iface.config.rate) + (
                self.config.request_guard_s
            )
