"""Pooled protocol stepping: one batched pass per broadcast.

One :class:`ProtocolPool` serves all C-ARQ vehicles of a scenario.  It
plugs into the medium as the coalesced delivery sink
(:meth:`repro.mac.medium.Medium.set_delivery_sink`), so every broadcast
reaches the protocol layer as a single call carrying all successful
receivers instead of one callback chain per receiver.

The payoff is on the hottest frame class, AP data.  Per reception the
legacy path runs a per-vehicle coverage watchdog — cancel the previous
timeout event, schedule a new one — so a stream of AP frames toward an
N-car platoon costs 2·N event-queue operations per frame, and the
cancelled corpses keep the queue compacting.  The pool keeps the
watchdog state as struct-of-arrays instead: one float64 deadline per
vehicle, extended with a vectorized write, plus a *single* shared
coverage-sweep event per broadcast.  Sweeps are lazy timers: a sweep
fires at its recorded due time and wakes exactly the vehicles whose
deadline still equals it — vehicles that heard a later AP frame moved
their deadline forward and are skipped, with no cancellation traffic at
all.

Semantics are unchanged from the per-vehicle path (the A/B suite pins
scenario results equal with the pool on and off); only the event-queue
traffic shrinks.  Non-data frames and receivers that are not pool
members (baseline vehicles, APs) fall back to the exact legacy dispatch
in arrival order.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.protocol import hello_order, hello_ranges
from repro.mac.frames import DataFrame, Frame, HelloFrame
from repro.mac.medium import RxInfo
from repro.sim import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import CarqProtocol
    from repro.mac.interface import NetworkInterface

Delivery = tuple["NetworkInterface", Frame, RxInfo]


class ProtocolPool:
    """Struct-of-arrays stepping for a population of C-ARQ protocols.

    Protocols join via :meth:`register` (called from
    :class:`~repro.core.protocol.CarqProtocol` when constructed with a
    pool); the pool then owns their coverage watchdogs and their receive
    dispatch.  Install :meth:`deliver_broadcast` as the medium's
    delivery sink to activate the batched path.
    """

    __slots__ = ("_sim", "_protocols", "_by_iface", "_deadline", "_timeout",)

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._protocols: list[CarqProtocol] = []
        self._by_iface: dict[NetworkInterface, int] = {}
        # Coverage-watchdog deadline per member (+inf = not armed) and
        # the member's configured timeout — the struct-of-arrays state
        # the sweep scans in one vectorized comparison.
        self._deadline = np.empty(0, dtype=np.float64)
        self._timeout = np.empty(0, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._protocols)

    def register(self, protocol: "CarqProtocol") -> None:
        """Add a protocol; the pool takes over its receive dispatch."""
        self._by_iface[protocol.node.iface] = len(self._protocols)
        self._protocols.append(protocol)
        self._deadline = np.append(self._deadline, np.inf)
        self._timeout = np.append(
            self._timeout, protocol.config.coverage_timeout_s
        )

    # -- delivery sink --------------------------------------------------------

    def deliver_broadcast(self, deliveries: list[Delivery]) -> None:
        """Dispatch one broadcast's successful receptions (the sink).

        AP data frames take the struct-of-arrays pass; everything else
        (HELLO / REQUEST / coop data / foreign receivers) runs the exact
        legacy per-receiver dispatch in arrival order.
        """
        if type(deliveries[0][1]) is DataFrame:
            self._ap_data_pass(deliveries)
            return
        if type(deliveries[0][1]) is HelloFrame and len(deliveries) >= 2:
            self._hello_pass(deliveries)
            return
        by_iface = self._by_iface
        protocols = self._protocols
        for iface, frame, info in deliveries:
            index = by_iface.get(iface)
            if index is None:
                iface.deliver(frame, info)
            else:
                iface.frames_received += 1
                protocols[index]._on_frame(frame, info)
                for callback in iface._receive_callbacks:
                    callback(frame, info)

    def _hello_pass(self, deliveries: list[Delivery]) -> None:
        """All HELLO receptions of one broadcast, frame digested once.

        Every receiver of a broadcast sees the same frame, so the
        cooperator-order and flow-range scans of the legacy per-receiver
        ``_on_hello`` are redundant past the first receiver.  The pass
        digests them once (:func:`~repro.core.protocol.hello_order` /
        :func:`~repro.core.protocol.hello_ranges`) and hands the dicts to
        every member's :meth:`CarqProtocol._receive_hello`; non-members
        get the exact legacy dispatch.  Only taken for ≥2 receivers —
        a single receiver pays the digest either way.
        """
        by_iface = self._by_iface
        protocols = self._protocols
        frame = deliveries[0][1]
        order = hello_order(frame)
        ranges = hello_ranges(frame)
        for iface, frame, info in deliveries:
            index = by_iface.get(iface)
            if index is None:
                iface.deliver(frame, info)
                continue
            iface.frames_received += 1
            protocols[index]._receive_hello(frame, info, order, ranges)
            for callback in iface._receive_callbacks:
                callback(frame, info)

    def _ap_data_pass(self, deliveries: list[Delivery]) -> None:
        """All data receptions of one broadcast, one watchdog re-arm.

        Per member receiver: reception bookkeeping (sequence sets, coop
        buffer) via :meth:`CarqProtocol._receive_ap_data`, which is the
        legacy ``_on_data`` minus the per-vehicle timer churn.  Then one
        deadline write over all woken members and a single sweep event.
        """
        now = self._sim.now
        by_iface = self._by_iface
        protocols = self._protocols
        woken: list[int] = []
        for iface, frame, info in deliveries:
            index = by_iface.get(iface)
            if index is None:
                iface.deliver(frame, info)
                continue
            iface.frames_received += 1
            protocol = protocols[index]
            if frame.src in protocol.ap_ids:
                protocol._receive_ap_data(frame, now)
                woken.append(index)
            else:
                protocol._on_frame(frame, info)
            for callback in iface._receive_callbacks:
                callback(frame, info)
        if not woken:
            return
        # Group by due time: one sweep event per distinct deadline
        # (scenarios share one CarqConfig, so this is one group — the
        # general shape only matters for mixed-timeout populations).
        timeout = self._timeout
        deadline = self._deadline
        dues: dict[float, list[int]] = {}
        for index in woken:
            dues.setdefault(now + timeout[index], []).append(index)
        schedule_at = self._sim.schedule_at
        for due, members in dues.items():
            if len(members) >= 8:
                deadline[np.asarray(members)] = due
            else:
                for index in members:
                    deadline[index] = due
            schedule_at(due, self._coverage_sweep, due)

    # -- coverage sweep --------------------------------------------------------

    def _coverage_sweep(self, due: float) -> None:
        """Wake every member whose watchdog still expires exactly now.

        Members that heard a later AP frame carry a later deadline and
        fall through the vectorized comparison — the lazy-timer
        equivalent of the legacy path's cancel-and-reschedule, with no
        queue traffic for the common keep-alive case.
        """
        deadline = self._deadline
        for index in np.flatnonzero(deadline == due):
            deadline[index] = np.inf
            self._protocols[index]._coverage_expired()
