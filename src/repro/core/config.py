"""C-ARQ protocol configuration."""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.selection import CooperatorSelection


@dataclass(slots=True, frozen=True)
class CarqConfig:
    """All tunables of the vehicle-side protocol.

    Defaults reproduce the paper's prototype.

    Attributes
    ----------
    hello_period_s:
        Interval between HELLO broadcasts (§3.2).
    hello_jitter_fraction:
        Uniform jitter on the HELLO period, preventing synchronised
        beacons.
    coverage_timeout_s:
        Silence from the AP after which the car leaves the Reception
        phase and starts Cooperative-ARQ (5 s in the prototype, §3.3).
    cooperator_ttl_s:
        A cooperator whose HELLOs have not been heard for this long is
        dropped from the table.
    responder_slot_s:
        The fixed back-off unit: the cooperator with order *i* answers a
        REQUEST after ``i × responder_slot_s`` (§3.2/§3.3).  Must exceed
        the coop-data airtime so lower-order answers are overheard (and
        suppress) before higher orders fire.
    request_guard_s:
        Extra wait after the last responder slot before the requester
        moves on to its next missing packet.
    batch_requests:
        ``False`` = one REQUEST per missing packet (the paper's base
        protocol); ``True`` = pack the whole missing list into one frame
        (the §3.3 optimisation).
    max_batch:
        Cap on sequence numbers per batched REQUEST frame.
    recovery_range:
        ``"platoon"`` — learn the full flow range from cooperator
        advertisements (matches the paper's figures; see DESIGN.md §2);
        ``"self"`` — only recover between own first and last direct
        receptions (the literal §3.3 reading).
    max_stagnant_passes:
        Stop requesting after this many consecutive full passes with no
        new recovery (cooperators are out of range or have nothing more).
    buffer_capacity:
        Cooperative-buffer capacity in packets (``None`` = unbounded).
    buffer_overheard_responses:
        Whether overheard coop-data responses addressed to other cars are
        added to the cooperative buffer (harmless and faithful to the
        buffering rule of §3.2; can be disabled for ablation).
    selection:
        Cooperator-selection strategy (``None`` = the paper's implicit
        all-one-hop-neighbours rule).
    """

    hello_period_s: float = 1.0
    hello_jitter_fraction: float = 0.1
    coverage_timeout_s: float = 5.0
    cooperator_ttl_s: float = 10.0
    responder_slot_s: float = 0.012
    request_guard_s: float = 0.012
    batch_requests: bool = False
    max_batch: int = 64
    recovery_range: str = "platoon"
    max_stagnant_passes: int = 3
    buffer_capacity: int | None = None
    buffer_overheard_responses: bool = True
    selection: "CooperatorSelection | None" = None

    def __post_init__(self) -> None:
        if self.hello_period_s <= 0.0:
            raise ConfigurationError("hello period must be positive")
        if not 0.0 <= self.hello_jitter_fraction < 1.0:
            raise ConfigurationError("hello jitter fraction must be in [0, 1)")
        if self.coverage_timeout_s <= 0.0:
            raise ConfigurationError("coverage timeout must be positive")
        if self.cooperator_ttl_s <= 0.0:
            raise ConfigurationError("cooperator TTL must be positive")
        if self.responder_slot_s <= 0.0:
            raise ConfigurationError("responder slot must be positive")
        if self.request_guard_s < 0.0:
            raise ConfigurationError("request guard must be >= 0")
        if self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        if self.recovery_range not in ("platoon", "self"):
            raise ConfigurationError(
                f"recovery_range must be 'platoon' or 'self', got {self.recovery_range!r}"
            )
        if self.max_stagnant_passes <= 0:
            raise ConfigurationError("max_stagnant_passes must be positive")
