"""Protocol phase and per-flow reception bookkeeping."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Phase(enum.Enum):
    """Where in the paper's three-phase cycle a vehicle currently is.

    ``IDLE`` precedes the first association (the car has never heard an
    AP); afterwards the node alternates between ``RECEPTION`` (in
    coverage) and ``RECOVERY`` (dark area, Cooperative-ARQ).
    """

    IDLE = "idle"
    RECEPTION = "reception"
    RECOVERY = "recovery"


@dataclass(slots=True)
class FlowReceptionState:
    """What a vehicle knows about its *own* download flow.

    Attributes
    ----------
    received:
        Sequence numbers received directly from the AP.
    recovered:
        Sequence numbers obtained through cooperation, mapped to the
        recovery timestamp.
    known_lo / known_hi:
        The flow range the node believes exists — from its own receptions
        plus (in ``"platoon"`` recovery-range mode) cooperator
        advertisements.  ``None`` until anything is known.
    first_rx_time:
        Instant of association (first direct reception).
    last_rx_time:
        Instant of the most recent direct reception.
    """

    received: set[int] = field(default_factory=set)
    recovered: dict[int, float] = field(default_factory=dict)
    known_lo: int | None = None
    known_hi: int | None = None
    first_rx_time: float | None = None
    last_rx_time: float | None = None

    def record_direct(self, seq: int, time: float) -> None:
        """Record a packet received straight from the AP."""
        self.received.add(seq)
        self.extend_range(seq, seq)
        if self.first_rx_time is None:
            self.first_rx_time = time
        self.last_rx_time = time

    def record_recovered(self, seq: int, time: float) -> bool:
        """Record a cooperative recovery; returns ``False`` for duplicates."""
        if seq in self.received or seq in self.recovered:
            return False
        self.recovered[seq] = time
        self.extend_range(seq, seq)
        return True

    def extend_range(self, lo: int, hi: int) -> None:
        """Widen the known flow range to include ``[lo, hi]``."""
        if self.known_lo is None or lo < self.known_lo:
            self.known_lo = lo
        if self.known_hi is None or hi > self.known_hi:
            self.known_hi = hi

    def has(self, seq: int) -> bool:
        """Whether the packet is available (directly or via recovery)."""
        return seq in self.received or seq in self.recovered

    def missing(self) -> list[int]:
        """Sorted sequence numbers still absent within the known range."""
        if self.known_lo is None or self.known_hi is None:
            return []
        return [
            seq
            for seq in range(self.known_lo, self.known_hi + 1)
            if seq not in self.received and seq not in self.recovered
        ]

    @property
    def delivered_count(self) -> int:
        """Packets available after cooperation."""
        return len(self.received) + len(self.recovered)
