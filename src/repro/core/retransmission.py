"""AP-side retransmission policies (paper §3.2 remark and §6 future work).

The prototype disables retransmissions entirely "at the hope that other
cars in the platoon will receive [the] packets", trading in-coverage
airtime for dark-area recovery.  The paper notes that "a retransmission
scheme (possibly adaptive with respect to the number of cooperators) would
be needed in a real system" — these policies implement that design space
for the ablation experiment:

* :class:`NoRetransmission` — the paper's prototype (1 copy);
* :class:`FixedRetransmission` — blindly send *n* copies of every packet;
* :class:`AdaptiveRetransmission` — send ``max(1, n - cooperators)``
  copies: the more cooperators a car has, the more the AP relies on
  C-ARQ instead of spending its own airtime.
"""

from __future__ import annotations

import abc
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.mac.frames import NodeId


class RetransmissionPolicy(abc.ABC):
    """Interface: how many copies of each data packet the AP transmits."""

    __slots__ = ()

    @abc.abstractmethod
    def copies_for(self, flow_dst: NodeId, seq: int) -> int:
        """Total transmit count (≥ 1) for the given packet."""


class NoRetransmission(RetransmissionPolicy):
    """Exactly one transmission per packet — the paper's prototype."""

    __slots__ = ()

    def copies_for(self, flow_dst: NodeId, seq: int) -> int:
        return 1


class FixedRetransmission(RetransmissionPolicy):
    """A constant number of copies per packet."""

    __slots__ = ("copies",)

    def __init__(self, copies: int) -> None:
        if copies < 1:
            raise ConfigurationError(f"copies must be >= 1, got {copies!r}")
        self.copies = copies

    def copies_for(self, flow_dst: NodeId, seq: int) -> int:
        return self.copies


class AdaptiveRetransmission(RetransmissionPolicy):
    """Copies shrink as the destination's cooperator count grows.

    Parameters
    ----------
    base_copies:
        Copies for a car with no cooperators.
    cooperator_count_fn:
        Callback reporting the current cooperator count of a car (the
        scenario wires this to the vehicles' tables; a deployed system
        would learn it from uplink HELLO summaries).
    """

    __slots__ = ("base_copies", "_cooperator_count_fn",)

    def __init__(
        self,
        base_copies: int,
        cooperator_count_fn: Callable[[NodeId], int],
    ) -> None:
        if base_copies < 1:
            raise ConfigurationError(f"base copies must be >= 1, got {base_copies!r}")
        self.base_copies = base_copies
        self._cooperator_count_fn = cooperator_count_fn

    def copies_for(self, flow_dst: NodeId, seq: int) -> int:
        cooperators = max(self._cooperator_count_fn(flow_dst), 0)
        return max(1, self.base_copies - cooperators)
