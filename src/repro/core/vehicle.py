"""A vehicle node running the Cooperative-ARQ protocol."""

from __future__ import annotations

import numpy as np

from repro.core.config import CarqConfig
from repro.core.protocol import CarqProtocol
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.net.node import Node
from repro.radio.phy import RadioConfig
from repro.sim import Simulator


class VehicleNode(Node):
    """A car in the platoon: node + C-ARQ protocol, ready to start.

    Parameters
    ----------
    sim, medium, node_id, mobility, radio, rng, name:
        As for :class:`~repro.net.node.Node`.
    ap_ids:
        The access point(s) whose frames define coverage.
    config:
        Protocol configuration (defaults reproduce the paper's prototype).
    pool:
        Optional :class:`~repro.core.engine.ProtocolPool` to join (see
        :class:`~repro.core.protocol.CarqProtocol`).
    """

    __slots__ = ("protocol",)

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        ap_ids: NodeId | list[NodeId],
        config: CarqConfig | None = None,
        name: str = "",
        pool=None,
    ) -> None:
        super().__init__(sim, medium, node_id, mobility, radio, rng, name=name)
        self.protocol = CarqProtocol(
            sim,
            self,
            ap_ids,
            config if config is not None else CarqConfig(),
            rng,
            pool=pool,
        )

    def start(self) -> None:
        """Start the protocol's beacon process."""
        self.protocol.start()
