"""The road-side access point (infostation) application.

The testbed AP "continually transmit[s] numbered packets addressed to each
car": one flow per car, a fixed packet rate and payload, no MAC
retransmissions.  :class:`AccessPoint` reproduces exactly that, plus an
optional retransmission policy hook used by the ARQ baseline and the
adaptive-retransmission extension (paper §6 future work).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mac.frames import DataFrame, NodeId
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.net.node import Node
from repro.radio.phy import RadioConfig
from repro.sim import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.retransmission import RetransmissionPolicy


@dataclass(slots=True, frozen=True)
class FlowConfig:
    """One AP→car data flow.

    Attributes
    ----------
    destination:
        The car the flow is addressed to.
    packet_rate_hz:
        Packets per second (testbed: 5).
    payload_bytes:
        Application payload per packet (testbed: 1000-byte ICMP).
    first_seq:
        Sequence number of the first packet.
    blocks:
        ``None`` streams ever-increasing sequence numbers (the testbed's
        numbered ICMP stream).  An integer *B* switches to *file mode*:
        the AP cyclically broadcasts blocks ``first_seq .. first_seq+B-1``
        — the multi-AP download study's workload, where a car completes
        once it holds all *B* distinct blocks.
    """

    destination: NodeId
    packet_rate_hz: float = 5.0
    payload_bytes: int = 1000
    first_seq: int = 1
    blocks: int | None = None

    def __post_init__(self) -> None:
        if self.packet_rate_hz <= 0.0:
            raise ConfigurationError("packet rate must be positive")
        if self.payload_bytes <= 0:
            raise ConfigurationError("payload must be positive")
        if self.blocks is not None and self.blocks <= 0:
            raise ConfigurationError("blocks must be positive when set")


class AccessPoint(Node):
    """An infostation streaming numbered packets to each configured flow.

    Parameters
    ----------
    flows:
        One :class:`FlowConfig` per car.
    jitter_fraction:
        Uniform jitter applied to each inter-packet gap (models the
        software sender of the testbed); 0 disables.
    retransmission_policy:
        Optional policy consulted after each transmission round-trip —
        ``None`` reproduces the paper (retransmissions disabled).
    """

    __slots__ = (
        "flows",
        "_jitter_fraction",
        "_rng",
        "_retx_policy",
        "last_seq_sent",
        "frames_sent_per_flow",
        "_running",
    )

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        flows: typing.Sequence[FlowConfig],
        *,
        jitter_fraction: float = 0.05,
        retransmission_policy: "RetransmissionPolicy | None" = None,
        name: str = "ap",
    ) -> None:
        super().__init__(sim, medium, node_id, mobility, radio, rng, name=name)
        if not flows:
            raise ConfigurationError("an access point needs at least one flow")
        destinations = [f.destination for f in flows]
        if len(set(destinations)) != len(destinations):
            raise ConfigurationError("duplicate flow destinations")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        self.flows = tuple(flows)
        self._jitter_fraction = jitter_fraction
        self._rng = rng
        self._retx_policy = retransmission_policy
        #: Highest sequence number sent so far, per flow destination.
        self.last_seq_sent: dict[NodeId, int] = {}
        #: Total data frames transmitted per flow (including retransmissions).
        self.frames_sent_per_flow: dict[NodeId, int] = {f.destination: 0 for f in flows}
        self._running = False

    def start(self) -> None:
        """Launch one sender timer chain per flow."""
        if self._running:
            raise ConfigurationError(f"{self.name!r} already started")
        self._running = True
        for flow in self.flows:
            self._start_flow(flow)

    # The sender is a flat self-rescheduling callback rather than a
    # generator process: a dense round resumes the AP senders ~100k
    # times, and the process machinery's per-resumption overhead showed
    # up in profiles.  The callback schedules exactly the events the
    # generator yielded (kick-off at the current instant, then one timer
    # per packet) with the same jitter draw order, so the event sequence
    # — and every downstream tie-break — is unchanged.
    def _start_flow(self, flow: FlowConfig) -> None:
        interval = 1.0 / flow.packet_rate_hz
        size = DataFrame.size_for_payload(flow.payload_bytes)
        counter = 0

        def tick() -> None:
            nonlocal counter
            if flow.blocks is None:
                seq = flow.first_seq + counter
            else:
                seq = flow.first_seq + (counter % flow.blocks)
            frame = DataFrame(
                src=self.node_id,
                dst=flow.destination,
                size_bytes=size,
                flow_dst=flow.destination,
                seq=seq,
            )
            self.iface.send(frame)
            self.last_seq_sent[flow.destination] = seq
            self.frames_sent_per_flow[flow.destination] += 1
            if self._retx_policy is not None:
                for _ in range(self._retx_policy.copies_for(flow.destination, seq) - 1):
                    self.iface.send(frame)
                    self.frames_sent_per_flow[flow.destination] += 1
            counter += 1
            if self._jitter_fraction > 0.0:
                jitter = self._jitter_fraction * interval
                delay = interval + float(self._rng.uniform(-jitter, jitter))
            else:
                delay = interval
            self.sim.schedule(delay, tick)

        self.sim.schedule(0.0, tick)
