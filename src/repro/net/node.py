"""Base class tying identity, mobility and radio together."""

from __future__ import annotations

import numpy as np

from repro.geom import Vec2
from repro.mac.frames import NodeId
from repro.mac.interface import NetworkInterface
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.obs.registry import registry as _metrics_registry
from repro.radio.phy import RadioConfig
from repro.sim import Simulator


class Node:
    """A network participant: an AP or a vehicle.

    Parameters
    ----------
    sim, medium:
        Simulation kernel and shared medium.
    node_id:
        Unique identity.
    mobility:
        Position source (static mount for APs, trajectory for cars).
    radio:
        PHY parameters for this node's interface.
    rng:
        Random stream for this node's MAC back-off.
    name:
        Human-readable label.
    """

    __slots__ = ("sim", "node_id", "name", "mobility", "iface",)

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: NodeId,
        mobility: MobilityModel,
        radio: RadioConfig,
        rng: np.random.Generator,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"node-{node_id}"
        # Topology-size telemetry: one bump per node, construction-time
        # only, so no probe bundle is worth holding onto here.
        reg = _metrics_registry()
        if reg.enabled:
            reg.counter("net.nodes_built").value += 1
        self.mobility = mobility
        self.iface = NetworkInterface(
            sim,
            medium,
            node_id,
            self.position,
            radio,
            rng,
            name=f"{self.name}.iface",
            mobility=mobility,
        )

    def position(self) -> Vec2:
        """Current position at the simulator clock."""
        return self.mobility.position(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
