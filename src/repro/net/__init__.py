"""Node and application layer.

* :class:`Node` — identity + mobility + radio interface;
* :class:`AccessPoint` — the road-side infostation streaming numbered
  packets to each car (the testbed's 5 × 1000 B ICMP echo per second per
  car);
* :class:`PacketBuffer` — bounded storage for own and cooperatively
  buffered packets.
"""

from repro.mac.frames import BROADCAST, NodeId
from repro.net.node import Node
from repro.net.ap import AccessPoint, FlowConfig
from repro.net.buffer import BufferEntry, PacketBuffer

__all__ = [
    "AccessPoint",
    "BROADCAST",
    "BufferEntry",
    "FlowConfig",
    "Node",
    "NodeId",
    "PacketBuffer",
]
