"""Bounded packet storage.

Cars store two kinds of packets: their *own* flow (the download) and
packets buffered *for cooperation partners*.  Both use this structure.
Capacity is bounded with FIFO eviction — a real in-car device has finite
memory, and the eviction policy is exercised by the capacity-pressure
tests and the multi-AP experiment.

A per-flow index of stored sequence numbers is maintained incrementally:
``seqs_for_flow`` / ``flow_range`` / ``flows`` are hot — every HELLO
beacon advertises the buffered range of every flow — and scanning the
whole buffer per flow per beacon is O(buffer · flows), which dominated
dense-scenario profiles (the 32-vehicle trace benchmark) before the
index existed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.obs.probes import buffer_probes


@dataclass(slots=True, frozen=True)
class BufferEntry:
    """One stored packet."""

    flow_dst: NodeId
    seq: int
    received_at: float
    size_bytes: int


class PacketBuffer:
    """Packets keyed by ``(flow destination, sequence number)``.

    Parameters
    ----------
    capacity:
        Maximum number of stored packets; ``None`` means unbounded.
        When full, the oldest entry (insertion order) is evicted.
    """

    __slots__ = (
        "_capacity",
        "_entries",
        "_per_flow",
        "_flow_bounds",
        "evictions",
        "_obs",
    )

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(f"buffer capacity must be positive, got {capacity!r}")
        self._capacity = capacity
        self._entries: OrderedDict[tuple[NodeId, int], BufferEntry] = OrderedDict()
        # flow destination → stored seqs of that flow (kept in lockstep
        # with _entries; empty sets are dropped so flows() stays exact).
        self._per_flow: dict[NodeId, set[int]] = {}
        # flow destination → cached (min, max) stored seq, or None when
        # a boundary element was removed and the bounds must be
        # recomputed on the next flow_range query.  Every HELLO beacon
        # advertises the range of every buffered flow, so the add path
        # keeps this O(1) instead of min()+max() over the seq set.
        self._flow_bounds: dict[NodeId, tuple[int, int] | None] = {}
        #: Number of entries evicted due to capacity pressure.
        self.evictions = 0
        # Hit/miss/eviction telemetry (None while repro.obs is disabled).
        self._obs = buffer_probes()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[NodeId, int]) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> int | None:
        """Configured capacity (``None`` = unbounded)."""
        return self._capacity

    def _index_add(self, flow_dst: NodeId, seq: int) -> None:
        seqs = self._per_flow.get(flow_dst)
        if seqs is None:
            seqs = self._per_flow[flow_dst] = set()
            self._flow_bounds[flow_dst] = (seq, seq)
        else:
            bounds = self._flow_bounds[flow_dst]
            if bounds is not None:
                lo, hi = bounds
                if seq < lo:
                    self._flow_bounds[flow_dst] = (seq, hi)
                elif seq > hi:
                    self._flow_bounds[flow_dst] = (lo, seq)
        seqs.add(seq)

    def _index_remove(self, flow_dst: NodeId, seq: int) -> None:
        seqs = self._per_flow[flow_dst]
        seqs.discard(seq)
        if not seqs:
            del self._per_flow[flow_dst]
            del self._flow_bounds[flow_dst]
            return
        bounds = self._flow_bounds[flow_dst]
        if bounds is not None and (seq == bounds[0] or seq == bounds[1]):
            # A boundary left: mark dirty, recompute lazily on demand
            # (interior removals keep the cached bounds exact).
            self._flow_bounds[flow_dst] = None

    def add(self, entry: BufferEntry) -> bool:
        """Store an entry; returns ``False`` if it was already present.

        Duplicates do not refresh insertion order (re-hearing an old packet
        must not protect it from eviction forever).
        """
        key = (entry.flow_dst, entry.seq)
        if key in self._entries:
            return False
        if self._capacity is not None and len(self._entries) >= self._capacity:
            evicted_key, _ = self._entries.popitem(last=False)
            self._index_remove(*evicted_key)
            self.evictions += 1
            if self._obs is not None:
                self._obs.evictions.value += 1
        self._entries[key] = entry
        self._index_add(entry.flow_dst, entry.seq)
        return True

    def has(self, flow_dst: NodeId, seq: int) -> bool:
        """Whether the packet is stored."""
        found = (flow_dst, seq) in self._entries
        if self._obs is not None:
            if found:
                self._obs.hits.value += 1
            else:
                self._obs.misses.value += 1
        return found

    def get(self, flow_dst: NodeId, seq: int) -> BufferEntry | None:
        """The stored entry, or ``None``."""
        entry = self._entries.get((flow_dst, seq))
        if self._obs is not None:
            if entry is not None:
                self._obs.hits.value += 1
            else:
                self._obs.misses.value += 1
        return entry

    def discard(self, flow_dst: NodeId, seq: int) -> bool:
        """Remove a packet; returns whether it was present."""
        if self._entries.pop((flow_dst, seq), None) is None:
            return False
        self._index_remove(flow_dst, seq)
        return True

    def seqs_for_flow(self, flow_dst: NodeId) -> set[int]:
        """All stored sequence numbers of one flow (a copy)."""
        seqs = self._per_flow.get(flow_dst)
        return set(seqs) if seqs is not None else set()

    def flow_range(self, flow_dst: NodeId) -> tuple[int, int] | None:
        """``(min, max)`` stored sequence numbers of a flow, or ``None``.

        O(1) for the steady state (bounds are maintained incrementally
        by the add path); only the first query after a boundary element
        was discarded or evicted pays a recompute.
        """
        bounds = self._flow_bounds.get(flow_dst)
        if bounds is None:
            seqs = self._per_flow.get(flow_dst)
            if not seqs:
                return None
            bounds = (min(seqs), max(seqs))
            self._flow_bounds[flow_dst] = bounds
        return bounds

    def flows(self) -> set[NodeId]:
        """All flow destinations with at least one stored packet."""
        return set(self._per_flow)

    def entries(self) -> list[BufferEntry]:
        """All entries in insertion order (copy)."""
        return list(self._entries.values())

    def clear(self) -> None:
        """Drop everything (eviction counter is preserved)."""
        self._entries.clear()
        self._per_flow.clear()
        self._flow_bounds.clear()
