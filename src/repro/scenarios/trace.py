"""The trace-driven scenario: any real recording as a runnable workload.

The paper's results hinge on real vehicle motion past an AP window;
every other scenario synthesizes that motion from parametric platoons.
This plugin instead drives the simulation from a *mobility trace* —
SUMO FCD XML, ns-2 ``setdest``, or timestamped CSV, ingested through
:mod:`repro.mobility.traceio` — so any published vehicular dataset
becomes a C-ARQ experiment: pick a file, place the AP, choose which
vehicles the AP serves, and sweep the protocol ``mode`` like anywhere
else.

With no ``trace_file`` configured the scenario generates a
deterministic synthetic recording from its ``synth`` sub-config
(:func:`repro.mobility.traceio.synth_traces`), which is what tests, CI,
and the presets run — no external files anywhere in the loop.  Either
way the recording is *part of the configuration*: identical across
rounds (the road does not reshuffle between repetitions) while the
channel randomness varies per round as usual.

Cooperator grouping: every vehicle in the trace runs the configured
protocol, but only the first ``served_vehicles`` (sorted-id order; 0 =
all) are flow destinations.  The rest are pure cooperators — they
beacon, buffer overheard packets, and answer REQUESTs without being
served themselves — so sweeping ``served_vehicles`` isolates what
bystander traffic contributes, the trace-driven cousin of the
bidirectional scenario's oncoming platoon.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError, TraceFormatError
from repro.geom import Vec2
from repro.mac.frames import NodeId
from repro.mobility.base import MobilityModel
from repro.mobility.static import StaticMobility
from repro.mobility.traceio import FORMATS, TraceSet, load_traces, synth_traces
from repro.scenarios import channels
from repro.scenarios.common import (
    AP_NODE_ID,
    build_medium,
    build_protocol_pool,
    collect_matrices,
    make_flows,
    round_seed,
    spawn_platoon,
)
from repro.scenarios.configs import config_to_dict
from repro.scenarios.highway import _HIGHWAY_RADIO
from repro.scenarios.modes import PROTOCOL_MODES, ap_class, validate_mode
from repro.scenarios.registry import ScenarioPlugin, ScenarioPreset, register
from repro.scenarios.summaries import (
    SWEEP_REPORT_HEADER,
    SweepPoint,
    encode_matrix,
    summarize_matrices,
    sweep_report_line,
)
from repro.scenarios.urban import RadioEnvironment
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

#: Quiet tail after the last trace sample: vehicles have parked, the
#: dark-area REQUEST/REPLY recovery needs time to finish.
ROUND_SLACK_S = 40.0


@dataclass(frozen=True)
class SynthTraceConfig:
    """Parameters of the built-in synthetic recording.

    Mirrors :func:`repro.mobility.traceio.synth_traces`; only consulted
    when the scenario has no ``trace_file``.  ``seed`` is separate from
    the campaign seed on purpose: rounds re-randomize the channel, never
    the road.
    """

    vehicles: int = 8
    duration_s: float = 120.0
    tick_s: float = 1.0
    seed: int = 97
    road_length_m: float = 2000.0
    mean_speed_ms: float = 20.0
    speed_jitter: float = 0.15
    entry_gap_s: float = 4.0
    lanes: int = 2
    lane_width_m: float = 3.5
    curve_amplitude_m: float = 30.0
    curve_wavelength_m: float = 600.0

    def build(self) -> TraceSet:
        """Generate the recording this config describes."""
        return synth_traces(
            vehicles=self.vehicles,
            duration_s=self.duration_s,
            tick_s=self.tick_s,
            seed=self.seed,
            road_length_m=self.road_length_m,
            mean_speed_ms=self.mean_speed_ms,
            speed_jitter=self.speed_jitter,
            entry_gap_s=self.entry_gap_s,
            lanes=self.lanes,
            lane_width_m=self.lane_width_m,
            curve_amplitude_m=self.curve_amplitude_m,
            curve_wavelength_m=self.curve_wavelength_m,
        )


@dataclass(frozen=True)
class TraceScenarioConfig:
    """One trace-driven experiment.

    Attributes
    ----------
    trace_file / trace_format / trace_unit:
        The recording to ingest (``None`` = generate from ``synth``).
        ``trace_format`` is ``auto`` / ``sumo-fcd`` / ``ns2`` / ``csv``;
        ``trace_unit`` converts the file's coordinates to metres.
    tick_s:
        Resample the recording onto this fixed tick (0 = keep the
        file's native sampling).
    t_min / t_max / x_min / y_min / x_max / y_max:
        Optional time-window and bounding-box crop, applied before the
        recording is rebased to round time 0.
    ap_x / ap_y / ap_road_fraction / ap_offset_m:
        AP placement.  Explicit coordinates win; otherwise the AP sits
        ``ap_road_fraction`` of the way along the cropped recording's
        x-span, ``ap_offset_m`` south of its bounding box.  The default
        fraction (0.15) puts the coverage window early in the
        recording, leaving most of it as the dark area where
        cooperative recovery happens — the paper's drive-thru shape.
        Mid-road placement (0.5) can leave parked vehicles inside
        coverage, where the watchdog never fires and C-ARQ has nothing
        to do.
    served_vehicles:
        How many vehicles (sorted-id order) the AP streams flows to;
        0 = all.  Unserved vehicles still cooperate (see module notes).
    mode:
        Protocol every vehicle runs (``carq`` or any baseline mode).
    """

    trace_file: str | None = None
    trace_format: str = "auto"
    trace_unit: str = "m"
    synth: SynthTraceConfig = field(default_factory=SynthTraceConfig)
    tick_s: float = 0.0
    t_min: float | None = None
    t_max: float | None = None
    x_min: float | None = None
    y_min: float | None = None
    x_max: float | None = None
    y_max: float | None = None
    ap_x: float | None = None
    ap_y: float | None = None
    ap_road_fraction: float = 0.15
    ap_offset_m: float = 20.0
    served_vehicles: int = 0
    packet_rate_hz: float = 10.0
    payload_bytes: int = 1000
    seed: int = 1205
    rounds: int = 3
    radio: RadioEnvironment = field(default_factory=lambda: _HIGHWAY_RADIO)
    carq: CarqConfig = field(
        default_factory=lambda: CarqConfig(batch_requests=True, max_batch=64)
    )
    mode: str = "carq"

    def __post_init__(self) -> None:
        if self.trace_format != "auto" and self.trace_format not in FORMATS:
            raise ConfigurationError(
                f"unknown trace_format {self.trace_format!r}; choose auto, "
                f"{', '.join(sorted(FORMATS))}"
            )
        if self.tick_s < 0.0:
            raise ConfigurationError("tick_s cannot be negative")
        if self.served_vehicles < 0:
            raise ConfigurationError("served_vehicles cannot be negative")
        if not 0.0 <= self.ap_road_fraction <= 1.0:
            raise ConfigurationError("ap_road_fraction must be in [0, 1]")
        if self.packet_rate_hz <= 0.0:
            raise ConfigurationError("packet rate must be positive")
        validate_mode(self.mode)

    def load_traces(self) -> TraceSet:
        """The recording, cropped / resampled / rebased per this config.

        File loads are memoized per (path, mtime, format, unit) so a
        multi-round campaign parses each file once per worker process.
        """
        if self.trace_file is None:
            traces = self.synth.build()
        else:
            traces = _load_file_cached(
                os.path.abspath(self.trace_file),
                self.trace_format,
                self.trace_unit,
            )
        if any(
            bound is not None
            for bound in (
                self.t_min, self.t_max,
                self.x_min, self.y_min, self.x_max, self.y_max,
            )
        ):
            traces = traces.cropped(
                t_min=self.t_min,
                t_max=self.t_max,
                x_min=self.x_min,
                y_min=self.y_min,
                x_max=self.x_max,
                y_max=self.y_max,
            )
        traces = traces.rebased()
        if self.tick_s > 0.0:
            traces = traces.resampled(self.tick_s)
        return traces

    def ap_position(self, traces: TraceSet) -> Vec2:
        """Where the AP stands for this recording (see class docs)."""
        x_min, y_min, x_max, _ = traces.bounds()
        if self.ap_x is not None:
            x = self.ap_x
        else:
            x = x_min + self.ap_road_fraction * (x_max - x_min)
        y = self.ap_y if self.ap_y is not None else y_min - self.ap_offset_m
        return Vec2(x, y)

    def vehicle_node_ids(self, traces: TraceSet) -> dict[NodeId, str]:
        """Node id → trace vehicle id, sorted-id order from 1."""
        return {
            NodeId(index + 1): vehicle_id
            for index, vehicle_id in enumerate(traces.vehicle_ids)
        }

    def served_ids(self, node_ids: dict[NodeId, str]) -> list[NodeId]:
        """The flow destinations (first ``served_vehicles``; 0 = all)."""
        ids = list(node_ids)
        if self.served_vehicles:
            return ids[: self.served_vehicles]
        return ids


#: Parsed-file memo: (abspath, mtime_ns, format, unit) → TraceSet.
#: TraceSet transformations are pure, so sharing the parsed object
#: across rounds (and configs pointing at the same file) is safe.
_FILE_CACHE: dict[tuple[str, int, str, str], TraceSet] = {}


def _load_file_cached(path: str, fmt: str, unit: str) -> TraceSet:
    try:
        mtime_ns = os.stat(path).st_mtime_ns
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file: {exc}") from None
    key = (path, mtime_ns, fmt, unit)
    cached = _FILE_CACHE.get(key)
    if cached is None:
        cached = load_traces(path, fmt=fmt, unit=unit)
        if len(_FILE_CACHE) > 8:  # campaigns touch a handful of files, not many
            _FILE_CACHE.clear()
        _FILE_CACHE[key] = cached
    return cached


@dataclass
class TraceRoundContext:
    """One built trace-driven round."""

    sim: Simulator
    capture: TraceCollector
    ap: object
    cars: dict[NodeId, object]
    vehicle_ids: dict[NodeId, str]
    served: list[NodeId]
    duration_s: float
    config: TraceScenarioConfig

    def run(self) -> None:
        """Execute the recording (plus the recovery slack)."""
        self.sim.run(until=self.duration_s)


def build_trace_round(
    cfg: TraceScenarioConfig, round_index: int
) -> TraceRoundContext:
    """Wire one round driven by the configured recording."""
    traces = cfg.load_traces()
    sim = Simulator(
        seed=round_seed(cfg.seed, round_index, stride=3907),
        scheduler=cfg.radio.scheduler,
    )
    capture = TraceCollector()
    medium = build_medium(
        sim,
        channels.highway_channel(cfg.radio, sim, AP_NODE_ID),
        cfg.radio,
        trace=capture,
    )
    pool = build_protocol_pool(sim, medium, cfg.radio)
    node_ids = cfg.vehicle_node_ids(traces)
    served = cfg.served_ids(node_ids)
    mobility_by_vehicle = traces.to_mobility()
    mobilities: list[MobilityModel] = [
        mobility_by_vehicle[vehicle_id] for vehicle_id in node_ids.values()
    ]
    flows = make_flows(served, cfg.packet_rate_hz, cfg.payload_bytes)
    ap = ap_class(cfg.mode)(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(cfg.ap_position(traces)),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    cars = spawn_platoon(
        cfg.mode,
        sim,
        medium,
        list(node_ids),
        mobilities,
        cfg.radio.car_radio(),
        AP_NODE_ID,
        cfg.carq,
        pool=pool,
    )
    ap.start()
    for car in cars.values():
        car.start()
    return TraceRoundContext(
        sim=sim,
        capture=capture,
        ap=ap,
        cars=cars,
        vehicle_ids=node_ids,
        served=served,
        duration_s=traces.duration + ROUND_SLACK_S,
        config=cfg,
    )


def collect_trace_row(ctx: TraceRoundContext) -> dict:
    """Reduce a finished round to its campaign result row.

    Matrices cover the served flows only; every vehicle — served or
    pure cooperator — acts as an observer, so bystander help lands in
    the after-coop column exactly like the bidirectional scenario's
    oncoming platoon.
    """
    matrices = collect_matrices(ctx.capture, ctx.cars, flows=ctx.served)
    return {"matrices": [encode_matrix(m) for m in matrices.values()]}


def run_trace_experiment(cfg: TraceScenarioConfig) -> list[dict]:
    """All rounds; returns one result row per round."""
    rows = []
    for index in range(cfg.rounds):
        ctx = build_trace_round(cfg, index)
        ctx.run()
        rows.append(collect_trace_row(ctx))
    return rows


# -- presets -----------------------------------------------------------------


def _modes_preset() -> dict:
    """Table-1-style protocol comparison on the synthetic recording.

    All arms share the campaign seed, so every mode sees the identical
    recording and channel realisation structure — the paired comparison,
    on trace-driven motion.
    """
    base = TraceScenarioConfig(rounds=3)
    return {
        "name": "trace-modes",
        "scenario": "trace",
        "seed": base.seed,
        "rounds": base.rounds,
        "base": config_to_dict(base),
        "axes": [
            {
                "name": "mode",
                "points": [
                    {"label": m, "overrides": {"mode": m}} for m in PROTOCOL_MODES
                ],
            }
        ],
    }


def _density_preset() -> dict:
    """Loss vs how many of the trace's vehicles the AP actually serves.

    The unserved remainder stays on the road as pure cooperators, so
    the axis isolates the bystander contribution on fixed geometry.
    """
    base = TraceScenarioConfig(rounds=3)
    return {
        "name": "trace-served",
        "scenario": "trace",
        "seed": base.seed,
        "rounds": base.rounds,
        "base": config_to_dict(base),
        "axes": [
            {
                "name": "served_vehicles",
                "points": [
                    {"label": n, "overrides": {"served_vehicles": n}}
                    for n in (2, 4, 8)
                ],
            }
        ],
    }


PLUGIN = register(
    ScenarioPlugin(
        name="trace",
        description=(
            "Trace-driven mobility: SUMO FCD / ns-2 setdest / CSV recordings "
            "(or a deterministic synthetic trace) drive vehicles past one AP"
        ),
        config_cls=TraceScenarioConfig,
        build_round=build_trace_round,
        collect_row=collect_trace_row,
        summarize=summarize_matrices,
        summary_cls=SweepPoint,
        report_header=SWEEP_REPORT_HEADER,
        report_line=sweep_report_line,
        modes=PROTOCOL_MODES,
        presets=(
            ScenarioPreset(
                "trace-modes",
                "C-ARQ vs every baseline on the synthetic recording, paired seeds",
                _modes_preset,
            ),
            ScenarioPreset(
                "trace-served",
                "after-coop loss vs served-vehicle count (rest are bystander cooperators)",
                _density_preset,
            ),
        ),
    )
)
