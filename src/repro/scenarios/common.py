"""Shared wiring pieces every scenario plugin composes from.

Scenario builders differ in geometry and propagation, but they all repeat
the same moves: derive an independent per-round seed, lay out one AP flow
per car, spawn a mode-dispatched vehicle population, and reduce a
finished round's trace to per-flow reception matrices.  Those moves live
here, once.
"""

from __future__ import annotations

from repro.core.config import CarqConfig
from repro.core.engine import ProtocolPool
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.net.ap import FlowConfig
from repro.radio.phy import RadioConfig
from repro.scenarios.modes import build_vehicle, reception_state
from repro.sim import Simulator
from repro.trace.capture import TraceCollector
from repro.trace.matrix import ReceptionMatrix

#: Node id of the (single) roadside access point in one-AP scenarios.
AP_NODE_ID: NodeId = NodeId(100)


def build_medium(sim: Simulator, channel, radio, *, trace=None) -> Medium:
    """The scenario's shared medium, honouring the radio's reception knobs.

    Every scenario builder wires its medium through here so the
    ``reception_fast_path`` / ``reception_batch`` /
    ``cross_broadcast_batch`` / ``cull_headroom_db`` fields of
    :class:`~repro.scenarios.urban.RadioEnvironment` reach the MAC layer
    uniformly (and campaigns can A/B each path per arm).
    """
    return Medium(
        sim,
        channel,
        trace=trace,
        fast_path=radio.reception_fast_path,
        batch=radio.reception_batch,
        cross_broadcast_batch=getattr(radio, "cross_broadcast_batch", True),
        cull_headroom_db=radio.cull_headroom_db,
    )


def build_protocol_pool(sim: Simulator, medium: Medium, radio) -> ProtocolPool | None:
    """The scenario's pooled protocol engine, wired as the delivery sink.

    Honours the ``batched_delivery`` knob of
    :class:`~repro.scenarios.urban.RadioEnvironment`: when on (the
    default), returns a :class:`~repro.core.engine.ProtocolPool`
    installed as the medium's coalesced delivery sink — pass it to
    :func:`spawn_platoon` so the C-ARQ vehicles join it.  When off,
    returns ``None`` and the per-vehicle callback path runs unchanged
    (the A/B reference arm).
    """
    if not getattr(radio, "batched_delivery", True):
        return None
    pool = ProtocolPool(sim)
    medium.set_delivery_sink(pool.deliver_broadcast)
    return pool


def round_seed(base_seed: int, round_index: int, *, stride: int = 7919) -> int:
    """Independent per-round simulator seed (rounds are i.i.d. repetitions).

    Every scenario derives its round seeds this way; distinct *stride*
    primes (7919 urban, 6007 highway, 4099 multi-AP) keep scenario seed
    sequences disjoint for shared base seeds.
    """
    return base_seed + stride * (round_index + 1)


def car_ids(n_cars: int, *, first: int = 1) -> list[NodeId]:
    """Vehicle node ids, platoon order (car ``first`` leads)."""
    return [NodeId(first + i) for i in range(n_cars)]


def make_flows(
    destinations: list[NodeId],
    packet_rate_hz: float,
    payload_bytes: int,
    *,
    blocks: int | None = None,
) -> list[FlowConfig]:
    """One AP flow per destination car (file mode when *blocks* is set)."""
    return [
        FlowConfig(
            destination=car_id,
            packet_rate_hz=packet_rate_hz,
            payload_bytes=payload_bytes,
            blocks=blocks,
        )
        for car_id in destinations
    ]


def spawn_platoon(
    mode: str,
    sim: Simulator,
    medium: Medium,
    ids: list[NodeId],
    mobilities: list[MobilityModel],
    radio: RadioConfig,
    ap_ids: NodeId | list[NodeId],
    carq: CarqConfig,
    pool: ProtocolPool | None = None,
) -> dict[NodeId, object]:
    """Build (without starting) one vehicle per (id, mobility) pair.

    Each car gets its own named random stream ``car-<id>``, so protocol
    draws never couple across cars or modes.  C-ARQ vehicles join
    *pool* when one is given (see :func:`build_protocol_pool`).
    """
    cars: dict[NodeId, object] = {}
    for car_id, mobility in zip(ids, mobilities):
        cars[car_id] = build_vehicle(
            mode,
            sim,
            medium,
            car_id,
            mobility,
            radio,
            sim.streams.get(f"car-{car_id}"),
            ap_ids,
            carq,
            name=f"car-{car_id}",
            pool=pool,
        )
    return cars


def collect_matrices(
    capture: TraceCollector,
    cars: dict[NodeId, object],
    *,
    flows: list[NodeId] | None = None,
) -> dict[NodeId, ReceptionMatrix]:
    """Per-flow reception matrices of one finished round.

    Every car in *cars* serves as an observer (its overheard copies feed
    the joint-reception columns); matrices are built only for *flows*
    (default: every car).  Works for any protocol mode via
    :func:`repro.scenarios.modes.reception_state`.
    """
    observers = list(cars)
    matrices: dict[NodeId, ReceptionMatrix] = {}
    for car_id in flows if flows is not None else observers:
        direct_by_car = {
            observer: capture.delivered_seqs(observer, car_id)
            for observer in observers
        }
        recovered = set(reception_state(cars[car_id]).recovered)
        matrix = ReceptionMatrix.build(car_id, direct_by_car, recovered)
        if matrix is not None:
            matrices[car_id] = matrix
    return matrices


def frames_sent_by_node(ap, cars: dict[NodeId, object]) -> dict[NodeId, int]:
    """Transmission counts per node (AP first), for overhead accounting."""
    counts = {ap.node_id: ap.iface.frames_sent}
    for car_id, car in cars.items():
        counts[car_id] = car.iface.frames_sent
    return counts
