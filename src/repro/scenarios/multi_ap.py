"""The §6 future-work study: file download across multiple APs, as a plugin.

"Even more important is to study how the presented loss reduction can
reduce the number of APs that a vehicular node needs to visit to download
a file."  This experiment answers that: a platoon drives a long road with
infostations every ``ap_spacing_m`` metres, each cyclically broadcasting
the *B* blocks of a file per car; we measure how many APs each car must
pass before holding the complete file — with cooperative recovery in the
gaps, versus direct reception only.

The no-cooperation reference is computed *post-hoc from the same run*
(the direct-reception times recorded in the trace), so both numbers share
one channel realisation and the comparison is paired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError
from repro.geom import Polyline, Vec2
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility
from repro.net.ap import AccessPoint
from repro.scenarios import channels
from repro.scenarios.common import (
    build_medium,
    build_protocol_pool,
    car_ids as _car_ids,
    make_flows,
    round_seed,
)
from repro.scenarios.configs import config_to_dict
from repro.scenarios.modes import build_vehicle, reception_state
from repro.scenarios.registry import ScenarioPlugin, ScenarioPreset, register
from repro.scenarios.summaries import (
    DOWNLOAD_REPORT_HEADER,
    DownloadSummary,
    download_report_line,
    summarize_downloads,
)
from repro.scenarios.urban import RadioEnvironment
from repro.sim import Simulator
from repro.trace.capture import TraceCollector


@dataclass(frozen=True)
class MultiApConfig:
    """The multi-AP file-download road."""

    road_length_m: float = 8000.0
    ap_spacing_m: float = 800.0
    ap_offset_m: float = 15.0
    file_blocks: int = 250
    speed_ms: float = 15.0
    n_cars: int = 3
    gap_m: float = 25.0
    packet_rate_hz: float = 10.0
    payload_bytes: int = 1000
    seed: int = 77
    rounds: int = 5
    radio: RadioEnvironment = field(default_factory=RadioEnvironment)
    carq: CarqConfig = field(default_factory=CarqConfig)
    mode: str = "carq"

    def __post_init__(self) -> None:
        if self.ap_spacing_m <= 0.0 or self.road_length_m <= self.ap_spacing_m:
            raise ConfigurationError("road must be longer than the AP spacing")
        if self.file_blocks <= 0:
            raise ConfigurationError("file needs at least one block")
        if self.mode != "carq":
            # The direct-reception baseline is computed post-hoc from the
            # same cooperative run; a separate baseline arm would unpair it.
            raise ConfigurationError(
                "the multi-AP study runs C-ARQ only (its no-cooperation "
                "reference is paired, derived from the same trace)"
            )

    def ap_positions(self) -> list[Vec2]:
        """Infostation positions along the road."""
        count = int(self.road_length_m // self.ap_spacing_m)
        return [
            Vec2(self.ap_spacing_m * (i + 0.5), self.ap_offset_m)
            for i in range(count)
        ]

    @property
    def round_duration_s(self) -> float:
        """Full traversal of the road by the last car."""
        return (self.road_length_m + self.n_cars * self.gap_m) / self.speed_ms


@dataclass(frozen=True)
class DownloadOutcome:
    """Completion result for one car in one round.

    ``aps_visited`` is the number of infostations passed when the file
    became complete (``math.inf`` if it never completed on this road).
    """

    car: NodeId
    aps_visited_coop: float
    aps_visited_direct: float
    completion_time_coop: float | None
    completion_time_direct: float | None


@dataclass
class MultiApRoundContext:
    """One built multi-AP traversal, ready to run."""

    sim: Simulator
    capture: TraceCollector
    cars: dict[NodeId, object]
    config: MultiApConfig

    def run(self) -> None:
        """Execute the traversal."""
        self.sim.run(until=self.config.round_duration_s)


def _aps_passed(cfg: MultiApConfig, car_index: int, time: float | None) -> float:
    """How many APs the car has passed by *time* (∞ when never done)."""
    if time is None:
        return math.inf
    start_delay = car_index * cfg.gap_m / cfg.speed_ms
    position = max(0.0, (time - start_delay) * cfg.speed_ms)
    return sum(1 for ap in cfg.ap_positions() if ap.x <= position)


def build_multi_ap_round(cfg: MultiApConfig, round_index: int) -> MultiApRoundContext:
    """Wire one traversal of the infostation road."""
    sim = Simulator(
        seed=round_seed(cfg.seed, round_index, stride=4099),
        scheduler=cfg.radio.scheduler,
    )
    track = Polyline.straight(cfg.road_length_m)
    capture = TraceCollector()
    channel = channels.corridor_channel(cfg.radio, sim)
    medium = build_medium(sim, channel, cfg.radio, trace=capture)
    pool = build_protocol_pool(sim, medium, cfg.radio)
    car_ids = _car_ids(cfg.n_cars)
    ap_ids = [NodeId(200 + i) for i in range(len(cfg.ap_positions()))]
    flows = make_flows(
        car_ids, cfg.packet_rate_hz, cfg.payload_bytes, blocks=cfg.file_blocks
    )
    for ap_id, position in zip(ap_ids, cfg.ap_positions()):
        ap = AccessPoint(
            sim,
            medium,
            ap_id,
            StaticMobility(position),
            cfg.radio.ap_radio(),
            sim.streams.get(f"ap-{ap_id}"),
            flows,
            name=f"ap-{ap_id}",
        )
        ap.start()
    cars: dict[NodeId, object] = {}
    for index, car_id in enumerate(car_ids):
        mobility = PathMobility(
            track,
            cfg.speed_ms,
            start_time=index * cfg.gap_m / cfg.speed_ms,
        )
        car = build_vehicle(
            cfg.mode,
            sim,
            medium,
            car_id,
            mobility,
            cfg.radio.car_radio(),
            sim.streams.get(f"car-{car_id}"),
            ap_ids,
            cfg.carq,
            name=f"car-{car_id}",
            pool=pool,
        )
        cars[car_id] = car
        car.start()
    return MultiApRoundContext(sim=sim, capture=capture, cars=cars, config=cfg)


def collect_download_outcomes(ctx: MultiApRoundContext) -> list[DownloadOutcome]:
    """Per-car download outcomes of one finished traversal."""
    cfg = ctx.config
    outcomes = []
    for index, (car_id, car) in enumerate(ctx.cars.items()):
        coop_events = [
            (time, seq)
            for seq, time in reception_state(car).recovered.items()
            if 1 <= seq <= cfg.file_blocks
        ]
        direct_events = [
            (ctx.capture.delivery_time(car_id, car_id, seq), seq)
            for seq in ctx.capture.delivered_seqs(car_id, car_id)
            if 1 <= seq <= cfg.file_blocks
        ]
        completion_direct = _completion_time(direct_events, cfg.file_blocks)
        completion_coop = _completion_time(direct_events + coop_events, cfg.file_blocks)
        outcomes.append(
            DownloadOutcome(
                car=car_id,
                aps_visited_coop=_aps_passed(cfg, index, completion_coop),
                aps_visited_direct=_aps_passed(cfg, index, completion_direct),
                completion_time_coop=completion_coop,
                completion_time_direct=completion_direct,
            )
        )
    return outcomes


def _completion_time(events: list[tuple[float, int]], blocks: int) -> float | None:
    """Instant at which the set of distinct blocks first reaches *blocks*."""
    held: set[int] = set()
    for time, seq in sorted(events):
        held.add(seq)
        if len(held) >= blocks:
            return time
    return None


def run_multi_ap_round(cfg: MultiApConfig, round_index: int) -> list[DownloadOutcome]:
    """Simulate one traversal; returns one outcome per car."""
    ctx = build_multi_ap_round(cfg, round_index)
    ctx.run()
    return collect_download_outcomes(ctx)


def run_multi_ap_experiment(cfg: MultiApConfig) -> list[list[DownloadOutcome]]:
    """All rounds of the multi-AP study."""
    return [run_multi_ap_round(cfg, index) for index in range(cfg.rounds)]


def collect_multi_ap_row(ctx: MultiApRoundContext) -> dict:
    """Reduce a finished traversal to its campaign result row."""
    encoded = []
    for outcome in collect_download_outcomes(ctx):
        encoded.append(
            {
                "car": int(outcome.car),
                "aps_visited_coop": (
                    None
                    if math.isinf(outcome.aps_visited_coop)
                    else outcome.aps_visited_coop
                ),
                "aps_visited_direct": (
                    None
                    if math.isinf(outcome.aps_visited_direct)
                    else outcome.aps_visited_direct
                ),
                "completion_time_coop": outcome.completion_time_coop,
                "completion_time_direct": outcome.completion_time_direct,
            }
        )
    return {"outcomes": encoded}


def _download_preset() -> dict:
    """The §6 study at its published scale (no grid)."""
    return {
        "name": "download",
        "scenario": "multi_ap",
        "seed": 77,
        "rounds": 5,
        "base": config_to_dict(MultiApConfig()),
        "axes": [],
    }


PLUGIN = register(
    ScenarioPlugin(
        name="multi_ap",
        description=(
            "§6 file download along an infostation road: APs a car must "
            "visit with vs without cooperative recovery"
        ),
        config_cls=MultiApConfig,
        build_round=build_multi_ap_round,
        collect_row=collect_multi_ap_row,
        summarize=summarize_downloads,
        summary_cls=DownloadSummary,
        report_header=DOWNLOAD_REPORT_HEADER,
        report_line=download_report_line,
        modes=("carq",),
        presets=(
            ScenarioPreset(
                "download",
                "file download across infostations, paired coop vs direct",
                _download_preset,
            ),
        ),
    )
)
