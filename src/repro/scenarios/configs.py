"""Scenario configuration dataclass ↔ JSON codec and dotted overrides.

Every scenario plugin's configuration is a (possibly nested) frozen
dataclass; campaigns ship them around as plain JSON dicts.  The codec
here is what makes that declarative layer work: ``config_to_dict`` /
``config_from_dict`` round-trip a config through its JSON shape, and
``apply_override`` rebuilds a frozen config with one dotted-path field
replaced — the mechanism behind campaign grid axes and ``--set``.

This module sits below both the scenario plugins and the campaign layer
(:mod:`repro.campaign.spec` re-exports it), so plugins can build preset
spec dicts without importing campaign code.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace

from repro.errors import CampaignError

#: Dataclass fields that hold nested configuration dataclasses, by class.
#: Kept as an explicit registry (rather than typing introspection) because
#: ``CarqConfig.selection`` is a TYPE_CHECKING-only forward reference that
#: ``typing.get_type_hints`` cannot resolve at runtime.
_NESTED_FIELDS: dict[type, dict[str, type]] = {}


def _nested_fields(cls: type) -> dict[str, type]:
    """Field name → nested dataclass type, discovered from defaults."""
    cached = _NESTED_FIELDS.get(cls)
    if cached is not None:
        return cached
    nested = {}
    probe = cls()  # every scenario config is constructible from defaults
    for f in fields(cls):
        value = getattr(probe, f.name)
        if is_dataclass(value):
            nested[f.name] = type(value)
    _NESTED_FIELDS[cls] = nested
    return nested


def config_to_dict(cfg) -> dict:
    """JSON shape of a scenario configuration dataclass.

    Raises :class:`CampaignError` when a field cannot be represented in
    JSON (e.g. a custom ``CarqConfig.selection`` strategy object): such
    configs cannot ride a declarative campaign.
    """
    out: dict = {}
    for f in fields(type(cfg)):
        value = getattr(cfg, f.name)
        if is_dataclass(value):
            out[f.name] = config_to_dict(value)
        elif isinstance(value, tuple):
            out[f.name] = list(value)
        elif value is None or isinstance(value, (bool, int, float, str)):
            out[f.name] = value
        else:
            raise CampaignError(
                f"config field {type(cfg).__name__}.{f.name} holds "
                f"{value!r}, which is not JSON-serialisable"
            )
    return out


def config_from_dict(cls: type, data: dict):
    """Rebuild a configuration dataclass from its JSON shape.

    Missing fields take the dataclass defaults (spec base dicts may be
    partial); unknown keys are rejected so a typo in a hand-written spec
    file fails loudly instead of silently running the default value.
    """
    unknown = set(data) - {f.name for f in fields(cls)}
    if unknown:
        raise CampaignError(
            f"unknown config field(s) for {cls.__name__}: "
            f"{', '.join(sorted(unknown))}"
        )
    nested = _nested_fields(cls)
    defaults = cls()
    kwargs = {}
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if f.name in nested:
            value = config_from_dict(nested[f.name], value)
        elif isinstance(getattr(defaults, f.name), tuple):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


def apply_override(cfg, path: str, value):
    """Return *cfg* with the dotted-``path`` field replaced by *value*.

    ``"platoon.n_cars"`` rebuilds the nested frozen dataclass chain;
    list values targeting tuple-typed fields are converted.
    """
    head, _, rest = path.partition(".")
    try:
        current = getattr(cfg, head)
    except AttributeError:
        raise CampaignError(
            f"override path {path!r} does not exist on {type(cfg).__name__}"
        ) from None
    if rest:
        if not is_dataclass(current):
            raise CampaignError(f"override path {path!r} descends into a leaf field")
        return replace(cfg, **{head: apply_override(current, rest, value)})
    if isinstance(current, tuple) and isinstance(value, list):
        value = tuple(value)
    return replace(cfg, **{head: value})
