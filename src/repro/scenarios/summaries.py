"""Result rows and their folds: the data contract between layers.

Scenario plugins reduce a finished round to a plain JSON *row*; the
campaign store persists rows; the report layer folds a grid point's rows
back into one summary object.  This module owns all three shapes:

* the reception-matrix codec (``encode_matrix`` / ``decode_matrix``) —
  the common payload of coverage-style scenarios;
* :class:`SweepPoint` and :func:`aggregate_matrices` — the sweep-table
  fold (re-exported by :mod:`repro.campaign.report` and
  :mod:`repro.experiments.sweeps` for compatibility);
* :class:`DownloadSummary` and :func:`summarize_downloads` — the
  multi-AP file-download fold.

Living here (below the campaign layer) lets plugins declare their
``summarize`` callables without importing campaign modules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CampaignError
from repro.mac.frames import NodeId
from repro.trace.matrix import ReceptionMatrix


def encode_matrix(matrix: ReceptionMatrix) -> dict:
    """JSON shape of a reception matrix."""
    return {
        "flow": int(matrix.flow),
        "window": list(matrix.window),
        "direct": {
            str(int(car)): sorted(seqs) for car, seqs in matrix.direct.items()
        },
        "after_coop": sorted(matrix.after_coop),
    }


def decode_matrix(data: dict) -> ReceptionMatrix:
    """Rebuild a reception matrix from its JSON shape."""
    return ReceptionMatrix(
        flow=NodeId(data["flow"]),
        window=(data["window"][0], data["window"][1]),
        direct={
            NodeId(int(car)): frozenset(seqs)
            for car, seqs in data["direct"].items()
        },
        after_coop=frozenset(data["after_coop"]),
    )


def decode_matrix_rows(rows: list[dict]) -> list[dict[NodeId, ReceptionMatrix]]:
    """Stored rows → per-round ``{flow: matrix}`` dicts, row order."""
    rounds = []
    for row in rows:
        matrices = [decode_matrix(m) for m in row.get("matrices", [])]
        rounds.append({matrix.flow: matrix for matrix in matrices})
    return rounds


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: loss fractions aggregated over cars and rounds."""

    parameter: float | str
    tx_by_ap_mean: float
    lost_before_fraction: float
    lost_after_fraction: float

    @property
    def reduction_fraction(self) -> float:
        """Relative loss reduction achieved by cooperation."""
        if self.lost_before_fraction == 0.0:
            return 0.0
        return 1.0 - self.lost_after_fraction / self.lost_before_fraction


def aggregate_matrices(
    matrices_by_round: list[dict[NodeId, ReceptionMatrix]], parameter
) -> SweepPoint:
    """Fold per-round reception matrices into one :class:`SweepPoint`."""
    tx = before = after = 0
    n = 0
    for round_matrices in matrices_by_round:
        for matrix in round_matrices.values():
            tx += matrix.tx_by_ap
            before += matrix.lost_before_coop
            after += matrix.lost_after_coop
            n += 1
    if n == 0 or tx == 0:
        raise CampaignError(
            f"sweep point {parameter!r} produced no reception data"
        )
    return SweepPoint(
        parameter=parameter,
        tx_by_ap_mean=tx / n,
        lost_before_fraction=before / tx,
        lost_after_fraction=after / tx,
    )


def summarize_matrices(rows: list[dict], parameter) -> SweepPoint:
    """The plugin ``summarize`` fold for matrix-row scenarios."""
    return aggregate_matrices(decode_matrix_rows(rows), parameter)


#: CLI report table shared by every sweep-style scenario.
SWEEP_REPORT_HEADER = (
    f"{'parameter':>12} {'pkts':>7} {'before':>8} {'after':>7} {'gain':>6}"
)


def sweep_report_line(point: SweepPoint) -> str:
    """One CLI report row for a :class:`SweepPoint`."""
    return (
        f"{point.parameter!s:>12} {point.tx_by_ap_mean:>7.0f} "
        f"{100 * point.lost_before_fraction:>7.1f}% "
        f"{100 * point.lost_after_fraction:>6.1f}% "
        f"{100 * point.reduction_fraction:>5.0f}%"
    )


@dataclass(frozen=True)
class DownloadSummary:
    """Aggregated multi-AP file-download outcome for one grid point."""

    parameter: float | str
    aps_visited_coop_mean: float
    aps_visited_direct_mean: float
    completed_pairs: int

    @property
    def visit_reduction_fraction(self) -> float:
        """Relative reduction in AP visits achieved by cooperation."""
        if self.aps_visited_direct_mean == 0.0:
            return 0.0
        return 1.0 - self.aps_visited_coop_mean / self.aps_visited_direct_mean


def summarize_downloads(rows: list[dict], parameter) -> DownloadSummary:
    """Fold download-outcome rows into one :class:`DownloadSummary`.

    Cars that never completed the file under *direct* reception are
    excluded (both columns), keeping the comparison paired — the same
    rule the serial multi-AP CLI applies.
    """
    coop = direct = 0.0
    pairs = 0
    for row in rows:
        for outcome in row.get("outcomes", []):
            if outcome["aps_visited_direct"] is None:
                continue
            coop_visits = outcome["aps_visited_coop"]
            if coop_visits is None:
                continue
            coop += coop_visits
            direct += outcome["aps_visited_direct"]
            pairs += 1
    if pairs == 0:
        raise CampaignError(
            f"download point {parameter!r}: no car completed the file"
        )
    return DownloadSummary(
        parameter=parameter,
        aps_visited_coop_mean=coop / pairs,
        aps_visited_direct_mean=direct / pairs,
        completed_pairs=pairs,
    )


#: CLI report table for the download study.
DOWNLOAD_REPORT_HEADER = (
    f"{'parameter':>12} {'APs coop':>9} {'APs direct':>11} {'saved':>6}"
)


def download_report_line(summary: DownloadSummary) -> str:
    """One CLI report row for a :class:`DownloadSummary`."""
    return (
        f"{summary.parameter!s:>12} {summary.aps_visited_coop_mean:>9.1f} "
        f"{summary.aps_visited_direct_mean:>11.1f} "
        f"{100 * summary.visit_reduction_fraction:>5.0f}%"
    )
