"""Highway drive-thru rounds (after Ott & Kutscher [1]), as a plugin.

The paper motivates C-ARQ with highway measurements: 50–60 % losses for a
car passing an AP at speed.  This scenario reproduces that geometry — a
straight road, an AP off the roadside, a platoon passing once at a chosen
speed — and sweeps over speed through the ``speed`` preset.  Like the
urban scenario, the protocol is the config's ``mode`` field, so baseline
arms pair with C-ARQ on identical channel realisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.highway import HighwayScenario, highway_scenario
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility
from repro.net.ap import AccessPoint
from repro.scenarios import channels
from repro.scenarios.common import (
    AP_NODE_ID,
    build_medium,
    build_protocol_pool,
    car_ids as _car_ids,
    collect_matrices,
    make_flows,
    round_seed,
    spawn_platoon,
)
from repro.scenarios.configs import config_to_dict
from repro.scenarios.modes import PROTOCOL_MODES, ap_class, validate_mode
from repro.scenarios.registry import ScenarioPlugin, ScenarioPreset, register
from repro.scenarios.summaries import (
    SWEEP_REPORT_HEADER,
    SweepPoint,
    encode_matrix,
    summarize_matrices,
    sweep_report_line,
)
from repro.scenarios.urban import RadioEnvironment
from repro.sim import Simulator
from repro.trace.capture import TraceCollector
from repro.trace.matrix import ReceptionMatrix
from repro.units import kmh_to_ms


#: Highway radio defaults: the 11 Mb/s CCK rate — the setting where Ott &
#: Kutscher [1] measured 50–60 % drive-thru losses — with heavier scatter
#: (passing trucks, no street canyon to guide the signal).
_HIGHWAY_RADIO = RadioEnvironment(
    rate_name="dsss-11",
    shadowing_sigma_db=5.0,
    common_shadowing_sigma_db=5.0,
    rician_k=1.5,
)


@dataclass(frozen=True)
class HighwayConfig:
    """One highway drive-thru experiment.

    Attributes
    ----------
    speed_ms:
        Platoon speed (constant on a highway).
    n_cars / gap_m:
        Platoon composition; highway gaps scale with speed in reality but
        a fixed headway keeps the comparison across speeds clean.
    road_length_m / ap_offset_m:
        Geometry (see :func:`repro.mobility.highway.highway_scenario`).
    packet_rate_hz / payload_bytes:
        Per-car flow workload.
    seed / rounds:
        Experiment repetition control.
    mode:
        Protocol the platoon runs (``carq`` or any baseline mode).
    """

    speed_ms: float = 30.0
    n_cars: int = 3
    gap_m: float = 35.0
    road_length_m: float = 4000.0
    ap_offset_m: float = 20.0
    #: Platoon mode (default) staggers car *entry times* at the road
    #: start — the paper's convoy passing the AP.  Spread mode instead
    #: staggers *start positions* along the road, modelling sparse
    #: through-traffic at scale (the large-N benchmark geometry).
    spread_along_road: bool = False
    packet_rate_hz: float = 10.0
    payload_bytes: int = 1000
    seed: int = 404
    rounds: int = 10
    radio: RadioEnvironment = field(default_factory=lambda: _HIGHWAY_RADIO)
    # Highway windows leave hundreds of packets missing: the per-packet
    # REQUEST of the urban prototype is too slow, so the highway scenario
    # uses the paper's §3.3 batched-REQUEST optimisation by default.
    carq: CarqConfig = field(
        default_factory=lambda: CarqConfig(batch_requests=True, max_batch=64)
    )
    mode: str = "carq"

    def __post_init__(self) -> None:
        if self.speed_ms <= 0.0:
            raise ConfigurationError("speed must be positive")
        if self.n_cars < 1:
            raise ConfigurationError("need at least one car")
        if self.gap_m <= 0.0:
            raise ConfigurationError("gap must be positive")
        validate_mode(self.mode)

    @property
    def round_duration_s(self) -> float:
        """Time for the whole platoon to traverse the road, plus slack for
        the dark-area recovery after leaving coverage."""
        travel = (self.road_length_m + self.n_cars * self.gap_m) / self.speed_ms
        return travel + 60.0


@dataclass
class HighwayRoundContext:
    """One built highway round."""

    sim: Simulator
    capture: TraceCollector
    scenario: HighwayScenario
    ap: AccessPoint
    cars: dict[NodeId, object]
    config: HighwayConfig
    mode: str = "carq"

    def run(self) -> None:
        """Execute the drive-thru."""
        self.sim.run(until=self.config.round_duration_s)


def build_highway_round(cfg: HighwayConfig, round_index: int) -> HighwayRoundContext:
    """Wire one highway pass running ``cfg.mode`` vehicles."""
    sim = Simulator(
        seed=round_seed(cfg.seed, round_index, stride=6007),
        scheduler=cfg.radio.scheduler,
    )
    scenario = highway_scenario(
        road_length=cfg.road_length_m, ap_offset=cfg.ap_offset_m
    )
    capture = TraceCollector()
    # Highway propagation: two-ray ground (flat open road), no buildings.
    channel = channels.highway_channel(cfg.radio, sim, AP_NODE_ID)
    medium = build_medium(sim, channel, cfg.radio, trace=capture)
    pool = build_protocol_pool(sim, medium, cfg.radio)
    car_ids = _car_ids(cfg.n_cars)
    flows = make_flows(car_ids, cfg.packet_rate_hz, cfg.payload_bytes)
    ap = ap_class(cfg.mode)(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(scenario.ap_position),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    if cfg.spread_along_road:
        track_length = scenario.track.length
        mobilities = [
            PathMobility(
                scenario.track,
                cfg.speed_ms,
                start_arc_length=min(index * cfg.gap_m, track_length),
                start_time=0.0,
            )
            for index in range(cfg.n_cars)
        ]
    else:
        mobilities = [
            PathMobility(
                scenario.track,
                cfg.speed_ms,
                start_arc_length=0.0,
                start_time=index * cfg.gap_m / cfg.speed_ms,
            )
            for index in range(cfg.n_cars)
        ]
    cars = spawn_platoon(
        cfg.mode,
        sim,
        medium,
        car_ids,
        mobilities,
        cfg.radio.car_radio(),
        AP_NODE_ID,
        cfg.carq,
        pool=pool,
    )
    ap.start()
    for car in cars.values():
        car.start()
    return HighwayRoundContext(
        sim=sim,
        capture=capture,
        scenario=scenario,
        ap=ap,
        cars=cars,
        config=cfg,
        mode=cfg.mode,
    )


def collect_highway_matrices(
    ctx: HighwayRoundContext,
) -> dict[NodeId, ReceptionMatrix]:
    """Per-car reception matrices of one finished highway round."""
    return collect_matrices(ctx.capture, ctx.cars)


def collect_highway_row(ctx: HighwayRoundContext) -> dict:
    """Reduce a finished round to its campaign result row."""
    matrices = collect_highway_matrices(ctx)
    return {"matrices": [encode_matrix(m) for m in matrices.values()]}


def run_highway_experiment(cfg: HighwayConfig) -> list[dict[NodeId, ReceptionMatrix]]:
    """Run all rounds; returns per-round matrices per car."""
    results = []
    for index in range(cfg.rounds):
        ctx = build_highway_round(cfg, index)
        ctx.run()
        results.append(collect_highway_matrices(ctx))
    return results


def _speed_preset() -> dict:
    """The drive-thru sweep, with grid labels in km/h.

    Points are labelled by the km/h the user thinks in (so ``--points
    80`` selects the 80 km/h pass) while the overrides carry m/s.
    """
    base = HighwayConfig(rounds=3)
    return {
        "name": "speed",
        "scenario": "highway",
        "seed": base.seed,
        "rounds": base.rounds,
        "base": config_to_dict(base),
        "axes": [
            {
                "name": "speed_kmh",
                "points": [
                    {"label": v, "overrides": {"speed_ms": kmh_to_ms(v)}}
                    for v in (40.0, 80.0, 120.0)
                ],
            }
        ],
    }


PLUGIN = register(
    ScenarioPlugin(
        name="highway",
        description=(
            "Ott & Kutscher drive-thru: a platoon passes one roadside AP "
            "once at highway speed"
        ),
        config_cls=HighwayConfig,
        build_round=build_highway_round,
        collect_row=collect_highway_row,
        summarize=summarize_matrices,
        summary_cls=SweepPoint,
        report_header=SWEEP_REPORT_HEADER,
        report_line=sweep_report_line,
        modes=PROTOCOL_MODES,
        presets=(
            ScenarioPreset(
                "speed",
                "drive-thru losses vs pass speed (40–120 km/h)",
                _speed_preset,
            ),
        ),
    )
)
