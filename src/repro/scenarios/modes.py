"""The protocol-mode factory: C-ARQ and every baseline, one wiring path.

The paper's evaluation is comparative — C-ARQ against no-cooperation,
persistent in-coverage ARQ, and epidemic relaying.  This module makes the
protocol a *parameter* of a scenario rather than a separate builder:
every scenario config carries a ``mode`` field, the population builders
dispatch through :func:`build_vehicle` / :func:`ap_class`, and a campaign
can sweep ``mode`` as a grid axis — same seeds, same trajectories, same
channel realisations across arms, so every comparison is paired.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.arq import ArqAccessPoint, ArqVehicleNode
from repro.baselines.epidemic import EpidemicVehicleNode
from repro.baselines.nocoop import PassiveVehicleNode
from repro.core.config import CarqConfig
from repro.core.vehicle import VehicleNode
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.net.ap import AccessPoint
from repro.radio.phy import RadioConfig
from repro.sim import Simulator

#: Every protocol mode a scenario vehicle can run.
PROTOCOL_MODES = ("carq", "nocoop", "arq", "epidemic")

#: The comparison arms of the paper's Table 1 (everything but C-ARQ).
BASELINE_MODES = ("nocoop", "arq", "epidemic")


def validate_mode(mode: str, allowed: tuple[str, ...] = PROTOCOL_MODES) -> str:
    """Check *mode* against *allowed*; returns it for chaining."""
    if mode not in allowed:
        raise ConfigurationError(
            f"unknown protocol mode {mode!r}; choose from {allowed}"
        )
    return mode


def ap_class(mode: str) -> type[AccessPoint]:
    """The access-point class a protocol mode requires.

    Only the persistent-ARQ baseline changes the AP side (it must answer
    NACKs with retransmissions); every other mode streams plainly.
    """
    return ArqAccessPoint if mode == "arq" else AccessPoint


def build_vehicle(
    mode: str,
    sim: Simulator,
    medium: Medium,
    node_id: NodeId,
    mobility: MobilityModel,
    radio: RadioConfig,
    rng: np.random.Generator,
    ap_ids: NodeId | list[NodeId],
    carq: CarqConfig,
    name: str = "",
    pool=None,
):
    """Construct one vehicle node running *mode*.

    All modes share the node substrate (interface, mobility, radio) and a
    ``state``-reachable :class:`~repro.core.state.FlowReceptionState`, so
    trace collection treats them uniformly (see :func:`reception_state`).
    C-ARQ vehicles join *pool* when one is given (baselines keep the
    per-vehicle callback path either way).
    """
    validate_mode(mode)
    common = (sim, medium, node_id, mobility, radio, rng)
    if mode == "carq":
        return VehicleNode(*common, ap_ids, carq, name=name, pool=pool)
    if mode == "nocoop":
        return PassiveVehicleNode(*common, ap_ids, name=name)
    if mode == "arq":
        return ArqVehicleNode(*common, ap_ids, name=name)
    return EpidemicVehicleNode(
        *common,
        ap_ids,
        coverage_timeout_s=carq.coverage_timeout_s,
        name=name,
    )


def reception_state(car):
    """The car's flow-reception state, whatever protocol it runs.

    C-ARQ vehicles hold it on their protocol object; every baseline
    exposes it directly as ``state``.
    """
    protocol = getattr(car, "protocol", None)
    if protocol is not None:
        return protocol.state
    return car.state
