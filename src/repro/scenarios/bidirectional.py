"""Bidirectional highway: an oncoming platoon as transient cooperators.

The paper's cooperators are platoon mates that stay together.  This
scenario probes the opposite regime the authors leave open: cooperation
from vehicles that are only *briefly* adjacent.  A platoon drives east
past a roadside AP and into its dark area; an oncoming platoon on the
opposite lane — timed to cross just beyond the AP — overhears nothing of
value on its own behalf (no flows address it) but runs the full C-ARQ
cooperator role: it beacons HELLOs, buffers overheard packets while near
the AP, and answers REQUESTs during the seconds the two platoons pass.

Reception matrices are built over the main platoon only, so the sweep
axis ``oncoming_cars`` (0 = plain one-way reference) isolates exactly
what the transient cooperators add.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError
from repro.geom import Polyline, Vec2
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.path import PathMobility
from repro.mobility.static import StaticMobility
from repro.scenarios import channels
from repro.scenarios.common import (
    AP_NODE_ID,
    build_medium,
    build_protocol_pool,
    car_ids as _car_ids,
    collect_matrices,
    make_flows,
    round_seed,
    spawn_platoon,
)
from repro.scenarios.configs import config_to_dict
from repro.scenarios.highway import _HIGHWAY_RADIO
from repro.scenarios.modes import PROTOCOL_MODES, ap_class, validate_mode
from repro.scenarios.registry import ScenarioPlugin, ScenarioPreset, register
from repro.scenarios.urban import RadioEnvironment
from repro.scenarios.summaries import (
    SWEEP_REPORT_HEADER,
    SweepPoint,
    encode_matrix,
    summarize_matrices,
    sweep_report_line,
)
from repro.sim import Simulator
from repro.trace.capture import TraceCollector

#: Oncoming vehicles get ids from 51 up, clear of main-platoon ids (1…)
#: and AP ids (100, 200…).
ONCOMING_BASE_ID = 51


@dataclass(frozen=True)
class BidirectionalConfig:
    """One bidirectional pass: main platoon east, oncoming platoon west.

    Attributes
    ----------
    speed_ms / n_cars / gap_m:
        The main (served) platoon, as in the highway scenario.
    oncoming_cars / oncoming_speed_ms / oncoming_gap_m:
        The opposite-lane platoon (0 cars = one-way reference run).
    oncoming_delay_s:
        Departure delay of the oncoming platoon from the east end.  With
        equal speeds the platoons then cross ``speed_ms·delay/2`` metres
        past the AP — i.e. inside the main platoon's dark area, where
        REQUESTs happen.
    lane_offset_m:
        Perpendicular separation of the two lanes.
    road_length_m / ap_offset_m:
        Geometry, as in the highway scenario.
    """

    speed_ms: float = 25.0
    n_cars: int = 3
    gap_m: float = 35.0
    oncoming_cars: int = 3
    oncoming_speed_ms: float = 25.0
    oncoming_gap_m: float = 35.0
    oncoming_delay_s: float = 20.0
    lane_offset_m: float = 7.0
    road_length_m: float = 3000.0
    ap_offset_m: float = 20.0
    packet_rate_hz: float = 10.0
    payload_bytes: int = 1000
    seed: int = 1651
    rounds: int = 5
    radio: RadioEnvironment = field(default_factory=lambda: _HIGHWAY_RADIO)
    carq: CarqConfig = field(
        default_factory=lambda: CarqConfig(batch_requests=True, max_batch=64)
    )
    mode: str = "carq"

    def __post_init__(self) -> None:
        if self.speed_ms <= 0.0 or self.oncoming_speed_ms <= 0.0:
            raise ConfigurationError("speeds must be positive")
        if self.n_cars < 1:
            raise ConfigurationError("need at least one car")
        if self.oncoming_cars < 0:
            raise ConfigurationError("oncoming_cars cannot be negative")
        if self.gap_m <= 0.0 or self.oncoming_gap_m <= 0.0:
            raise ConfigurationError("gaps must be positive")
        if self.oncoming_delay_s < 0.0:
            raise ConfigurationError("oncoming delay cannot be negative")
        validate_mode(self.mode)

    def main_ids(self) -> list[NodeId]:
        """Main-platoon node ids (car 1 leads)."""
        return _car_ids(self.n_cars)

    def oncoming_ids(self) -> list[NodeId]:
        """Oncoming-platoon node ids."""
        return _car_ids(self.oncoming_cars, first=ONCOMING_BASE_ID)

    @property
    def round_duration_s(self) -> float:
        """Main-platoon traversal plus dark-area recovery slack."""
        travel = (self.road_length_m + self.n_cars * self.gap_m) / self.speed_ms
        return travel + 60.0


@dataclass
class BidirectionalRoundContext:
    """One built bidirectional round."""

    sim: Simulator
    capture: TraceCollector
    ap: object
    main_cars: dict[NodeId, object]
    oncoming_cars: dict[NodeId, object]
    config: BidirectionalConfig

    @property
    def cars(self) -> dict[NodeId, object]:
        """All vehicles, main platoon first."""
        return {**self.main_cars, **self.oncoming_cars}

    def run(self) -> None:
        """Execute the pass."""
        self.sim.run(until=self.config.round_duration_s)


def build_bidirectional_round(
    cfg: BidirectionalConfig, round_index: int
) -> BidirectionalRoundContext:
    """Wire one bidirectional pass."""
    sim = Simulator(
        seed=round_seed(cfg.seed, round_index, stride=5003),
        scheduler=cfg.radio.scheduler,
    )
    capture = TraceCollector()
    medium = build_medium(
        sim, channels.highway_channel(cfg.radio, sim, AP_NODE_ID), cfg.radio,
        trace=capture,
    )
    # Both directions share one pool: oncoming cars cooperate with the
    # main platoon, so their watchdogs live in the same deadline array.
    pool = build_protocol_pool(sim, medium, cfg.radio)

    east = Polyline([Vec2(0.0, 0.0), Vec2(cfg.road_length_m, 0.0)])
    west = Polyline(
        [Vec2(cfg.road_length_m, cfg.lane_offset_m), Vec2(0.0, cfg.lane_offset_m)]
    )
    ap_position = Vec2(cfg.road_length_m / 2.0, -cfg.ap_offset_m)

    main_ids = cfg.main_ids()
    flows = make_flows(main_ids, cfg.packet_rate_hz, cfg.payload_bytes)
    ap = ap_class(cfg.mode)(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(ap_position),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    main_mobility = [
        PathMobility(east, cfg.speed_ms, start_time=i * cfg.gap_m / cfg.speed_ms)
        for i in range(cfg.n_cars)
    ]
    main_cars = spawn_platoon(
        cfg.mode,
        sim,
        medium,
        main_ids,
        main_mobility,
        cfg.radio.car_radio(),
        AP_NODE_ID,
        cfg.carq,
        pool=pool,
    )
    oncoming_ids = cfg.oncoming_ids()
    oncoming_mobility = [
        PathMobility(
            west,
            cfg.oncoming_speed_ms,
            start_time=cfg.oncoming_delay_s
            + i * cfg.oncoming_gap_m / cfg.oncoming_speed_ms,
        )
        for i in range(cfg.oncoming_cars)
    ]
    oncoming_cars = spawn_platoon(
        cfg.mode,
        sim,
        medium,
        oncoming_ids,
        oncoming_mobility,
        cfg.radio.car_radio(),
        AP_NODE_ID,
        cfg.carq,
        pool=pool,
    )
    ap.start()
    for car in main_cars.values():
        car.start()
    for car in oncoming_cars.values():
        car.start()
    return BidirectionalRoundContext(
        sim=sim,
        capture=capture,
        ap=ap,
        main_cars=main_cars,
        oncoming_cars=oncoming_cars,
        config=cfg,
    )


def collect_bidirectional_row(ctx: BidirectionalRoundContext) -> dict:
    """Reduce a finished pass to its campaign result row.

    Matrices cover the main platoon only (observers and flows): the
    oncoming platoon's help is visible exactly where it belongs, in the
    after-coop column, so the ``oncoming_cars = 0`` reference is a clean
    paired baseline.
    """
    matrices = collect_matrices(ctx.capture, ctx.main_cars)
    return {"matrices": [encode_matrix(m) for m in matrices.values()]}


def run_bidirectional_experiment(cfg: BidirectionalConfig) -> list[dict]:
    """All rounds; returns one result row per round."""
    rows = []
    for index in range(cfg.rounds):
        ctx = build_bidirectional_round(cfg, index)
        ctx.run()
        rows.append(collect_bidirectional_row(ctx))
    return rows


def _oncoming_preset() -> dict:
    """Loss reduction vs oncoming-platoon size (0 = no transient help)."""
    base = BidirectionalConfig(rounds=3)
    return {
        "name": "oncoming",
        "scenario": "bidirectional",
        "seed": base.seed,
        "rounds": base.rounds,
        "base": config_to_dict(base),
        "axes": [
            {
                "name": "oncoming_cars",
                "points": [
                    {"label": n, "overrides": {"oncoming_cars": n}}
                    for n in (0, 1, 3, 5)
                ],
            }
        ],
    }


PLUGIN = register(
    ScenarioPlugin(
        name="bidirectional",
        description=(
            "Bidirectional highway: an oncoming platoon crosses the dark "
            "area and cooperates for the seconds it is adjacent"
        ),
        config_cls=BidirectionalConfig,
        build_round=build_bidirectional_round,
        collect_row=collect_bidirectional_row,
        summarize=summarize_matrices,
        summary_cls=SweepPoint,
        report_header=SWEEP_REPORT_HEADER,
        report_line=sweep_report_line,
        modes=PROTOCOL_MODES,
        presets=(
            ScenarioPreset(
                "oncoming",
                "after-coop loss vs oncoming-platoon size (0–5 cars)",
                _oncoming_preset,
            ),
        ),
    )
)
