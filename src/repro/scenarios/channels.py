"""Channel presets: one propagation stack per scenario environment.

Three environments cover the paper's studies — the shadowed urban street
canyon of the testbed, the open two-ray highway of the drive-thru
motivation, and the lightly-built corridor of the multi-AP download road.
Each preset builds a complete :class:`~repro.radio.channel.Channel` from
a :class:`~repro.experiments.scenario.RadioEnvironment` and the
simulator's named random streams, so every scenario draws its fading,
shadowing, and error randomness from the same stream names and stays
reproducible under the campaign engine.
"""

from __future__ import annotations

import typing

from repro.mac.frames import NodeId
from repro.radio.channel import Channel
from repro.radio.fading import RicianFading
from repro.radio.obstruction import BuildingObstruction
from repro.radio.pathloss import (
    LogDistancePathLoss,
    MemoizedPathLoss,
    TwoRayGroundPathLoss,
)
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    TemporalTxShadowing,
)
from repro.sim import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mobility.urban import UrbanTestbed


def urban_channel(radio, sim: Simulator, hub: NodeId, testbed=None) -> Channel:
    """The urban street-canyon stack: log-distance + composite shadowing.

    Per-link Gudmundson shadowing models the street geometry; an
    AP-anchored temporal component (passers-by at the window antenna)
    hits every AP link at once — the source of joint losses.  Buildings
    of the testbed, when given, obstruct line of sight.
    """
    obstruction = None
    if testbed is not None and testbed.buildings:
        obstruction = BuildingObstruction(
            testbed.buildings, loss_per_building_db=radio.building_loss_db
        )
    per_link = GudmundsonShadowing(
        sim.streams.get("shadowing"),
        sigma_db=radio.shadowing_sigma_db,
        decorrelation_distance_m=radio.shadowing_decorrelation_m,
    )
    shadowing = per_link
    if radio.common_shadowing_sigma_db > 0.0:
        common = TemporalTxShadowing(
            sim.streams.get("shadowing-common"),
            sigma_db=radio.common_shadowing_sigma_db,
            tau_s=radio.common_shadowing_tau_s,
            hub=hub,
        )
        shadowing = CompositeShadowing([per_link, common])
    return Channel(
        # Memoized: the window AP is static, so AP-side link distances
        # repeat bit-identically whenever the platoon pauses or loops.
        pathloss=MemoizedPathLoss(
            LogDistancePathLoss(
                exponent=radio.pathloss_exponent,
                reference_loss_db=radio.reference_loss_db,
            )
        ),
        shadowing=shadowing,
        fading=RicianFading(sim.streams.get("fading"), k_factor=radio.rician_k),
        obstruction=obstruction,
        rng=sim.streams.get("channel"),
    )


def highway_channel(radio, sim: Simulator, hub: NodeId) -> Channel:
    """The open-road stack: two-ray ground, heavy scatter, no buildings."""
    return Channel(
        pathloss=TwoRayGroundPathLoss(tx_height_m=6.0, rx_height_m=1.5),
        shadowing=CompositeShadowing(
            [
                GudmundsonShadowing(
                    sim.streams.get("shadowing"),
                    sigma_db=radio.shadowing_sigma_db,
                    decorrelation_distance_m=25.0,
                ),
                TemporalTxShadowing(
                    sim.streams.get("shadowing-common"),
                    sigma_db=radio.common_shadowing_sigma_db,
                    tau_s=radio.common_shadowing_tau_s,
                    hub=hub,
                ),
            ]
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=radio.rician_k),
        rng=sim.streams.get("channel"),
    )


def corridor_channel(radio, sim: Simulator) -> Channel:
    """The multi-AP download road: log-distance with heavier shadowing."""
    return Channel(
        # Memoized: the infostations are static and regularly spaced, so
        # AP↔AP distances collapse to a handful of exact values.
        pathloss=MemoizedPathLoss(
            LogDistancePathLoss(
                exponent=radio.pathloss_exponent,
                reference_loss_db=radio.reference_loss_db,
            )
        ),
        shadowing=GudmundsonShadowing(
            sim.streams.get("shadowing"),
            sigma_db=radio.shadowing_sigma_db + 2.0,
            decorrelation_distance_m=radio.shadowing_decorrelation_m,
        ),
        fading=RicianFading(sim.streams.get("fading"), k_factor=radio.rician_k),
        rng=sim.streams.get("channel"),
    )
