"""Scenario plugins: one registry, one wiring path, every scenario.

This package owns everything between "a configuration dataclass" and "a
JSON result row": the plugin registry the campaign engine and CLI
dispatch through, the shared wiring pieces scenarios compose from, and
the built-in scenario set.

* :mod:`repro.scenarios.registry` — :class:`ScenarioPlugin` and the
  registry (``register`` / ``get_scenario`` / ``scenario_names``);
* :mod:`repro.scenarios.configs` — config dataclass ↔ JSON codec and
  dotted-path overrides (the declarative campaign substrate);
* :mod:`repro.scenarios.modes` — the protocol-mode factory making
  ``carq`` / ``nocoop`` / ``arq`` / ``epidemic`` a sweepable config
  field instead of separate builders;
* :mod:`repro.scenarios.channels` — propagation-stack presets (urban
  canyon, open highway, infostation corridor);
* :mod:`repro.scenarios.common` — per-round seeding, flow layout,
  vehicle-population spawning, matrix collection;
* :mod:`repro.scenarios.summaries` — result-row codecs and the folds
  back into :class:`SweepPoint` / :class:`DownloadSummary`;
* :mod:`repro.scenarios.urban` / :mod:`~repro.scenarios.highway` /
  :mod:`~repro.scenarios.multi_ap` /
  :mod:`~repro.scenarios.bidirectional` /
  :mod:`~repro.scenarios.trace` — the built-in scenarios.

Importing this package registers the built-in set; the modules in
:mod:`repro.experiments` re-export the same names for compatibility.
"""

from repro.scenarios.common import AP_NODE_ID, round_seed
from repro.scenarios.configs import (
    apply_override,
    config_from_dict,
    config_to_dict,
)
from repro.scenarios.modes import (
    BASELINE_MODES,
    PROTOCOL_MODES,
    build_vehicle,
    reception_state,
    validate_mode,
)
from repro.scenarios.registry import (
    ScenarioPlugin,
    ScenarioPreset,
    all_scenarios,
    get_scenario,
    has_scenario,
    register,
    scenario_names,
    scenario_table_markdown,
)
from repro.scenarios.summaries import (
    DownloadSummary,
    SweepPoint,
    aggregate_matrices,
    decode_matrix,
    encode_matrix,
)

# Built-in plugins register themselves at import time.
from repro.scenarios import urban as _urban  # noqa: E402  isort: skip
from repro.scenarios import highway as _highway  # noqa: E402  isort: skip
from repro.scenarios import multi_ap as _multi_ap  # noqa: E402  isort: skip
from repro.scenarios import bidirectional as _bidirectional  # noqa: E402  isort: skip
from repro.scenarios import trace as _trace  # noqa: E402  isort: skip

__all__ = [
    "AP_NODE_ID",
    "BASELINE_MODES",
    "DownloadSummary",
    "PROTOCOL_MODES",
    "ScenarioPlugin",
    "ScenarioPreset",
    "SweepPoint",
    "aggregate_matrices",
    "all_scenarios",
    "apply_override",
    "build_vehicle",
    "config_from_dict",
    "config_to_dict",
    "decode_matrix",
    "encode_matrix",
    "get_scenario",
    "has_scenario",
    "reception_state",
    "register",
    "round_seed",
    "scenario_names",
    "scenario_table_markdown",
    "validate_mode",
]
