"""The scenario plugin registry: one wiring path for every scenario.

A :class:`ScenarioPlugin` bundles everything the rest of the system needs
to run and report a scenario kind — its configuration dataclass, the
per-round builder, the row collector that reduces a finished round to a
JSON-storable dict, and the aggregator that folds stored rows back into
summary objects.  The campaign layer (spec validation, task execution,
report folds) and the CLI dispatch exclusively through this registry, so
adding a scenario is one :func:`register` call: no executor tables, no
report special cases, no CLI edits.

Plugins register themselves at import time from their defining modules;
importing :mod:`repro.scenarios` loads the built-in set (urban, highway,
multi_ap, bidirectional, trace).  Third-party plugins must live in an importable
module and register at its import: campaign workers on platforms without
``fork`` (the executor's ``spawn`` fallback) re-import rather than
inherit the parent's registry, so a plugin registered only by a script's
``__main__`` body would be missing there.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.errors import ScenarioError

if typing.TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Callable, Mapping


@dataclass(frozen=True)
class ScenarioPreset:
    """A named, zero-argument campaign recipe a plugin ships with.

    ``build`` returns a plain :class:`~repro.campaign.spec.CampaignSpec`
    JSON dict (never a ``CampaignSpec`` instance — plugins sit below the
    campaign layer and must not import it).  The CLI materialises the
    dict via ``CampaignSpec.from_dict``.
    """

    name: str
    description: str
    build: "Callable[[], dict]"


@dataclass(frozen=True)
class ScenarioPlugin:
    """Everything defining one runnable scenario kind.

    Attributes
    ----------
    name:
        Registry key; also the ``scenario`` field of campaign specs.
    description:
        One line for ``repro scenarios`` and the README scenario table.
    config_cls:
        The scenario's configuration dataclass.  Must be constructible
        from defaults and round-trip through
        :func:`repro.scenarios.configs.config_to_dict`.
    build_round:
        ``(config, round_index) -> context``; the context exposes
        ``run()`` executing the round to completion.
    collect_row:
        ``(finished context) -> dict``; the JSON row a campaign stores.
    summarize:
        ``(rows, parameter) -> summary_cls`` — folds one grid point's
        rows (all rounds) into one summary object.
    summary_cls:
        The type :attr:`summarize` returns (e.g. ``SweepPoint``), used by
        typed report entry points to refuse mismatched campaigns.
    report_header / report_line:
        The CLI report table: a header string and a ``summary -> str``
        formatter.
    modes:
        Protocol modes the scenario's config accepts in its ``mode``
        field (``("carq",)`` when the scenario is cooperative-only).
    presets:
        Campaign recipes the CLI offers under ``--preset``.
    """

    name: str
    description: str
    config_cls: type
    build_round: "Callable[[typing.Any, int], typing.Any]"
    collect_row: "Callable[[typing.Any], dict]"
    summarize: "Callable[[list[dict], typing.Any], typing.Any]"
    summary_cls: type
    report_header: str
    report_line: "Callable[[typing.Any], str]"
    modes: tuple[str, ...] = ("carq",)
    presets: tuple[ScenarioPreset, ...] = ()

    def run_round(self, config, round_index: int) -> dict:
        """Build, execute, and reduce one round to its result row.

        When a span tracer is installed (see :mod:`repro.obs`) the whole
        round — build, run, collect — is wrapped in a ``round`` span, the
        root of the round → slot → broadcast → batch-kernel hierarchy.
        """
        from repro import obs

        tracer = obs.tracer()
        if tracer is None:
            ctx = self.build_round(config, round_index)
            ctx.run()
            return self.collect_row(ctx)
        with tracer.span(
            "round", cat="campaign", scenario=self.name, round=round_index
        ):
            ctx = self.build_round(config, round_index)
            ctx.run()
            return self.collect_row(ctx)

    def default_config(self):
        """The scenario configuration with every field at its default."""
        return self.config_cls()


_PLUGINS: dict[str, ScenarioPlugin] = {}


def register(plugin: ScenarioPlugin) -> ScenarioPlugin:
    """Add *plugin* to the registry; duplicate names are rejected."""
    if plugin.name in _PLUGINS:
        raise ScenarioError(
            f"scenario {plugin.name!r} is already registered "
            f"(by {_PLUGINS[plugin.name].config_cls.__name__})"
        )
    _PLUGINS[plugin.name] = plugin
    return plugin


def unregister(name: str) -> None:
    """Remove a plugin (test isolation helper)."""
    _PLUGINS.pop(name, None)


def get_scenario(name: str) -> ScenarioPlugin:
    """The plugin registered under *name*.

    Raises
    ------
    ScenarioError
        When nothing is registered under *name*; the message lists the
        known scenario kinds.
    """
    try:
        return _PLUGINS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario kind {name!r}; registered: "
            f"{', '.join(scenario_names())}"
        ) from None


def has_scenario(name: str) -> bool:
    """Whether *name* is a registered scenario kind."""
    return name in _PLUGINS


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_PLUGINS)


def all_scenarios() -> list[ScenarioPlugin]:
    """All registered plugins, name order."""
    return [_PLUGINS[name] for name in scenario_names()]


def scenario_table_markdown() -> str:
    """The README scenario table, generated from plugin metadata.

    One source of truth: ``repro scenarios --markdown`` prints this and
    the README embeds it, so the docs can never drift from the registry.
    """
    lines = [
        "| Scenario | Protocol modes | Presets | What it studies |",
        "| --- | --- | --- | --- |",
    ]
    for plugin in all_scenarios():
        presets = ", ".join(f"`{p.name}`" for p in plugin.presets) or "—"
        modes = ", ".join(f"`{m}`" for m in plugin.modes)
        lines.append(
            f"| `{plugin.name}` | {modes} | {presets} | {plugin.description} |"
        )
    return "\n".join(lines)


def _flatten_config(data: dict, prefix: str = "") -> list[tuple[str, object]]:
    """Nested config dict → sorted ``(dotted path, default)`` pairs."""
    rows: list[tuple[str, object]] = []
    for key, value in sorted(data.items()):
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flatten_config(value, prefix=f"{path}."))
        else:
            rows.append((path, value))
    return rows


def scenario_reference_markdown() -> str:
    """The full scenario reference — the content of ``docs/SCENARIOS.md``.

    Generated entirely from registry metadata (descriptions, modes,
    presets) and each plugin's default configuration (every dotted
    config path with its default — exactly the paths campaign grid
    axes and ``--set`` accept), so the document cannot drift from the
    code: ``repro scenarios --doc`` regenerates it and CI diffs the
    committed file against the output.
    """
    import json

    from repro.scenarios.configs import config_to_dict

    lines = [
        "<!-- Generated by `repro scenarios --doc`. Do not edit by hand:",
        "     regenerate with `PYTHONPATH=src python -m repro scenarios --doc "
        "> docs/SCENARIOS.md`",
        "     (the CI docs job and tests/test_docs.py diff this file against "
        "the generator). -->",
        "",
        "# Scenario reference",
        "",
        "Every scenario is a plugin in the `repro.scenarios` registry; the",
        "campaign engine and CLI dispatch through it exclusively.  Run any",
        "scenario with `repro campaign run --scenario <name>` (gridless",
        "default configuration) or `--preset <preset>` (a shipped study);",
        "override any config field below with `--set <path>=<value>` or a",
        "campaign grid axis over the same dotted path.  See",
        "[ARCHITECTURE.md](ARCHITECTURE.md) for where scenarios sit in the",
        "stack.",
        "",
    ]
    for plugin in all_scenarios():
        config = plugin.default_config()
        lines.append(f"## `{plugin.name}`")
        lines.append("")
        lines.append(f"{plugin.description}.")
        lines.append("")
        lines.append(
            f"- **Config class:** `{plugin.config_cls.__module__}."
            f"{plugin.config_cls.__name__}`"
        )
        lines.append(
            f"- **Protocol modes:** {', '.join(f'`{m}`' for m in plugin.modes)}"
        )
        lines.append(
            f"- **Summary shape:** `{plugin.summary_cls.__name__}`"
        )
        lines.append("")
        if plugin.presets:
            lines.append("**Presets**")
            lines.append("")
            for preset in plugin.presets:
                lines.append(f"- `{preset.name}` — {preset.description}")
            lines.append("")
        lines.append("**Configuration fields** (dotted `--set` paths)")
        lines.append("")
        lines.append("| Path | Default |")
        lines.append("| --- | --- |")
        for path, default in _flatten_config(config_to_dict(config)):
            lines.append(f"| `{path}` | `{json.dumps(default)}` |")
        lines.append("")
    # No trailing newline: ``print()`` (the CLI) adds exactly one, so
    # ``repro scenarios --doc > docs/SCENARIOS.md`` ends with a single
    # newline and the docs-sync test compares against ``… + "\n"``.
    return "\n".join(lines).rstrip()
