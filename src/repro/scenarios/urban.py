"""The urban-testbed scenario: the paper's Fig. 2 loop, as a plugin.

A *round* is one platoon lap past the AP, simulated end-to-end with fresh
random streams — the unit the paper repeats 30 times.  The builder here
assembles everything: simulator, channel, medium, trace capture, the AP
and the vehicles.  The protocol is a config field (``mode``): C-ARQ by
default, any baseline via the mode factory — same seeds, same
trajectories, same channel realisation structure, so baseline arms of a
campaign are paired with the C-ARQ arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import CarqConfig
from repro.errors import ConfigurationError
from repro.mac.frames import NodeId
from repro.mac.medium import Medium
from repro.mobility.base import MobilityModel
from repro.mobility.idm import DriverProfile, simulate_platoon
from repro.mobility.profile import CurvatureSpeedProfile
from repro.mobility.static import StaticMobility
from repro.mobility.urban import UrbanTestbed, urban_loop
from repro.net.ap import AccessPoint
from repro.radio.modulation import rate_by_name
from repro.radio.phy import RadioConfig
from repro.scenarios import channels
from repro.scenarios.common import (
    AP_NODE_ID,
    build_medium,
    build_protocol_pool,
    car_ids as _car_ids,
    collect_matrices,
    frames_sent_by_node,
    make_flows,
    round_seed,
    spawn_platoon,
)
from repro.scenarios.configs import config_to_dict
from repro.scenarios.modes import PROTOCOL_MODES, ap_class, validate_mode
from repro.scenarios.registry import ScenarioPlugin, ScenarioPreset, register
from repro.scenarios.summaries import (
    SWEEP_REPORT_HEADER,
    SweepPoint,
    encode_matrix,
    summarize_matrices,
    sweep_report_line,
)
from repro.sim import Simulator
from repro.trace.capture import TraceCollector


@dataclass(frozen=True)
class RadioEnvironment:
    """Propagation and radio parameters of a scenario.

    The defaults are calibrated so the urban testbed reproduces the
    paper's loss levels (~23–29 % per car before cooperation) with a
    coverage window of roughly 120–145 packets per flow — see
    EXPERIMENTS.md for the calibration record.
    """

    pathloss_exponent: float = 3.7
    reference_loss_db: float = 40.0
    shadowing_sigma_db: float = 3.25
    shadowing_decorrelation_m: float = 18.0
    common_shadowing_sigma_db: float = 6.25
    common_shadowing_tau_s: float = 2.5
    rician_k: float = 4.0
    ap_tx_power_dbm: float = 19.0
    car_tx_power_dbm: float = 15.0
    rate_name: str = "dsss-1"
    building_loss_db: float = 31.0
    #: Reception fast path (see :class:`repro.mac.medium.Medium`): when
    #: true, the medium finds receivers through its spatial neighbor
    #: index and culls links that cannot clear the sensitivity threshold
    #: before sampling them.  Turning it off forces the exhaustive
    #: reference path, which must be bit-identical (A/B validation).
    reception_fast_path: bool = True
    #: Vectorized batch channel kernel (see :mod:`repro.radio.batch`):
    #: when true, big-enough candidate sets are evaluated as one NumPy
    #: pass.  Turning it off forces the scalar reference loop; the A/B
    #: tests pin both settings bit-identical, so this is purely a
    #: throughput knob.
    reception_batch: bool = True
    #: Cross-broadcast coalescing (see :mod:`repro.radio.multibatch`):
    #: when true (default), same-instant transmissions queue and the
    #: medium evaluates all their candidate lanes as one concatenated
    #: keyed pass at the instant's end, coalescing same-time frame-ends
    #: too.  Turning it off restores the one-broadcast-at-a-time path;
    #: the five-arm A/B harness pins both bit-identical, so this is
    #: purely a throughput knob.
    cross_broadcast_batch: bool = True
    #: Worst-case shadowing boost (dB) granted by the reachability bound.
    cull_headroom_db: float = 12.0
    #: Event scheduler of the simulation kernel: ``"wheel"`` (default)
    #: runs the slot-wheel calendar queue, ``"heap"`` the legacy binary
    #: heap.  Pop order is identical (pinned by the equivalence suite),
    #: so this is purely a throughput knob kept for A/B cross-checks.
    scheduler: str = "wheel"
    #: Coalesced protocol delivery (see
    #: :class:`repro.core.engine.ProtocolPool`): when true (default),
    #: each broadcast's successful receptions step the C-ARQ protocols
    #: as one batched pass with struct-of-arrays coverage watchdogs.
    #: Turning it off restores the per-vehicle callback + timer path —
    #: same results (A/B pinned), more event traffic.
    batched_delivery: bool = True

    def ap_radio(self) -> RadioConfig:
        """PHY parameters of the access point."""
        return RadioConfig(
            tx_power_dbm=self.ap_tx_power_dbm, rate=rate_by_name(self.rate_name)
        )

    def car_radio(self) -> RadioConfig:
        """PHY parameters of a vehicle."""
        return RadioConfig(
            tx_power_dbm=self.car_tx_power_dbm, rate=rate_by_name(self.rate_name)
        )


@dataclass(frozen=True)
class PlatoonConfig:
    """Platoon composition and driving style.

    ``driver_styles`` entries are ``"normal"``, ``"timid"`` or
    ``"aggressive"``; the testbed default recreates the paper's platoon
    (experienced leader, inexperienced driver 2, tailgating driver 3).
    """

    n_cars: int = 3
    cruise_speed_ms: float = 5.6       # ≈ 20 km/h
    corner_speed_ms: float = 3.2
    initial_gap_m: float = 14.0
    driver_styles: tuple[str, ...] = ("normal", "timid", "aggressive")
    follower_speed_factor: float = 1.2
    acceleration_noise_std: float = 0.15

    def __post_init__(self) -> None:
        if self.n_cars < 1:
            raise ConfigurationError("need at least one car")
        valid = {"normal", "timid", "aggressive"}
        for style in self.driver_styles:
            if style not in valid:
                raise ConfigurationError(f"unknown driver style {style!r}")

    def driver_profiles(self) -> list[DriverProfile]:
        """One profile per car (styles repeat if fewer than ``n_cars``)."""
        profiles = []
        base = DriverProfile(acceleration_noise_std=self.acceleration_noise_std)
        for index in range(self.n_cars):
            style = self.driver_styles[index % len(self.driver_styles)]
            profile = {
                "normal": base,
                "timid": base.timid(),
                "aggressive": base.aggressive(),
            }[style]
            if index > 0:
                # Followers chase the leader; see repro.mobility.idm notes.
                profile = replace(profile, speed_factor=self.follower_speed_factor)
            profiles.append(profile)
        return profiles


@dataclass(frozen=True)
class UrbanScenarioConfig:
    """Everything defining the urban testbed experiment."""

    seed: int = 2008
    rounds: int = 30
    round_duration_s: float = 85.0
    packet_rate_hz: float = 5.0
    payload_bytes: int = 1000
    radio: RadioEnvironment = field(default_factory=RadioEnvironment)
    platoon: PlatoonConfig = field(default_factory=PlatoonConfig)
    carq: CarqConfig = field(default_factory=CarqConfig)
    mode: str = "carq"

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("need at least one round")
        if self.round_duration_s <= 0.0:
            raise ConfigurationError("round duration must be positive")
        validate_mode(self.mode)

    def car_ids(self) -> list[NodeId]:
        """Vehicle node ids, platoon order (car 1 leads)."""
        return _car_ids(self.platoon.n_cars)


@dataclass
class RoundContext:
    """Everything built for one round, ready to run."""

    sim: Simulator
    medium: Medium
    capture: TraceCollector
    testbed: UrbanTestbed
    ap: AccessPoint
    cars: dict[NodeId, object]
    config: UrbanScenarioConfig
    mode: str = "carq"

    def run(self) -> None:
        """Execute the round to its configured duration."""
        self.sim.run(until=self.config.round_duration_s)


def build_platoon_mobility(
    cfg: UrbanScenarioConfig, sim: Simulator, testbed: UrbanTestbed
) -> list[MobilityModel]:
    """IDM trajectories for the round, with per-round driver variability."""
    rng = sim.streams.get("mobility")
    profiles = cfg.platoon.driver_profiles()
    # Humans are not metronomes: jitter speeds and gaps a little per round.
    jittered = []
    for profile in profiles:
        factor = float(rng.normal(1.0, 0.02))
        jittered.append(replace(profile, speed_factor=profile.speed_factor * factor))
    speed_profile = CurvatureSpeedProfile(
        testbed.track,
        cruise_speed=cfg.platoon.cruise_speed_ms,
        corner_speed=cfg.platoon.corner_speed_ms,
    )
    initial_gap = cfg.platoon.initial_gap_m * float(rng.uniform(0.85, 1.15))
    return list(
        simulate_platoon(
            testbed.track,
            speed_profile,
            jittered,
            duration=cfg.round_duration_s,
            rng=rng,
            initial_gap=initial_gap,
            lead_start_arc=testbed.start_arc_length,
        )
    )


def build_channel(cfg: UrbanScenarioConfig, sim: Simulator, testbed=None):
    """The urban propagation stack for one round (preset delegate)."""
    return channels.urban_channel(cfg.radio, sim, AP_NODE_ID, testbed)


def build_urban_round(
    cfg: UrbanScenarioConfig,
    round_index: int,
    *,
    testbed: UrbanTestbed | None = None,
) -> RoundContext:
    """Wire one complete round of the urban testbed.

    The protocol the vehicles (and for the ARQ baseline, the AP) run is
    ``cfg.mode``; every mode shares this exact wiring, so comparisons are
    apples-to-apples: same seeds → same trajectories and same channel
    realisation structure.
    """
    sim = Simulator(
        seed=round_seed(cfg.seed, round_index), scheduler=cfg.radio.scheduler
    )
    tb = testbed if testbed is not None else urban_loop()
    capture = TraceCollector()
    medium = build_medium(sim, build_channel(cfg, sim, tb), cfg.radio, trace=capture)
    pool = build_protocol_pool(sim, medium, cfg.radio)

    mobilities = build_platoon_mobility(cfg, sim, tb)
    car_ids = cfg.car_ids()
    flows = make_flows(car_ids, cfg.packet_rate_hz, cfg.payload_bytes)
    ap = ap_class(cfg.mode)(
        sim,
        medium,
        AP_NODE_ID,
        StaticMobility(tb.ap_position),
        cfg.radio.ap_radio(),
        sim.streams.get("ap"),
        flows,
    )
    cars = spawn_platoon(
        cfg.mode,
        sim,
        medium,
        car_ids,
        mobilities,
        cfg.radio.car_radio(),
        AP_NODE_ID,
        cfg.carq,
        pool=pool,
    )
    ap.start()
    for car in cars.values():
        car.start()
    return RoundContext(
        sim=sim,
        medium=medium,
        capture=capture,
        testbed=tb,
        ap=ap,
        cars=cars,
        config=cfg,
        mode=cfg.mode,
    )


def collect_urban_row(ctx: RoundContext) -> dict:
    """Reduce a finished round to its campaign result row."""
    matrices = collect_matrices(ctx.capture, ctx.cars)
    return {
        "matrices": [encode_matrix(m) for m in matrices.values()],
        "frames_sent": {
            str(int(node)): count
            for node, count in frames_sent_by_node(ctx.ap, ctx.cars).items()
        },
    }


# -- presets -----------------------------------------------------------------


def _paper_base() -> dict:
    """The paper's testbed configuration (3 cars, 30 rounds), as JSON."""
    return config_to_dict(UrbanScenarioConfig())


def platoon_size_points(sizes: list[int]) -> list[dict]:
    """Grid points (JSON shape) scaling the platoon to each size.

    Growing the platoon also needs more driver styles — the paper's
    leader/timid/aggressive trio repeats.  Shared by the plugin preset
    and :func:`repro.experiments.sweeps.platoon_size_spec` so the grid
    exists exactly once.
    """
    points = []
    for size in sizes:
        styles = [("normal", "timid", "aggressive")[i % 3] for i in range(size)]
        points.append(
            {
                "label": size,
                "overrides": {
                    "platoon.n_cars": size,
                    "platoon.driver_styles": styles,
                },
            }
        )
    return points


def _platoon_size_preset() -> dict:
    return {
        "name": "platoon-size",
        "scenario": "urban",
        "seed": 2008,
        "rounds": 8,
        "base": _paper_base(),
        "axes": [
            {
                "name": "platoon.n_cars",
                "points": platoon_size_points([1, 2, 3, 4, 5]),
            }
        ],
    }


def _bitrate_preset() -> dict:
    rates = ["dsss-1", "dsss-2", "dsss-5.5", "dsss-11"]
    return {
        "name": "bitrate",
        "scenario": "urban",
        "seed": 2008,
        "rounds": 8,
        "base": _paper_base(),
        "axes": [
            {
                "name": "radio.rate_name",
                "points": [
                    {"label": r, "overrides": {"radio.rate_name": r}} for r in rates
                ],
            }
        ],
    }


def _hello_period_preset() -> dict:
    periods = [0.5, 1.0, 2.0, 3.0]
    return {
        "name": "hello-period",
        "scenario": "urban",
        "seed": 2008,
        "rounds": 8,
        "base": _paper_base(),
        "axes": [
            {
                "name": "carq.hello_period_s",
                "points": [
                    {"label": p, "overrides": {"carq.hello_period_s": p}}
                    for p in periods
                ],
            }
        ],
    }


def _protocol_modes_preset() -> dict:
    """The paper's Table-1 comparison as one paired-seed campaign.

    All four arms share the campaign seed (``independent_seeds`` off), so
    every mode sees the same trajectories and channel realisations.
    """
    return {
        "name": "protocol-modes",
        "scenario": "urban",
        "seed": 2008,
        "rounds": 8,
        "base": _paper_base(),
        "axes": [
            {
                "name": "mode",
                "points": [
                    {"label": m, "overrides": {"mode": m}} for m in PROTOCOL_MODES
                ],
            }
        ],
    }


PLUGIN = register(
    ScenarioPlugin(
        name="urban",
        description=(
            "The paper's testbed: a 3-car platoon lapping the Fig. 2 urban "
            "loop past one window AP"
        ),
        config_cls=UrbanScenarioConfig,
        build_round=build_urban_round,
        collect_row=collect_urban_row,
        summarize=summarize_matrices,
        summary_cls=SweepPoint,
        report_header=SWEEP_REPORT_HEADER,
        report_line=sweep_report_line,
        modes=PROTOCOL_MODES,
        presets=(
            ScenarioPreset(
                "platoon-size",
                "after-coop loss vs platoon size (1–5 cars)",
                _platoon_size_preset,
            ),
            ScenarioPreset(
                "bitrate",
                "losses vs AP bit rate (DSSS 1–11 Mb/s)",
                _bitrate_preset,
            ),
            ScenarioPreset(
                "hello-period",
                "after-coop loss vs HELLO beacon period",
                _hello_period_preset,
            ),
            ScenarioPreset(
                "protocol-modes",
                "Table-1 comparison: C-ARQ vs every baseline, paired seeds",
                _protocol_modes_preset,
            ),
        ),
    )
)
