"""Counter-based ("keyed") randomness for per-link channel draws.

The medium's reception fast path culls receivers that can never clear the
sensitivity threshold *without sampling their channel*.  With ordinary
sequential generators that would be impossible to do bit-identically: a
skipped draw shifts every later draw on the shared stream.  A
:class:`KeyedRandom` instead derives every variate as a *pure function*
of an integer key tuple — ``(link, transmission, component)`` — so any
subset of links can be sampled, in any order, and each link always sees
exactly the same realisation.  This is the counter-based-RNG idea of
Philox/Threefry (Salmon et al., SC'11), implemented with the splitmix64
finaliser, which passes BigCrush as a 64→64 mixer and costs a handful of
integer ops in pure Python.

Seeding: a ``KeyedRandom`` is born from one draw off a named
:class:`~repro.sim.random.RandomStreams` generator, so the whole keyed
tree stays reproducible from the simulation's root seed.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

_MASK = 0xFFFFFFFFFFFFFFFF
#: splitmix64 increment (golden-ratio odd constant).
_GAMMA = 0x9E3779B97F4A7C15
_INV_2_53 = 1.0 / (1 << 53)


def _mix(value: int) -> int:
    """splitmix64 finaliser: a high-quality 64-bit mixing permutation."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK
    return value ^ (value >> 31)


def stable_hash64(value: Hashable) -> int:
    """A process-stable 64-bit hash for link keys and node ids.

    Python's built-in ``hash`` is salted per process, which would break
    reproducibility across runs (and across campaign workers), so ints
    are mixed directly and everything else is FNV-1a-hashed over its
    ``repr``.
    """
    if isinstance(value, int):
        return _mix(value & _MASK)
    if isinstance(value, tuple):
        acc = 0x8C74E9B55D3AEF1D
        for item in value:
            acc = _mix(acc ^ stable_hash64(item))
        return acc
    acc = 0xCBF29CE484222325  # FNV-1a offset basis
    for byte in repr(value).encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & _MASK
    return acc


class KeyedRandom:
    """Deterministic variates indexed by integer key tuples.

    Two instances with the same seed return identical values for
    identical keys; values for distinct keys are statistically
    independent.  There is no internal state: calling in any order, any
    number of times, yields the same results.
    """

    __slots__ = ("_seed",)

    def __init__(self, seed: int) -> None:
        self._seed = _mix(seed & _MASK)

    @classmethod
    def from_rng(cls, rng: np.random.Generator) -> "KeyedRandom":
        """Derive the keyed seed from one draw of a sequential stream."""
        return cls(int(rng.integers(0, 1 << 63, dtype=np.int64)))

    def _word(self, keys: tuple[int, ...]) -> int:
        # splitmix64 finaliser, inlined: this runs several times per
        # channel sample, so the _mix call overhead matters.
        acc = self._seed
        for key in keys:
            acc = (acc + _GAMMA) ^ (key & _MASK)
            acc = (acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
            acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & _MASK
            acc ^= acc >> 31
        return acc

    def uniform(self, *keys: int) -> float:
        """One U(0, 1) variate for *keys* (never exactly 0 or 1)."""
        return (self._word(keys) >> 11) * _INV_2_53 + _INV_2_53 * 0.5

    def normal(self, *keys: int) -> float:
        """One N(0, 1) variate for *keys* (Box–Muller, cosine branch)."""
        word = self._word(keys)
        u1 = (word >> 11) * _INV_2_53 + _INV_2_53 * 0.5
        u2 = (_mix(word + _GAMMA) >> 11) * _INV_2_53
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(6.283185307179586 * u2)

    def normal_pair(self, *keys: int) -> tuple[float, float]:
        """Two independent N(0, 1) variates for *keys* (one Box–Muller)."""
        word = self._word(keys)
        u1 = (word >> 11) * _INV_2_53 + _INV_2_53 * 0.5
        u2 = (_mix(word + _GAMMA) >> 11) * _INV_2_53
        radius = math.sqrt(-2.0 * math.log(u1))
        angle = 6.283185307179586 * u2
        return radius * math.cos(angle), radius * math.sin(angle)

    def exponential(self, *keys: int) -> float:
        """One Exp(1) variate for *keys*."""
        return -math.log(self.uniform(*keys))
