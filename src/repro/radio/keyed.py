"""Counter-based ("keyed") randomness for per-link channel draws.

The medium's reception fast path culls receivers that can never clear the
sensitivity threshold *without sampling their channel*.  With ordinary
sequential generators that would be impossible to do bit-identically: a
skipped draw shifts every later draw on the shared stream.  A
:class:`KeyedRandom` instead derives every variate as a *pure function*
of an integer key tuple — ``(link, transmission, component)`` — so any
subset of links can be sampled, in any order, and each link always sees
exactly the same realisation.  This is the counter-based-RNG idea of
Philox/Threefry (Salmon et al., SC'11), implemented with the splitmix64
finaliser, which passes BigCrush as a 64→64 mixer and costs a handful of
integer ops in pure Python.

Seeding: a ``KeyedRandom`` is born from one draw off a named
:class:`~repro.sim.random.RandomStreams` generator, so the whole keyed
tree stays reproducible from the simulation's root seed.

Which RNG key stream am I on?
=============================

Every stochastic value in the radio stack is a pure function of
``(seed material, key tuple)``.  This table is the contract the
bit-identity pins (PRs 3–4: exhaustive / fast-path / batch-kernel rows
must match bit for bit) depend on — when adding a consumer, claim a key
layout here and never reuse another component's:

========================  =========================  ==========================================
Component                 Seed material              Key tuple per draw
========================  =========================  ==========================================
Rician / Rayleigh fading  one draw off the           ``(link_hash, tx_seq)`` — one draw per
                          ``"fading"`` stream        link per transmission
Gudmundson shadowing      one draw off the           ``(link_hash, epoch, ix, iy, iz)`` — one
                          ``"shadowing"`` stream     unit Gaussian per corner of the frozen
                                                     lattice cell in (summed position,
                                                     separation) space
TemporalTx (OU chain)     one draw off the           ``(process_hash, epoch, k)`` — one
                          ``"shadowing-common"``     innovation per tau/4 grid step ``k``;
                          stream                     hub-anchored links share one process
Frame-error Bernoulli     the ``"channel"`` stream   sequential (drawn only for frames that
                                                     pass the power threshold, whose set is
                                                     identical on every reception path)
========================  =========================  ==========================================

``link_hash`` is ``stable_hash64(Channel.link_key(tx, rx))`` — the
*order-independent* link key, so A→B and B→A share one realisation
(channel reciprocity) and the hash is stable across processes and
campaign workers (Python's salted ``hash`` is never used).  ``tx_seq``
is the medium's per-transmission counter; ``epoch`` increments on
``reset()`` so reused model objects re-realise.  The scalar and batch
(`*_batch`) methods of :class:`KeyedRandom` evaluate the *same* key
tuples to the *same* float64 values — the batch kernel vectorizes the
key lattice, never re-keys it.

Two rules keep culling exact:

1. **No sequential draws on a culled path.**  A component either keys
   every draw (fading, shadowing) or draws sequentially *after* the
   identical-on-every-path threshold decision (frame errors).  A
   sequential draw before culling would shift the whole stream when a
   candidate is skipped.
2. **Key tuples are never position-dependent on mutable state.**  Keys
   derive from link identity, transmission counters, and frozen lattice
   indices — things equal on every reception path by construction.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Callable, Hashable

import numpy as np

_MASK = 0xFFFFFFFFFFFFFFFF
#: splitmix64 increment (golden-ratio odd constant).
_GAMMA = 0x9E3779B97F4A7C15
_INV_2_53 = 1.0 / (1 << 53)
#: ``_INV_2_53 * 0.5`` as evaluated by the scalar helpers below.
_INV_2_54 = _INV_2_53 * 0.5

# uint64 copies of the splitmix constants for the vectorized kernels.
_GAMMA_U = np.uint64(_GAMMA)
_M1_U = np.uint64(0xBF58476D1CE4E5B9)
_M2_U = np.uint64(0x94D049BB133111EB)
_U11 = np.uint64(11)
_U27 = np.uint64(27)
_U30 = np.uint64(30)
_U31 = np.uint64(31)
_U34 = np.uint64(34)
_TWO_PI = 6.283185307179586


def libm_map(func: Callable[[float], float], values: np.ndarray) -> np.ndarray:
    """Apply a scalar libm function elementwise, bit-identical to ``math``.

    NumPy's vectorized transcendentals (``np.log``, ``np.log10``,
    ``np.hypot``, ``np.power``, and — on hardware where the wheel
    dispatches SIMD kernels — ``np.cos``/``np.sin``) can differ from the
    C library in the last ulp on a fraction of inputs, so they cannot be
    used where the batch kernel must reproduce the scalar reference bit
    for bit *on every machine a campaign worker may run on*.  Only
    IEEE-exact ufuncs (``np.sqrt``, ``np.floor``, arithmetic,
    min/max/comparisons) stay vectorized.
    """
    flat = values.reshape(-1)
    out = np.fromiter(map(func, flat.tolist()), np.float64, count=flat.size)
    return out.reshape(values.shape)


def hypot_map(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Elementwise ``math.hypot`` (see :func:`libm_map` for why not np)."""
    return np.fromiter(
        map(math.hypot, dx.tolist(), dy.tolist()), np.float64, count=dx.size
    )


def _mix(value: int) -> int:
    """splitmix64 finaliser: a high-quality 64-bit mixing permutation."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK
    return value ^ (value >> 31)


def _finish_mix_u64(value: np.ndarray, carry: np.ndarray | None) -> np.ndarray:
    """The tail of :func:`_mix` on uint64 arrays, with 65-bit-input fidelity.

    The scalar code runs on unmasked Python ints, so an input of
    ``word + _GAMMA`` may carry a 65th bit into the first ``value >> 30``
    term before the multiply-and-mask discards it again (``2**64 * M ≡ 0
    mod 2**64``).  *carry* marks lanes whose true input overflowed 64
    bits; their shifted term gains the bit the wrap dropped (bit
    ``64 - 30 = 34``).  Everything after the first multiply is already
    masked in the scalar code and needs no correction.
    """
    shifted = value >> _U30
    if carry is not None:
        shifted = shifted | (carry.astype(np.uint64) << _U34)
    value = (value ^ shifted) * _M1_U
    value = (value ^ (value >> _U27)) * _M2_U
    return value ^ (value >> _U31)


def _mix_plus_gamma_u64(word: np.ndarray) -> np.ndarray:
    """Vectorized ``_mix(word + _GAMMA)`` for masked uint64 *word* lanes."""
    total = word + _GAMMA_U
    return _finish_mix_u64(total, total < _GAMMA_U)


def stable_hash64(value: Hashable) -> int:
    """A process-stable 64-bit hash for link keys and node ids.

    Python's built-in ``hash`` is salted per process, which would break
    reproducibility across runs (and across campaign workers), so ints
    are mixed directly and everything else is FNV-1a-hashed over its
    ``repr``.
    """
    if isinstance(value, int):
        return _mix(value & _MASK)
    if isinstance(value, tuple):
        acc = 0x8C74E9B55D3AEF1D
        for item in value:
            # Int items (node ids — the common case on the cold-link
            # path) hash inline rather than through a recursive call.
            if isinstance(item, int):
                acc = _mix(acc ^ _mix(item & _MASK))
            else:
                acc = _mix(acc ^ stable_hash64(item))
        return acc
    acc = 0xCBF29CE484222325  # FNV-1a offset basis
    for byte in repr(value).encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & _MASK
    return acc


class KeyedRandom:
    """Deterministic variates indexed by integer key tuples.

    Two instances with the same seed return identical values for
    identical keys; values for distinct keys are statistically
    independent.  There is no internal state: calling in any order, any
    number of times, yields the same results.
    """

    __slots__ = ("_seed",)

    def __init__(self, seed: int) -> None:
        self._seed = _mix(seed & _MASK)

    @classmethod
    def from_rng(cls, rng: np.random.Generator) -> "KeyedRandom":
        """Derive the keyed seed from one draw of a sequential stream."""
        return cls(int(rng.integers(0, 1 << 63, dtype=np.int64)))

    def _word(self, keys: tuple[int, ...]) -> int:
        # splitmix64 finaliser, inlined: this runs several times per
        # channel sample, so the _mix call overhead matters.
        acc = self._seed
        for key in keys:
            acc = (acc + _GAMMA) ^ (key & _MASK)
            acc = (acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
            acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & _MASK
            acc ^= acc >> 31
        return acc

    def uniform(self, *keys: int) -> float:
        """One U(0, 1) variate for *keys* (never exactly 0 or 1)."""
        return (self._word(keys) >> 11) * _INV_2_53 + _INV_2_53 * 0.5

    def normal(self, *keys: int) -> float:
        """One N(0, 1) variate for *keys* (Box–Muller, cosine branch)."""
        word = self._word(keys)
        u1 = (word >> 11) * _INV_2_53 + _INV_2_53 * 0.5
        u2 = (_mix(word + _GAMMA) >> 11) * _INV_2_53
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(6.283185307179586 * u2)

    def normal_pair(self, *keys: int) -> tuple[float, float]:
        """Two independent N(0, 1) variates for *keys* (one Box–Muller)."""
        word = self._word(keys)
        u1 = (word >> 11) * _INV_2_53 + _INV_2_53 * 0.5
        u2 = (_mix(word + _GAMMA) >> 11) * _INV_2_53
        radius = math.sqrt(-2.0 * math.log(u1))
        angle = 6.283185307179586 * u2
        return radius * math.cos(angle), radius * math.sin(angle)

    def exponential(self, *keys: int) -> float:
        """One Exp(1) variate for *keys*."""
        return -math.log(self.uniform(*keys))

    # -- vectorized batch variants -------------------------------------------
    #
    # Each *_batch method evaluates the matching scalar method for a whole
    # lattice of keys at once and returns bit-identical float64 values
    # (pinned by tests/radio/test_keyed.py).  Key columns are scalars or
    # integer ndarrays that broadcast to *shape*; signed arrays wrap to
    # uint64 exactly like the scalar path's ``key & _MASK``.

    def words_batch(
        self, cols: Sequence[int | np.ndarray], shape: tuple[int, ...]
    ) -> np.ndarray:
        """Vectorized :meth:`_word`: one uint64 word per key lane."""
        acc = np.full(shape, np.uint64(self._seed), dtype=np.uint64)
        for col in cols:
            if isinstance(col, np.ndarray):
                key = col if col.dtype == np.uint64 else col.astype(np.uint64)
            else:
                key = np.uint64(int(col) & _MASK)
            # Scalar: acc = (acc + GAMMA) ^ key, *unmasked* — the 65th bit
            # of the sum (key is already masked, so xor keeps it) leaks
            # into the first shift term; see _finish_mix_u64.
            total = acc + _GAMMA_U
            carry = total < _GAMMA_U
            acc = _finish_mix_u64(total ^ key, carry)
        return acc

    def uniform_batch(
        self, cols: Sequence[int | np.ndarray], shape: tuple[int, ...]
    ) -> np.ndarray:
        """Vectorized :meth:`uniform`."""
        return (self.words_batch(cols, shape) >> _U11) * _INV_2_53 + _INV_2_54

    def normal_batch(
        self, cols: Sequence[int | np.ndarray], shape: tuple[int, ...]
    ) -> np.ndarray:
        """Vectorized :meth:`normal` (Box–Muller, cosine branch)."""
        word = self.words_batch(cols, shape)
        u1 = (word >> _U11) * _INV_2_53 + _INV_2_54
        u2 = (_mix_plus_gamma_u64(word) >> _U11) * _INV_2_53
        return np.sqrt(-2.0 * libm_map(math.log, u1)) * libm_map(
            math.cos, _TWO_PI * u2
        )

    def normal_pair_batch(
        self, cols: Sequence[int | np.ndarray], shape: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`normal_pair`."""
        word = self.words_batch(cols, shape)
        u1 = (word >> _U11) * _INV_2_53 + _INV_2_54
        u2 = (_mix_plus_gamma_u64(word) >> _U11) * _INV_2_53
        radius = np.sqrt(-2.0 * libm_map(math.log, u1))
        angle = _TWO_PI * u2
        return radius * libm_map(math.cos, angle), radius * libm_map(
            math.sin, angle
        )

    def exponential_batch(
        self, cols: Sequence[int | np.ndarray], shape: tuple[int, ...]
    ) -> np.ndarray:
        """Vectorized :meth:`exponential`."""
        return -libm_map(math.log, self.uniform_batch(cols, shape))
