"""Large-scale path-loss models.

All models return path loss in dB (a positive number to subtract from the
transmit power) as a function of link distance in metres.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.errors import RadioError
from repro.units import SPEED_OF_LIGHT


class PathLossModel(abc.ABC):
    """Interface: distance [m] → path loss [dB]."""

    @abc.abstractmethod
    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at the given distance.

        Implementations must be monotonically non-decreasing in distance and
        must handle ``distance_m == 0`` gracefully (clamping to a minimum
        distance) because a mobility model may momentarily co-locate nodes.
        """


def _clamp_distance(distance_m: float, minimum: float = 1.0) -> float:
    if distance_m < 0.0:
        raise RadioError(f"negative link distance {distance_m!r}")
    return max(distance_m, minimum)


@dataclass(frozen=True)
class FreeSpacePathLoss(PathLossModel):
    """Friis free-space propagation.

    ``PL(d) = 20 log10(4 π d f / c)``

    Parameters
    ----------
    frequency_hz:
        Carrier frequency (2.412e9 for 802.11 channel 1).
    min_distance_m:
        Distances below this are clamped to avoid the near-field singularity.
    """

    frequency_hz: float = 2.412e9
    min_distance_m: float = 1.0

    def loss_db(self, distance_m: float) -> float:
        d = _clamp_distance(distance_m, self.min_distance_m)
        return 20.0 * math.log10(4.0 * math.pi * d * self.frequency_hz / SPEED_OF_LIGHT)


@dataclass(frozen=True)
class LogDistancePathLoss(PathLossModel):
    """Log-distance model — the standard urban-street abstraction.

    ``PL(d) = PL(d0) + 10 n log10(d / d0)``

    where the reference loss ``PL(d0)`` defaults to free space at *d0* and
    ``n`` is the path-loss exponent (≈2 free space, 2.7–3.5 urban).  This is
    the model used by the paper-testbed scenario: the office-window antenna
    in a street canyon is well described by ``n≈2.8–3.2``.
    """

    exponent: float = 3.0
    reference_distance_m: float = 1.0
    reference_loss_db: float | None = None
    frequency_hz: float = 2.412e9

    def __post_init__(self) -> None:
        if self.exponent <= 0.0:
            raise RadioError(f"path-loss exponent must be positive, got {self.exponent!r}")
        if self.reference_distance_m <= 0.0:
            raise RadioError("reference distance must be positive")

    def _reference_loss(self) -> float:
        if self.reference_loss_db is not None:
            return self.reference_loss_db
        return FreeSpacePathLoss(self.frequency_hz, self.reference_distance_m).loss_db(
            self.reference_distance_m
        )

    def loss_db(self, distance_m: float) -> float:
        d = _clamp_distance(distance_m, self.reference_distance_m)
        return self._reference_loss() + 10.0 * self.exponent * math.log10(
            d / self.reference_distance_m
        )


@dataclass(frozen=True)
class TwoRayGroundPathLoss(PathLossModel):
    """Two-ray ground-reflection model for long flat links (highway).

    Below the crossover distance ``d_c = 4 π h_t h_r / λ`` the model falls
    back to free space; beyond it the ground reflection dominates:

    ``PL(d) = 40 log10(d) - 10 log10(h_t² h_r²)``
    """

    tx_height_m: float = 5.0
    rx_height_m: float = 1.5
    frequency_hz: float = 2.412e9
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.tx_height_m <= 0.0 or self.rx_height_m <= 0.0:
            raise RadioError("antenna heights must be positive")

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the two-ray regime takes over from free space."""
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / wavelength

    def loss_db(self, distance_m: float) -> float:
        d = _clamp_distance(distance_m, self.min_distance_m)
        free_space = FreeSpacePathLoss(self.frequency_hz, self.min_distance_m)
        if d <= self.crossover_distance_m:
            return free_space.loss_db(d)
        return 40.0 * math.log10(d) - 10.0 * math.log10(
            self.tx_height_m**2 * self.rx_height_m**2
        )
