"""Large-scale path-loss models.

All models return path loss in dB (a positive number to subtract from the
transmit power) as a function of link distance in metres.  They sit on
the medium's per-receiver hot path, so each model folds its parameters
into precomputed constants (one ``log10`` per evaluation) and exposes the
closed-form inverse :meth:`PathLossModel.range_for_loss`, which the
medium's spatial neighbor index uses to convert a power threshold into a
candidate radius.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RadioError
from repro.radio.keyed import libm_map
from repro.units import SPEED_OF_LIGHT


class PathLossModel(abc.ABC):
    """Interface: distance [m] → path loss [dB]."""

    __slots__ = ()

    @abc.abstractmethod
    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at the given distance.

        Implementations must be monotonically non-decreasing in distance and
        must handle ``distance_m == 0`` gracefully (clamping to a minimum
        distance) because a mobility model may momentarily co-locate nodes.
        """

    def loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """Path loss for a whole candidate set at once.

        Must be bit-identical to mapping :meth:`loss_db` over the array
        (the batch reception kernel's contract); this fallback simply
        does that, concrete models vectorize.
        """
        return np.array(
            [self.loss_db(d) for d in distances_m.tolist()], dtype=np.float64
        )

    def range_for_loss(self, loss_db: float) -> float:
        """Largest distance whose loss does not exceed *loss_db*.

        The inverse of :meth:`loss_db`; used to size the medium's
        neighbor search radius.  Models without a closed form may return
        ``inf``, which conservatively disables the spatial cull (every
        receiver stays a candidate).
        """
        return math.inf


def _clamp_distance(distance_m: float, minimum: float = 1.0) -> float:
    if distance_m < 0.0:
        raise RadioError(f"negative link distance {distance_m!r}")
    return max(distance_m, minimum)


def _clamp_distances(distances_m: np.ndarray, minimum: float) -> np.ndarray:
    if distances_m.size and float(distances_m.min()) < 0.0:
        raise RadioError(f"negative link distance in batch {distances_m!r}")
    return np.maximum(distances_m, minimum)


@dataclass(slots=True, frozen=True)
class FreeSpacePathLoss(PathLossModel):
    """Friis free-space propagation.

    ``PL(d) = 20 log10(4 π d f / c)``

    Parameters
    ----------
    frequency_hz:
        Carrier frequency (2.412e9 for 802.11 channel 1).
    min_distance_m:
        Distances below this are clamped to avoid the near-field singularity.
    """

    frequency_hz: float = 2.412e9
    min_distance_m: float = 1.0
    _constant_db: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # 20·log10(4πf/c), folded so one log10 remains per evaluation.
        constant = 20.0 * math.log10(
            4.0 * math.pi * self.frequency_hz / SPEED_OF_LIGHT
        )
        object.__setattr__(self, "_constant_db", constant)

    def loss_db(self, distance_m: float) -> float:
        d = _clamp_distance(distance_m, self.min_distance_m)
        return 20.0 * math.log10(d) + self._constant_db

    def loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        d = _clamp_distances(distances_m, self.min_distance_m)
        return 20.0 * libm_map(math.log10, d) + self._constant_db

    def range_for_loss(self, loss_db: float) -> float:
        return 10.0 ** ((loss_db - self._constant_db) / 20.0)


@dataclass(slots=True, frozen=True)
class LogDistancePathLoss(PathLossModel):
    """Log-distance model — the standard urban-street abstraction.

    ``PL(d) = PL(d0) + 10 n log10(d / d0)``

    where the reference loss ``PL(d0)`` defaults to free space at *d0* and
    ``n`` is the path-loss exponent (≈2 free space, 2.7–3.5 urban).  This is
    the model used by the paper-testbed scenario: the office-window antenna
    in a street canyon is well described by ``n≈2.8–3.2``.
    """

    exponent: float = 3.0
    reference_distance_m: float = 1.0
    reference_loss_db: float | None = None
    frequency_hz: float = 2.412e9
    _constant_db: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.exponent <= 0.0:
            raise RadioError(f"path-loss exponent must be positive, got {self.exponent!r}")
        if self.reference_distance_m <= 0.0:
            raise RadioError("reference distance must be positive")
        # loss(d) = constant + 10·n·log10(d) for d ≥ d0.
        constant = self._reference_loss() - 10.0 * self.exponent * math.log10(
            self.reference_distance_m
        )
        object.__setattr__(self, "_constant_db", constant)

    def _reference_loss(self) -> float:
        if self.reference_loss_db is not None:
            return self.reference_loss_db
        return FreeSpacePathLoss(self.frequency_hz, self.reference_distance_m).loss_db(
            self.reference_distance_m
        )

    def loss_db(self, distance_m: float) -> float:
        d = _clamp_distance(distance_m, self.reference_distance_m)
        return self._constant_db + 10.0 * self.exponent * math.log10(d)

    def loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        d = _clamp_distances(distances_m, self.reference_distance_m)
        return self._constant_db + 10.0 * self.exponent * libm_map(math.log10, d)

    def range_for_loss(self, loss_db: float) -> float:
        return 10.0 ** ((loss_db - self._constant_db) / (10.0 * self.exponent))


@dataclass(slots=True, frozen=True)
class TwoRayGroundPathLoss(PathLossModel):
    """Two-ray ground-reflection model for long flat links (highway).

    Below the crossover distance ``d_c = 4 π h_t h_r / λ`` the model falls
    back to free space; beyond it the ground reflection dominates:

    ``PL(d) = 40 log10(d) - 10 log10(h_t² h_r²)``
    """

    tx_height_m: float = 5.0
    rx_height_m: float = 1.5
    frequency_hz: float = 2.412e9
    min_distance_m: float = 1.0
    _free_space: "FreeSpacePathLoss" = field(init=False, repr=False, compare=False)
    _height_gain_db: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.tx_height_m <= 0.0 or self.rx_height_m <= 0.0:
            raise RadioError("antenna heights must be positive")
        object.__setattr__(
            self,
            "_free_space",
            FreeSpacePathLoss(self.frequency_hz, self.min_distance_m),
        )
        object.__setattr__(
            self,
            "_height_gain_db",
            10.0 * math.log10(self.tx_height_m**2 * self.rx_height_m**2),
        )

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the two-ray regime takes over from free space."""
        wavelength = SPEED_OF_LIGHT / self.frequency_hz
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / wavelength

    def loss_db(self, distance_m: float) -> float:
        d = _clamp_distance(distance_m, self.min_distance_m)
        if d <= self.crossover_distance_m:
            return self._free_space.loss_db(d)
        return 40.0 * math.log10(d) - self._height_gain_db

    def loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        d = _clamp_distances(distances_m, self.min_distance_m)
        logd = libm_map(math.log10, d)
        # FreeSpacePathLoss.loss_db on an already-clamped distance is
        # exactly 20·log10(d) + constant, so the branch shares one log10.
        free_space = 20.0 * logd + self._free_space._constant_db
        two_ray = 40.0 * logd - self._height_gain_db
        return np.where(d <= self.crossover_distance_m, free_space, two_ray)

    def range_for_loss(self, loss_db: float) -> float:
        crossover = self.crossover_distance_m
        if loss_db <= self.loss_db(crossover):
            return min(self._free_space.range_for_loss(loss_db), crossover)
        return 10.0 ** ((loss_db + self._height_gain_db) / 40.0)


class MemoizedPathLoss(PathLossModel):
    """Caches :meth:`loss_db` by exact distance for static-topology reuse.

    Static node pairs (the multi-AP infostations, the urban testbed's
    window AP) query the same bit-identical distances every frame; so do
    regularly spaced geometries, whose distinct inter-node distances
    collapse to a handful of values.  The cache is exact (keyed on the
    float distance), so wrapping a model never changes results — a miss
    simply delegates.  When the cache fills (mobile workloads produce
    unbounded distinct distances) it is dropped wholesale; hot static
    entries re-populate within a frame.
    """

    __slots__ = ("model", "max_entries", "_cache",)

    def __init__(self, model: PathLossModel, *, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise RadioError("memoized path loss needs a positive capacity")
        self.model = model
        self.max_entries = max_entries
        self._cache: dict[float, float] = {}

    def loss_db(self, distance_m: float) -> float:
        cached = self._cache.get(distance_m)
        if cached is not None:
            return cached
        value = self.model.loss_db(distance_m)
        if len(self._cache) >= self.max_entries:
            self._cache.clear()
        self._cache[distance_m] = value
        return value

    def loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """Batch lookup: cache hits fill directly, misses go vectorized.

        The cache is exact, so mixing cached (scalar-computed) and
        vectorized values never changes a result — the wrapped model's
        batch method is itself pinned bit-identical to its scalar one.
        """
        d_list = distances_m.tolist()
        out = np.empty(len(d_list), dtype=np.float64)
        cache = self._cache
        misses: list[int] = []
        for i, d in enumerate(d_list):
            cached = cache.get(d)
            if cached is None:
                misses.append(i)
            else:
                out[i] = cached
        if misses:
            values = self.model.loss_db_batch(distances_m[np.array(misses)])
            if len(cache) + len(misses) > self.max_entries:
                cache.clear()
            for j, i in enumerate(misses):
                value = float(values[j])
                cache[d_list[i]] = value
                out[i] = value
        return out

    def range_for_loss(self, loss_db: float) -> float:
        return self.model.range_for_loss(loss_db)
