"""SNR → frame-error-rate computations."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import RadioError
from repro.radio.keyed import libm_map
from repro.radio.modulation import WifiRate
from repro.units import bytes_to_bits


def frame_error_rate(rate: WifiRate, snr_db: float, size_bytes: int) -> float:
    """Probability that a frame of *size_bytes* is corrupted.

    Assumes independent bit errors:
    ``FER = 1 - (1 - BER)^bits``.

    Raises
    ------
    RadioError
        If *size_bytes* is not positive.
    """
    if size_bytes <= 0:
        raise RadioError(f"frame size must be positive, got {size_bytes!r}")
    ber = rate.bit_error_rate(snr_db)
    if ber <= 0.0:
        return 0.0
    if ber >= 0.5:
        return 1.0
    bits = bytes_to_bits(size_bytes)
    # log1p keeps precision when BER is tiny and bits is large.
    log_success = bits * math.log1p(-ber)
    return 1.0 - math.exp(log_success)


def frame_error_rate_batch(
    rate: WifiRate, snr_db: np.ndarray, size_bytes: int
) -> np.ndarray:
    """Vectorized :func:`frame_error_rate` for one frame toward many SNRs.

    Bit-identical per lane (the medium's batched frame-end path relies
    on it): the BER comes from the rate's pinned batch curve, the
    ``log1p``/``exp`` composition goes through libm, and the 0/0.5
    saturation branches select exactly as the scalar code does.
    """
    if size_bytes <= 0:
        raise RadioError(f"frame size must be positive, got {size_bytes!r}")
    ber = rate.bit_error_rate_batch(snr_db)
    bits = bytes_to_bits(size_bytes)
    fer = 1.0 - libm_map(math.exp, bits * libm_map(math.log1p, -ber))
    return np.where(ber <= 0.0, 0.0, np.where(ber >= 0.5, 1.0, fer))


def frame_success_probability(rate: WifiRate, snr_db: float, size_bytes: int) -> float:
    """Complement of :func:`frame_error_rate`."""
    return 1.0 - frame_error_rate(rate, snr_db, size_bytes)
