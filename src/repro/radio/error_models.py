"""SNR → frame-error-rate computations."""

from __future__ import annotations

from repro.errors import RadioError
from repro.radio.modulation import WifiRate
from repro.units import bytes_to_bits


def frame_error_rate(rate: WifiRate, snr_db: float, size_bytes: int) -> float:
    """Probability that a frame of *size_bytes* is corrupted.

    Assumes independent bit errors:
    ``FER = 1 - (1 - BER)^bits``.

    Raises
    ------
    RadioError
        If *size_bytes* is not positive.
    """
    if size_bytes <= 0:
        raise RadioError(f"frame size must be positive, got {size_bytes!r}")
    ber = rate.bit_error_rate(snr_db)
    if ber <= 0.0:
        return 0.0
    if ber >= 0.5:
        return 1.0
    bits = bytes_to_bits(size_bytes)
    # log1p keeps precision when BER is tiny and bits is large.
    import math

    log_success = bits * math.log1p(-ber)
    return 1.0 - math.exp(log_success)


def frame_success_probability(rate: WifiRate, snr_db: float, size_bytes: int) -> float:
    """Complement of :func:`frame_error_rate`."""
    return 1.0 - frame_error_rate(rate, snr_db, size_bytes)
