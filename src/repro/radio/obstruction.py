"""Building obstruction: extra loss on non-line-of-sight links.

The urban testbed's AP street is in line of sight; the other streets of
the block are shadowed by buildings.  This is what confines coverage to a
~150 m stretch of the loop and creates the *dark area* where Cooperative
ARQ operates — without it, a free-space model would cover the entire
block and no recovery phase would ever start.

The model is deliberately simple: each building footprint crossed by the
TX→RX segment adds a fixed penetration/diffraction penalty, capped after
``max_walls`` crossings (beyond 2–3 obstructions the link is dead anyway).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.errors import RadioError
from repro.geom import Vec2
from repro.geom.shapes import AxisRect


class ObstructionModel(abc.ABC):
    """Interface: (tx position, rx position) → extra loss in dB."""

    __slots__ = ()

    @abc.abstractmethod
    def extra_loss_db(self, tx_pos: Vec2, rx_pos: Vec2) -> float:
        """Additional attenuation for this link geometry (≥ 0)."""

    def extra_loss_db_batch(
        self, tx_pos: Vec2, rx_xs: np.ndarray, rx_ys: np.ndarray
    ) -> np.ndarray:
        """Extra loss toward a whole candidate set (bit-identical map).

        Segment/footprint tests don't vectorize profitably for the
        handful of buildings the scenarios model, so the default loops;
        :class:`NoObstruction` short-circuits to zeros.
        """
        out = np.empty(rx_xs.shape[0], dtype=np.float64)
        xs = rx_xs.tolist()
        ys = rx_ys.tolist()
        for i in range(len(xs)):
            out[i] = self.extra_loss_db(tx_pos, Vec2(xs[i], ys[i]))
        return out


class NoObstruction(ObstructionModel):
    """Open field — no extra loss."""

    __slots__ = ()

    def extra_loss_db(self, tx_pos: Vec2, rx_pos: Vec2) -> float:
        return 0.0

    def extra_loss_db_batch(
        self, tx_pos: Vec2, rx_xs: np.ndarray, rx_ys: np.ndarray
    ) -> np.ndarray:
        return np.zeros(rx_xs.shape[0], dtype=np.float64)


class BuildingObstruction(ObstructionModel):
    """Fixed per-building penetration loss.

    Parameters
    ----------
    buildings:
        Building footprints.
    loss_per_building_db:
        Penalty per crossed footprint (urban masonry: 20–35 dB).
    max_buildings:
        Crossings counted at most this many times.
    """

    __slots__ = ("buildings", "loss_per_building_db", "max_buildings",)

    def __init__(
        self,
        buildings: Sequence[AxisRect],
        *,
        loss_per_building_db: float = 28.0,
        max_buildings: int = 2,
    ) -> None:
        if loss_per_building_db < 0.0:
            raise RadioError("building loss must be >= 0 dB")
        if max_buildings < 1:
            raise RadioError("max_buildings must be >= 1")
        self.buildings = tuple(buildings)
        self.loss_per_building_db = loss_per_building_db
        self.max_buildings = max_buildings

    def extra_loss_db(self, tx_pos: Vec2, rx_pos: Vec2) -> float:
        crossed = 0
        for building in self.buildings:
            if building.intersects_segment(tx_pos, rx_pos):
                crossed += 1
                if crossed >= self.max_buildings:
                    break
        return crossed * self.loss_per_building_db
