"""802.11 rate set: modulation, coding and BER curves.

The paper transmits everything at 1 Mb/s ("802.11g at 1Mbps" — i.e. the
DSSS basic rate used for maximum range), but the rate-sweep extension
experiment (§6 future work: "allow to increment the bit rate used by the
APs") needs the full DSSS + OFDM ladder, so all of it is here.

BER formulae follow the standard textbook approximations (Goldsmith,
*Wireless Communications*; the ns-3 ``YansErrorRateModel`` lineage):

* DBPSK (1 Mb/s):        ``BER = ½ exp(-γ)``
* DQPSK (2 Mb/s):        Marcum-Q based; approximated ``½ exp(-γ/2)``-style
* CCK (5.5/11 Mb/s):     empirical approximations
* OFDM BPSK/QAM:         ``Q``-function expressions with coding gain folded
                          in via a simple hard-decision Viterbi bound.

Exact waveform-level accuracy is *not* required: what matters for the
reproduction is a smooth, monotone SNR→PER curve per rate with realistic
relative thresholds (≈ -94 dBm sensitivity at 1 Mb/s down to ≈ -74 dBm at
54 Mb/s for 1000-byte frames).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import RadioError
from repro.radio.keyed import libm_map
from repro.units import MBPS


class PhyScheme(enum.Enum):
    """PHY family a rate belongs to (affects preamble timing and bandwidth)."""

    DSSS = "dsss"
    OFDM = "ofdm"


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def _ber_dbpsk(snr_linear: float) -> float:
    return 0.5 * math.exp(-snr_linear)


def _ber_dqpsk(snr_linear: float) -> float:
    # Standard tight approximation for differential QPSK.
    return _q_function(math.sqrt(1.172 * snr_linear))


def _ber_cck(snr_linear: float, spreading_gain: float) -> float:
    # CCK approximated as QPSK with reduced spreading gain.
    return _q_function(math.sqrt(max(snr_linear * spreading_gain, 0.0)))


def _ber_mqam(snr_linear: float, m: int) -> float:
    """Gray-coded square M-QAM bit error rate."""
    k = math.log2(m)
    arg = math.sqrt(3.0 * snr_linear / (m - 1.0))
    return (4.0 / k) * (1.0 - 1.0 / math.sqrt(m)) * _q_function(arg)


def _ber_bpsk(snr_linear: float) -> float:
    return _q_function(math.sqrt(2.0 * snr_linear))


def _ber_qpsk(snr_linear: float) -> float:
    return _q_function(math.sqrt(snr_linear))


@dataclass(slots=True, frozen=True)
class WifiRate:
    """One entry of the 802.11 rate ladder.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"dsss-1"`` or ``"ofdm-54"``.
    bitrate_bps:
        Data bit rate.
    scheme:
        DSSS or OFDM (selects preamble/header timing in the MAC).
    code_rate:
        Convolutional code rate for OFDM (1.0 for uncoded DSSS).
    """

    name: str
    bitrate_bps: float
    scheme: PhyScheme
    code_rate: float = 1.0

    def bit_error_rate(self, snr_db: float) -> float:
        """Raw bit error probability at the given *post-processing* SNR.

        For DSSS the processing (spreading) gain is included here; the
        caller provides SNR over the full channel bandwidth.
        """
        snr = 10.0 ** (snr_db / 10.0)
        name = self.name
        if name == "dsss-1":
            # 11-chip Barker spreading: ~10.4 dB processing gain.
            return _ber_dbpsk(snr * 11.0)
        if name == "dsss-2":
            return _ber_dqpsk(snr * 5.5)
        if name == "dsss-5.5":
            return _ber_cck(snr, 2.0)
        if name == "dsss-11":
            return _ber_cck(snr, 1.0)
        if name == "ofdm-6":
            return _coded_ber(_ber_bpsk(snr), self.code_rate)
        if name == "ofdm-9":
            return _coded_ber(_ber_bpsk(snr), self.code_rate)
        if name == "ofdm-12":
            return _coded_ber(_ber_qpsk(snr), self.code_rate)
        if name == "ofdm-18":
            return _coded_ber(_ber_qpsk(snr), self.code_rate)
        if name == "ofdm-24":
            return _coded_ber(_ber_mqam(snr, 16), self.code_rate)
        if name == "ofdm-36":
            return _coded_ber(_ber_mqam(snr, 16), self.code_rate)
        if name == "ofdm-48":
            return _coded_ber(_ber_mqam(snr, 64), self.code_rate)
        if name == "ofdm-54":
            return _coded_ber(_ber_mqam(snr, 64), self.code_rate)
        raise RadioError(f"unknown rate {name!r}")

    def bit_error_rate_batch(self, snr_db: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bit_error_rate`, bit-identical per lane.

        One rate serves a whole broadcast's arrivals, so the per-rate
        branch is taken once; the transcendentals (``pow``, ``exp``,
        ``erfc``) go through :func:`repro.radio.keyed.libm_map` to match
        the scalar libm results exactly, everything else is plain
        elementwise float64 in the scalar operation order.
        """
        snr = libm_map(_pow10, snr_db / 10.0)
        name = self.name
        if name == "dsss-1":
            return 0.5 * libm_map(math.exp, -(snr * 11.0))
        if name == "dsss-2":
            return _q_batch(np.sqrt(1.172 * (snr * 5.5)))
        if name == "dsss-5.5":
            return _q_batch(np.sqrt(np.maximum(snr * 2.0, 0.0)))
        if name == "dsss-11":
            return _q_batch(np.sqrt(np.maximum(snr * 1.0, 0.0)))
        if name in ("ofdm-6", "ofdm-9"):
            return _coded_ber_batch(_q_batch(np.sqrt(2.0 * snr)), self.code_rate)
        if name in ("ofdm-12", "ofdm-18"):
            return _coded_ber_batch(_q_batch(np.sqrt(snr)), self.code_rate)
        if name in ("ofdm-24", "ofdm-36"):
            return _coded_ber_batch(_ber_mqam_batch(snr, 16), self.code_rate)
        if name in ("ofdm-48", "ofdm-54"):
            return _coded_ber_batch(_ber_mqam_batch(snr, 64), self.code_rate)
        raise RadioError(f"unknown rate {name!r}")


def _pow10(value: float) -> float:
    return 10.0 ** value


def _q_batch(x: np.ndarray) -> np.ndarray:
    return 0.5 * libm_map(math.erfc, x / math.sqrt(2.0))


def _ber_mqam_batch(snr_linear: np.ndarray, m: int) -> np.ndarray:
    k = math.log2(m)
    arg = np.sqrt(3.0 * snr_linear / (m - 1.0))
    return (4.0 / k) * (1.0 - 1.0 / math.sqrt(m)) * _q_batch(arg)


def _coded_ber_batch(raw_ber: np.ndarray, code_rate: float) -> np.ndarray:
    raw_ber = np.minimum(np.maximum(raw_ber, 0.0), 0.5)
    free_distance_gain = {0.5: 5.0, 2.0 / 3.0: 3.0, 0.75: 2.5}.get(round(code_rate, 4), 2.5)
    coded = 0.5 * libm_map(lambda v: v ** free_distance_gain, 2.0 * raw_ber)
    return np.minimum(coded, raw_ber)


def _coded_ber(raw_ber: float, code_rate: float) -> float:
    """Effective post-Viterbi BER via a crude hard-decision union bound.

    Stronger codes (lower rate) give steeper waterfalls; the exponent
    captures the free-distance advantage well enough for shape studies.
    """
    raw_ber = min(max(raw_ber, 0.0), 0.5)
    free_distance_gain = {0.5: 5.0, 2.0 / 3.0: 3.0, 0.75: 2.5}.get(round(code_rate, 4), 2.5)
    # P_coded ≈ (2 * P_raw)^gain / 2 — clamps to raw BER when raw is high.
    coded = 0.5 * (2.0 * raw_ber) ** free_distance_gain
    return min(coded, raw_ber)


DSSS_RATES: tuple[WifiRate, ...] = (
    WifiRate("dsss-1", 1 * MBPS, PhyScheme.DSSS),
    WifiRate("dsss-2", 2 * MBPS, PhyScheme.DSSS),
    WifiRate("dsss-5.5", 5.5 * MBPS, PhyScheme.DSSS),
    WifiRate("dsss-11", 11 * MBPS, PhyScheme.DSSS),
)

OFDM_RATES: tuple[WifiRate, ...] = (
    WifiRate("ofdm-6", 6 * MBPS, PhyScheme.OFDM, 0.5),
    WifiRate("ofdm-9", 9 * MBPS, PhyScheme.OFDM, 0.75),
    WifiRate("ofdm-12", 12 * MBPS, PhyScheme.OFDM, 0.5),
    WifiRate("ofdm-18", 18 * MBPS, PhyScheme.OFDM, 0.75),
    WifiRate("ofdm-24", 24 * MBPS, PhyScheme.OFDM, 0.5),
    WifiRate("ofdm-36", 36 * MBPS, PhyScheme.OFDM, 0.75),
    WifiRate("ofdm-48", 48 * MBPS, PhyScheme.OFDM, 2.0 / 3.0),
    WifiRate("ofdm-54", 54 * MBPS, PhyScheme.OFDM, 0.75),
)

_ALL_RATES: dict[str, WifiRate] = {r.name: r for r in DSSS_RATES + OFDM_RATES}


def rate_by_name(name: str) -> WifiRate:
    """Look up a rate by its label (e.g. ``"dsss-1"``).

    Raises
    ------
    RadioError
        If the name is not in the rate ladder.
    """
    try:
        return _ALL_RATES[name]
    except KeyError:
        raise RadioError(
            f"unknown rate {name!r}; known: {sorted(_ALL_RATES)}"
        ) from None
