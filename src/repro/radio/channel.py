"""The channel façade queried by the MAC's shared medium.

For every transmitted frame and every potential receiver the
:class:`Channel` combines path loss, correlated shadowing and per-frame
fading into one received-power figure, from which the medium derives
carrier-sense levels, SINR and frame-error draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.geom import Vec2
from repro.radio.error_models import frame_error_rate
from repro.radio.fading import FadingModel, NoFading
from repro.radio.modulation import WifiRate
from repro.radio.obstruction import NoObstruction, ObstructionModel
from repro.radio.pathloss import LogDistancePathLoss, PathLossModel
from repro.radio.shadowing import NoShadowing, ShadowingModel


@dataclass(frozen=True)
class LinkSample:
    """One channel realisation for a frame on a link.

    Attributes
    ----------
    rx_power_dbm:
        Received signal power (after path loss, shadowing and fading).
    mean_rx_power_dbm:
        Received power *without* the per-frame fading draw — used for
        carrier sensing, which averages over small-scale fading.
    distance_m:
        Link distance at transmission time.
    """

    rx_power_dbm: float
    mean_rx_power_dbm: float
    distance_m: float


class Channel:
    """Combines propagation effects into per-frame link samples.

    Parameters
    ----------
    pathloss:
        Large-scale model (shared by all links).
    shadowing:
        Spatially-correlated medium-scale model (stateful per link).
    fading:
        Per-frame small-scale model.
    obstruction:
        Geometry-dependent extra loss (building blockage).
    rng:
        Stream for the frame-error Bernoulli draws.
    """

    def __init__(
        self,
        *,
        pathloss: PathLossModel | None = None,
        shadowing: ShadowingModel | None = None,
        fading: FadingModel | None = None,
        obstruction: ObstructionModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.pathloss = pathloss if pathloss is not None else LogDistancePathLoss()
        self.shadowing = shadowing if shadowing is not None else NoShadowing()
        self.fading = fading if fading is not None else NoFading()
        self.obstruction = obstruction if obstruction is not None else NoObstruction()
        self._rng = rng if rng is not None else np.random.default_rng()

    @staticmethod
    def link_key(node_a: Hashable, node_b: Hashable) -> tuple[Hashable, Hashable]:
        """Canonical (order-independent) link identifier for reciprocity."""
        return (node_a, node_b) if repr(node_a) <= repr(node_b) else (node_b, node_a)

    def sample(
        self,
        tx_id: Hashable,
        rx_id: Hashable,
        tx_pos: Vec2,
        rx_pos: Vec2,
        tx_power_dbm: float,
        rx_gain_db: float = 0.0,
        time: float = 0.0,
    ) -> LinkSample:
        """Draw the channel realisation for one frame on one link."""
        distance = tx_pos.distance_to(rx_pos)
        loss = self.pathloss.loss_db(distance)
        loss += self.obstruction.extra_loss_db(tx_pos, rx_pos)
        shadow = self.shadowing.sample_db(
            self.link_key(tx_id, rx_id), tx_pos, rx_pos, time
        )
        mean_power = tx_power_dbm + rx_gain_db - loss - shadow
        fade = self.fading.sample_db()
        return LinkSample(
            rx_power_dbm=mean_power + fade,
            mean_rx_power_dbm=mean_power,
            distance_m=distance,
        )

    def frame_delivered(
        self,
        sample: LinkSample,
        rate: WifiRate,
        frame: object,
        noise_plus_interference_dbm: float,
        rx_id: Hashable | None = None,
    ) -> bool:
        """Bernoulli frame-delivery outcome given the link sample and SINR.

        *frame* (anything with ``size_bytes``) and *rx_id* are passed so
        subclasses can implement scripted per-frame/per-receiver outcomes
        for deterministic protocol tests.
        """
        sinr_db = sample.rx_power_dbm - noise_plus_interference_dbm
        size_bytes = getattr(frame, "size_bytes")
        fer = frame_error_rate(rate, sinr_db, size_bytes)
        return bool(self._rng.random() >= fer)

    def reset(self) -> None:
        """Clear per-link shadowing state (between rounds)."""
        self.shadowing.reset()
