"""The channel façade queried by the MAC's shared medium.

For every transmitted frame and every potential receiver the
:class:`Channel` combines path loss, correlated shadowing and per-frame
fading into one received-power figure, from which the medium derives
carrier-sense levels, SINR and frame-error draws.

The deterministic part of the link budget (distance, path loss,
obstruction) is exposed separately via :meth:`Channel.link_budget`, so
the medium can bound a receiver's best-case power — and cull hopeless
links — *before* any stochastic component is evaluated.  The stochastic
components (shadowing, fading) draw keyed randomness per
``(link, transmission)`` (see :mod:`repro.radio.keyed`), so a culled link
never perturbs another link's realisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.geom import Vec2
from repro.radio.error_models import frame_error_rate, frame_error_rate_batch
from repro.radio.fading import FadingModel, NoFading
from repro.radio.keyed import hypot_map, stable_hash64
from repro.radio.modulation import WifiRate
from repro.radio.obstruction import NoObstruction, ObstructionModel
from repro.radio.pathloss import LogDistancePathLoss, PathLossModel
from repro.radio.shadowing import NoShadowing, ShadowingModel


@dataclass(frozen=True, slots=True)
class LinkSample:
    """One channel realisation for a frame on a link.

    Attributes
    ----------
    rx_power_dbm:
        Received signal power (after path loss, shadowing and fading).
    mean_rx_power_dbm:
        Received power *without* the per-frame fading draw — used for
        carrier sensing, which averages over small-scale fading.
    distance_m:
        Link distance at transmission time.
    """

    rx_power_dbm: float
    mean_rx_power_dbm: float
    distance_m: float


class Channel:
    """Combines propagation effects into per-frame link samples.

    Parameters
    ----------
    pathloss:
        Large-scale model (shared by all links).
    shadowing:
        Spatially-correlated medium-scale model (stateful per link).
    fading:
        Per-frame small-scale model.
    obstruction:
        Geometry-dependent extra loss (building blockage).
    rng:
        Stream for the frame-error Bernoulli draws.
    """

    __slots__ = (
        "pathloss",
        "shadowing",
        "fading",
        "obstruction",
        "_rng",
        "_links",
    )

    def __init__(
        self,
        *,
        pathloss: PathLossModel | None = None,
        shadowing: ShadowingModel | None = None,
        fading: FadingModel | None = None,
        obstruction: ObstructionModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.pathloss = pathloss if pathloss is not None else LogDistancePathLoss()
        self.shadowing = shadowing if shadowing is not None else NoShadowing()
        self.fading = fading if fading is not None else NoFading()
        self.obstruction = obstruction if obstruction is not None else NoObstruction()
        # repro: lint-ok RPL101 (ad-hoc convenience fallback only; every scenario builder injects a RandomStreams-derived generator)
        self._rng = rng if rng is not None else np.random.default_rng()
        # (tx_id, rx_id) → (canonical link key, stable 64-bit link hash);
        # pure values, memoised off the per-frame hot path.
        self._links: dict[tuple[Hashable, Hashable], tuple[tuple, int]] = {}

    @staticmethod
    def link_key(node_a: Hashable, node_b: Hashable) -> tuple[Hashable, Hashable]:
        """Canonical (order-independent) link identifier for reciprocity."""
        return (node_a, node_b) if repr(node_a) <= repr(node_b) else (node_b, node_a)

    def _link(self, tx_id: Hashable, rx_id: Hashable) -> tuple[tuple, int]:
        cached = self._links.get((tx_id, rx_id))
        if cached is None:
            key = self.link_key(tx_id, rx_id)
            cached = (key, stable_hash64(key))
            self._links[(tx_id, rx_id)] = cached
        return cached

    # -- deterministic link budget -------------------------------------------

    def link_budget(self, tx_pos: Vec2, rx_pos: Vec2) -> tuple[float, float]:
        """``(distance_m, base_loss_db)`` — the deterministic budget part.

        ``base_loss_db`` is path loss plus obstruction; shadowing and
        fading are not included, so ``tx_power + rx_gain - base_loss_db``
        is the link's mean received power before any stochastic draw.
        """
        distance = tx_pos.distance_to(rx_pos)
        loss = self.pathloss.loss_db(distance)
        loss += self.obstruction.extra_loss_db(tx_pos, rx_pos)
        return distance, loss

    def link_budget_batch(
        self, tx_pos: Vec2, rx_xs: np.ndarray, rx_ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`link_budget` for a whole candidate set, bit-identically.

        Returns ``(distances_m, base_losses_db)`` arrays aligned with the
        candidate order.  Distances use the same libm ``hypot`` as
        :meth:`Vec2.distance_to`, losses the models' pinned batch paths.
        Subclasses that override :meth:`link_budget` (scripted physics in
        protocol tests) are honoured by falling back to the scalar call
        per candidate.
        """
        if type(self).link_budget is not Channel.link_budget:
            pairs = [
                self.link_budget(tx_pos, Vec2(x, y))
                for x, y in zip(rx_xs.tolist(), rx_ys.tolist())
            ]
            return (
                np.array([d for d, _ in pairs]),
                np.array([loss for _, loss in pairs]),
            )
        distances = hypot_map(tx_pos.x - rx_xs, tx_pos.y - rx_ys)
        losses = self.pathloss.loss_db_batch(distances)
        losses = losses + self.obstruction.extra_loss_db_batch(tx_pos, rx_xs, rx_ys)
        return distances, losses

    def shadow_headroom_db(self) -> float:
        """Worst-case positive shadowing excursion (``inf`` if unbounded)."""
        return self.shadowing.max_boost_db()

    def max_range_m(self, max_loss_db: float) -> float:
        """Largest distance whose *path* loss stays within *max_loss_db*.

        Obstruction only ever adds loss, so this is a conservative
        (never-too-small) radius for the medium's neighbor index.
        """
        return self.pathloss.range_for_loss(max_loss_db)

    # -- stochastic realisation ----------------------------------------------

    def sample(
        self,
        tx_id: Hashable,
        rx_id: Hashable,
        tx_pos: Vec2,
        rx_pos: Vec2,
        tx_power_dbm: float,
        rx_gain_db: float = 0.0,
        time: float = 0.0,
        *,
        tx_seq: int | None = None,
        budget: tuple[float, float] | None = None,
    ) -> LinkSample:
        """Draw the channel realisation for one frame on one link.

        ``tx_seq`` is the medium's per-transmission counter: when given,
        the fading draw is keyed by ``(link, tx_seq)`` and the sample is
        a pure function of its arguments.  Without it, fading falls back
        to the model's sequential counter (legacy single-link callers).
        ``budget`` forwards a precomputed :meth:`link_budget` so the
        deterministic part is not evaluated twice.
        """
        if budget is None:
            budget = self.link_budget(tx_pos, rx_pos)
        distance, loss = budget
        link, link_hash = self._link(tx_id, rx_id)
        shadow = self.shadowing.sample_db(link, tx_pos, rx_pos, time)
        mean_power = tx_power_dbm + rx_gain_db - loss - shadow
        fade = self.fading.sample_db(None if tx_seq is None else (link_hash, tx_seq))
        return LinkSample(
            rx_power_dbm=mean_power + fade,
            mean_rx_power_dbm=mean_power,
            distance_m=distance,
        )

    def sample_batch(
        self,
        tx_id: Hashable,
        rx_ids: list[Hashable],
        tx_pos: Vec2,
        rx_xs: np.ndarray,
        rx_ys: np.ndarray,
        tx_power_dbm: float,
        rx_gains_db: np.ndarray,
        time: float,
        tx_seq: int,
        budget: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw one transmission's realisation toward many receivers.

        The batch counterpart of :meth:`sample`: returns
        ``(rx_power_dbm, mean_rx_power_dbm)`` arrays aligned with
        *rx_ids*, each lane bit-identical to the scalar call for that
        link (the keyed draws make the decomposition exact).  *budget*
        forwards the :meth:`link_budget_batch` result.  Subclasses that
        override :meth:`sample` (scripted realisations) are honoured by
        falling back to the scalar call per candidate.
        """
        distances, losses = budget
        if type(self).sample is not Channel.sample:
            rx_power = np.empty(len(rx_ids))
            mean_power = np.empty(len(rx_ids))
            for i, rx_id in enumerate(rx_ids):
                link_sample = self.sample(
                    tx_id,
                    rx_id,
                    tx_pos,
                    Vec2(float(rx_xs[i]), float(rx_ys[i])),
                    tx_power_dbm,
                    float(rx_gains_db[i]),
                    time=time,
                    tx_seq=tx_seq,
                    budget=(float(distances[i]), float(losses[i])),
                )
                rx_power[i] = link_sample.rx_power_dbm
                mean_power[i] = link_sample.mean_rx_power_dbm
            return rx_power, mean_power
        links: list[tuple] = []
        hash_list: list[int] = []
        cache_get = self._links.get
        for rx_id in rx_ids:
            cached = cache_get((tx_id, rx_id))
            if cached is None:
                cached = self._link(tx_id, rx_id)
            links.append(cached[0])
            hash_list.append(cached[1])
        link_hashes = np.array(hash_list, dtype=np.uint64)
        shadow = self.shadowing.sample_db_batch(
            links, link_hashes, tx_pos, rx_xs, rx_ys, distances, time
        )
        mean_power = tx_power_dbm + rx_gains_db - losses - shadow
        fade = self.fading.sample_db_batch(link_hashes, tx_seq)
        return mean_power + fade, mean_power

    def sample_multibatch(
        self,
        tx_ids: list[Hashable],
        rx_ids: list[Hashable],
        tx_xs: np.ndarray,
        tx_ys: np.ndarray,
        rx_xs: np.ndarray,
        rx_ys: np.ndarray,
        tx_powers_dbm: np.ndarray,
        rx_gains_db: np.ndarray,
        time: float,
        tx_seqs: np.ndarray,
        budget: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw realisations for lanes spanning *several* transmissions.

        The cross-broadcast counterpart of :meth:`sample_batch`: every
        per-transmission scalar (transmitter id/position/power and
        ``tx_seq``) becomes a per-lane array, so candidate lanes of all
        same-instant broadcasts evaluate in one keyed pass.  Each lane
        stays bit-identical to the scalar :meth:`sample` call because
        every stochastic component is a pure function of its lane key.
        Subclasses that override :meth:`sample` are honoured by falling
        back to the scalar call per lane.
        """
        distances, losses = budget
        n = len(rx_ids)
        if type(self).sample is not Channel.sample:
            rx_power = np.empty(n)
            mean_power = np.empty(n)
            for i, rx_id in enumerate(rx_ids):
                link_sample = self.sample(
                    tx_ids[i],
                    rx_id,
                    Vec2(float(tx_xs[i]), float(tx_ys[i])),
                    Vec2(float(rx_xs[i]), float(rx_ys[i])),
                    float(tx_powers_dbm[i]),
                    float(rx_gains_db[i]),
                    time=time,
                    tx_seq=int(tx_seqs[i]),
                    budget=(float(distances[i]), float(losses[i])),
                )
                rx_power[i] = link_sample.rx_power_dbm
                mean_power[i] = link_sample.mean_rx_power_dbm
            return rx_power, mean_power
        links: list[tuple] = []
        hash_list: list[int] = []
        cache_get = self._links.get
        for tx_id, rx_id in zip(tx_ids, rx_ids):
            cached = cache_get((tx_id, rx_id))
            if cached is None:
                cached = self._link(tx_id, rx_id)
            links.append(cached[0])
            hash_list.append(cached[1])
        link_hashes = np.array(hash_list, dtype=np.uint64)
        shadow = self.shadowing.sample_db_multibatch(
            links, link_hashes, tx_xs, tx_ys, rx_xs, rx_ys, distances, time
        )
        mean_power = tx_powers_dbm + rx_gains_db - losses - shadow
        fade = self.fading.sample_db_batch(link_hashes, tx_seqs)
        return mean_power + fade, mean_power

    def frame_delivered(
        self,
        sample: LinkSample,
        rate: WifiRate,
        frame: object,
        noise_plus_interference_dbm: float,
        rx_id: Hashable | None = None,
    ) -> bool:
        """Bernoulli frame-delivery outcome given the link sample and SINR.

        *frame* (anything with ``size_bytes``) and *rx_id* are passed so
        subclasses can implement scripted per-frame/per-receiver outcomes
        for deterministic protocol tests.
        """
        sinr_db = sample.rx_power_dbm - noise_plus_interference_dbm
        size_bytes = getattr(frame, "size_bytes")
        fer = frame_error_rate(rate, sinr_db, size_bytes)
        return bool(self._rng.random() >= fer)

    def frames_delivered_batch(
        self,
        samples: list[LinkSample],
        rate: WifiRate,
        frame: object,
        noise_plus_interference_dbm: np.ndarray,
        rx_ids: list[Hashable],
    ) -> list[bool]:
        """One broadcast's delivery outcomes, in arrival order.

        The default delegates to :meth:`frame_delivered` per arrival, so
        subclasses that script outcomes for protocol tests keep working
        unchanged.  The medium calls this from the batched frame-end
        path; the base implementation below vectorizes the FER curve
        while drawing the Bernoulli variates sequentially in the same
        order as the scalar path (nothing else consumes this stream
        inside a frame-end event, so the draw sequence is identical).
        """
        if type(self).frame_delivered is not Channel.frame_delivered:
            return [
                self.frame_delivered(
                    sample, rate, frame, float(npi), rx_id=rx_id
                )
                for sample, npi, rx_id in zip(
                    samples, noise_plus_interference_dbm.tolist(), rx_ids
                )
            ]
        sinr_db = (
            np.array([sample.rx_power_dbm for sample in samples])
            - noise_plus_interference_dbm
        )
        fers = frame_error_rate_batch(
            rate, sinr_db, getattr(frame, "size_bytes")
        )
        random = self._rng.random
        return [bool(random() >= fer) for fer in fers.tolist()]

    def delivery_draws(self, fers: list[float]) -> list[bool]:
        """Sequential Bernoulli delivery draws for precomputed FERs.

        The medium's coalesced frame-end pass computes the (pure) FER
        values itself — bucketed per ``(rate, frame size)`` across all
        broadcasts ending at one instant — and calls this once with the
        lanes in scalar event order, so the shared Bernoulli stream
        advances exactly as the per-broadcast paths would.  Only used
        when :meth:`frame_delivered` is not overridden (scripted
        channels keep their per-arrival calls).
        """
        random = self._rng.random
        return [bool(random() >= fer) for fer in fers]

    def reset(self) -> None:
        """Clear per-link shadowing state (between rounds)."""
        self.shadowing.reset()
