"""Per-node radio parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.radio.modulation import WifiRate, rate_by_name
from repro.units import thermal_noise_dbm


@dataclass(slots=True, frozen=True)
class RadioConfig:
    """Static PHY parameters of one radio.

    Defaults approximate the testbed hardware: a consumer 802.11b/g card
    (15 dBm EIRP, 22 MHz DSSS bandwidth, ~5 dB noise figure) running the
    1 Mb/s basic rate with carrier sensing.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power including antenna gain (EIRP).
    antenna_gain_db:
        Extra receive-side gain (the AP's external Proxim antenna).
    frequency_hz:
        Carrier frequency.
    bandwidth_hz:
        Receiver noise bandwidth (22 MHz DSSS / 20 MHz OFDM).
    noise_figure_db:
        Receiver noise figure.
    rate:
        Default :class:`WifiRate` used for transmissions.
    carrier_sense_threshold_dbm:
        Energy level above which the medium is sensed busy.
    capture_threshold_db:
        SINR margin at which the stronger of two overlapping frames
        survives (classic 802.11 capture model).
    """

    tx_power_dbm: float = 15.0
    antenna_gain_db: float = 0.0
    frequency_hz: float = 2.412e9
    bandwidth_hz: float = 22e6
    noise_figure_db: float = 5.0
    rate: WifiRate = field(default_factory=lambda: rate_by_name("dsss-1"))
    carrier_sense_threshold_dbm: float = -96.0
    capture_threshold_db: float = 10.0
    _noise_floor_dbm: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0.0:
            raise ConfigurationError("bandwidth must be positive")
        if self.noise_figure_db < 0.0:
            raise ConfigurationError("noise figure must be >= 0 dB")
        # Precomputed: read once per received arrival on the medium hot path.
        object.__setattr__(
            self,
            "_noise_floor_dbm",
            thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db),
        )

    @property
    def noise_floor_dbm(self) -> float:
        """Thermal noise power in the receiver bandwidth plus noise figure."""
        return self._noise_floor_dbm
