"""Radio / PHY substrate.

The paper's testbed used real 802.11b/g radios in an urban street.  This
package substitutes a statistical PHY with the same observable structure:

* large-scale **path loss** (:mod:`repro.radio.pathloss`) — reception decays
  with distance, defining the AP *coverage area* and its soft edges;
* **shadowing** (:mod:`repro.radio.shadowing`) — log-normal, spatially
  correlated (Gudmundson model), so nearby packets share fate but different
  cars see *different* obstructions — exactly the diversity C-ARQ exploits;
* small-scale **fading** (:mod:`repro.radio.fading`) — per-frame Rayleigh /
  Rician variation;
* **modulation & coding** (:mod:`repro.radio.modulation`,
  :mod:`repro.radio.error_models`) — SNR → BER → frame-error-rate curves for
  the 802.11 DSSS and OFDM rate sets;
* the :class:`~repro.radio.channel.Channel` façade that the MAC's shared
  medium queries per frame.
"""

from repro.radio.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
    TwoRayGroundPathLoss,
)
from repro.radio.shadowing import (
    CompositeShadowing,
    GudmundsonShadowing,
    NoShadowing,
    ShadowingModel,
    TemporalTxShadowing,
)
from repro.radio.fading import FadingModel, NoFading, RayleighFading, RicianFading
from repro.radio.obstruction import (
    BuildingObstruction,
    NoObstruction,
    ObstructionModel,
)
from repro.radio.modulation import WifiRate, DSSS_RATES, OFDM_RATES, rate_by_name
from repro.radio.error_models import frame_error_rate, frame_success_probability
from repro.radio.phy import RadioConfig
from repro.radio.channel import Channel, LinkSample

__all__ = [
    "BuildingObstruction",
    "Channel",
    "CompositeShadowing",
    "DSSS_RATES",
    "FadingModel",
    "FreeSpacePathLoss",
    "frame_error_rate",
    "frame_success_probability",
    "GudmundsonShadowing",
    "LinkSample",
    "LogDistancePathLoss",
    "NoFading",
    "NoObstruction",
    "NoShadowing",
    "OFDM_RATES",
    "ObstructionModel",
    "PathLossModel",
    "TemporalTxShadowing",
    "RadioConfig",
    "RayleighFading",
    "RicianFading",
    "ShadowingModel",
    "TwoRayGroundPathLoss",
    "WifiRate",
    "rate_by_name",
]
