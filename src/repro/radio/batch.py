"""The vectorized batch channel kernel.

:func:`broadcast_samples` evaluates one transmission against its whole
candidate receiver set in a handful of NumPy operations — deterministic
link budgets, the reachability cull, Gudmundson lattice shadowing, keyed
fading and the sensitivity filter — instead of a per-receiver Python
round-trip through the channel stack.  It exists because PR 3's keyed
counter-based randomness made every stochastic draw a *pure function* of
``(link, transmission)``: with no hidden stream state, the candidate set
can be evaluated in any grouping, so batching is free of semantic risk
and the kernel is pinned **bit-identical** to the scalar reference path
(``tests/scenarios/test_fast_path_ab.py``,
``tests/radio/test_batch_parity.py``).

Exactness ground rules (shared by every ``*_batch`` method downstream):

* float64 arithmetic (`+ - * /`, comparisons, ``np.sqrt``/``np.floor``/
  ``minimum``/``maximum``) is evaluated elementwise in the scalar
  operation order, which IEEE-754 makes bit-identical;
* transcendentals (``log``/``log10``/``hypot``/``pow``/``cos``/``sin``/
  ``exp``/``erfc``/``log1p``) go through
  :func:`repro.radio.keyed.libm_map` because NumPy's SIMD kernels can
  differ from libm in the last ulp (hardware-dependent dispatch);
* splitmix64 runs on uint64 lanes with explicit carry handling where the
  scalar code's unmasked Python ints grow a 65th bit
  (:func:`repro.radio.keyed._finish_mix_u64`).

The medium calls this once per transmission; everything here is
allocation-lean but *not* stateful — all memoisation lives in the models
themselves, keyed by pure values.
"""

from __future__ import annotations

import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.geom import Vec2
    from repro.radio.channel import Channel


class BroadcastBatch(typing.NamedTuple):
    """Per-candidate outcome of one batched broadcast evaluation.

    ``kept`` holds the indices (into the candidate arrays handed to
    :func:`broadcast_samples`, ascending) of receivers that passed both
    the reachability bound and the sensitivity filter; the three float
    arrays are aligned with it.
    """

    kept: np.ndarray
    rx_power_dbm: np.ndarray
    mean_rx_power_dbm: np.ndarray
    distance_m: np.ndarray


_EMPTY = BroadcastBatch(
    np.empty(0, dtype=np.intp),
    np.empty(0),
    np.empty(0),
    np.empty(0),
)


class LaneScratch:
    """Preallocated gather buffers for the medium's candidate-lane tables.

    The per-broadcast gather used to build fresh ``np.array``/``np.empty``
    arrays for every transmission; with thousands of small broadcasts per
    round that small-array churn dominates the kernel's profile.  The
    medium instead fills (geometrically grown) scratch columns and hands
    ``[:n]`` views to the kernels — safe because every consumer either
    reads the lanes synchronously or copies through fancy indexing before
    the next gather reuses the buffers.
    """

    __slots__ = (
        "rx_xs",
        "rx_ys",
        "rx_gains",
        "rx_floors",
        "tx_xs",
        "tx_ys",
        "tx_powers",
        "tx_seqs",
        "_capacity",
    )

    def __init__(self, capacity: int = 64) -> None:
        self._capacity = 0
        self.reserve(capacity)

    def reserve(self, n: int) -> None:
        """Ensure every column holds at least *n* lanes."""
        if n <= self._capacity:
            return
        capacity = max(64, 1 << (n - 1).bit_length())
        self.rx_xs = np.empty(capacity, dtype=np.float64)
        self.rx_ys = np.empty(capacity, dtype=np.float64)
        self.rx_gains = np.empty(capacity, dtype=np.float64)
        self.rx_floors = np.empty(capacity, dtype=np.float64)
        self.tx_xs = np.empty(capacity, dtype=np.float64)
        self.tx_ys = np.empty(capacity, dtype=np.float64)
        self.tx_powers = np.empty(capacity, dtype=np.float64)
        self.tx_seqs = np.empty(capacity, dtype=np.int64)
        self._capacity = capacity


def broadcast_samples(
    channel: "Channel",
    tx_id: typing.Hashable,
    rx_ids: list[typing.Hashable],
    tx_pos: "Vec2",
    rx_xs: np.ndarray,
    rx_ys: np.ndarray,
    rx_gains_db: np.ndarray,
    rx_thresholds_dbm: np.ndarray,
    tx_power_dbm: float,
    headroom_db: float,
    time: float,
    tx_seq: int,
) -> BroadcastBatch:
    """Evaluate one broadcast against its whole candidate set.

    Mirrors the medium's scalar per-receiver pipeline exactly:

    1. deterministic link budget (path loss + obstruction) per candidate;
    2. reachability bound ``tx_power + gain - loss + headroom ≥
       threshold`` — lanes failing it are culled without consuming any
       stochastic draw (keyed randomness makes that safe);
    3. shadowing + fading realisation for the survivors;
    4. sensitivity filter ``mean_rx_power ≥ threshold``.

    The scalar exhaustive path also *samples* bound-failing links before
    discarding them; because every draw is pure and side-effect-free,
    skipping those samples here changes nothing — the A/B pins prove it.
    """
    budget = channel.link_budget_batch(tx_pos, rx_xs, rx_ys)
    distances, losses = budget
    reachable = tx_power_dbm + rx_gains_db - losses + headroom_db >= rx_thresholds_dbm
    idx = np.flatnonzero(reachable)
    if idx.size == 0:
        return _EMPTY
    sub_ids = [rx_ids[i] for i in idx.tolist()]
    rx_power, mean_power = channel.sample_batch(
        tx_id,
        sub_ids,
        tx_pos,
        rx_xs[idx],
        rx_ys[idx],
        tx_power_dbm,
        rx_gains_db[idx],
        time,
        tx_seq,
        (distances[idx], losses[idx]),
    )
    keep = mean_power >= rx_thresholds_dbm[idx]
    kept = idx[keep]
    return BroadcastBatch(kept, rx_power[keep], mean_power[keep], distances[kept])
