"""Small-scale (per-frame) fading models.

Fading is sampled independently per frame: at vehicular speeds and 2.4 GHz
the channel coherence time (~ a few ms at 20 km/h) is shorter than the
5 pkt/s per-flow inter-packet gap, so consecutive frames of one flow see
independent small-scale realisations.  Temporal correlation across frames
is carried by the shadowing process instead.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import RadioError


class FadingModel(abc.ABC):
    """Interface: one power-gain sample (dB) per transmitted frame."""

    @abc.abstractmethod
    def sample_db(self) -> float:
        """A fading gain in dB (typically negative-mean)."""


class NoFading(FadingModel):
    """Deterministic zero fading — for unit tests and calibration."""

    def sample_db(self) -> float:
        return 0.0


class RayleighFading(FadingModel):
    """Rayleigh fading: no line-of-sight, power gain ~ Exp(1).

    Models the deep-urban segments of the loop where the AP is not visible.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def sample_db(self) -> float:
        gain = float(self._rng.exponential(1.0))
        # Clamp once-in-a-billion zero draws rather than propagating -inf dB.
        gain = max(gain, 1e-12)
        return 10.0 * math.log10(gain)


class RicianFading(FadingModel):
    """Rician fading with K-factor: partial line-of-sight.

    The amplitude is ``|sqrt(K/(K+1)) + CN(0, 1/(K+1))|`` so the mean power
    gain is 1 (0 dB).  ``K → 0`` degenerates to Rayleigh, ``K → ∞`` to no
    fading.  A K of 3–10 dB fits a street with the AP in view.
    """

    def __init__(self, rng: np.random.Generator, *, k_factor: float = 4.0) -> None:
        if k_factor < 0.0:
            raise RadioError(f"Rician K-factor must be >= 0, got {k_factor!r}")
        self._rng = rng
        self.k_factor = k_factor

    def sample_db(self) -> float:
        k = self.k_factor
        los = math.sqrt(k / (k + 1.0))
        scatter_sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        re = los + float(self._rng.normal(0.0, scatter_sigma))
        im = float(self._rng.normal(0.0, scatter_sigma))
        gain = re * re + im * im
        gain = max(gain, 1e-12)
        return 10.0 * math.log10(gain)
