"""Small-scale (per-frame) fading models.

Fading is sampled independently per frame: at vehicular speeds and 2.4 GHz
the channel coherence time (~ a few ms at 20 km/h) is shorter than the
5 pkt/s per-flow inter-packet gap, so consecutive frames of one flow see
independent small-scale realisations.  Temporal correlation across frames
is carried by the shadowing process instead.

Draws are *keyed* (see :mod:`repro.radio.keyed`): the channel passes a
``(link, transmission)`` key and the realisation is a pure function of
it, so the medium's reception fast path can skip out-of-range links
without perturbing any other link's fading sequence.  Calling
``sample_db()`` without a key falls back to an internal call counter,
which yields an ordinary i.i.d. sequence for statistics and tests.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import RadioError
from repro.radio.keyed import KeyedRandom, libm_map


class FadingModel(abc.ABC):
    """Interface: one power-gain sample (dB) per transmitted frame."""

    __slots__ = ()

    @abc.abstractmethod
    def sample_db(self, key: tuple[int, ...] | None = None) -> float:
        """A fading gain in dB (typically negative-mean) for *key*."""

    def sample_db_batch(
        self, link_hashes: np.ndarray, tx_seq: int | np.ndarray
    ) -> np.ndarray:
        """Fading for a batch of keyed lanes at once.

        Each lane draws for key ``(link_hash, tx_seq)`` — the keyed form
        the medium uses — and must be bit-identical to mapping
        :meth:`sample_db` over the hashes.  ``tx_seq`` is a scalar for
        one transmission's candidate set, or an aligned array when the
        medium coalesces lanes of several transmissions into one pass
        (the keyed models broadcast either form).  This fallback loops
        the scalar draw, so custom models stay exact on both shapes.
        """
        if isinstance(tx_seq, np.ndarray):
            seqs = tx_seq.tolist()
            return np.array(
                [
                    self.sample_db((int(h), int(seq)))
                    for h, seq in zip(link_hashes.tolist(), seqs)
                ],
                dtype=np.float64,
            )
        return np.array(
            [self.sample_db((int(h), tx_seq)) for h in link_hashes.tolist()],
            dtype=np.float64,
        )


class NoFading(FadingModel):
    """Deterministic zero fading — for unit tests and calibration."""

    __slots__ = ()

    def sample_db(self, key: tuple[int, ...] | None = None) -> float:
        return 0.0

    def sample_db_batch(self, link_hashes: np.ndarray, tx_seq: int) -> np.ndarray:
        return np.zeros(link_hashes.shape[0], dtype=np.float64)


class _KeyedFading(FadingModel):
    """Shared plumbing: keyed draws with a sequential-counter fallback."""

    __slots__ = ("_keyed", "_calls",)

    def __init__(self, rng: np.random.Generator) -> None:
        self._keyed = KeyedRandom.from_rng(rng)
        self._calls = 0

    def _key(self, key: tuple[int, ...] | None) -> tuple[int, ...]:
        if key is None:
            self._calls += 1
            return (self._calls,)
        return key


class RayleighFading(_KeyedFading):
    """Rayleigh fading: no line-of-sight, power gain ~ Exp(1).

    Models the deep-urban segments of the loop where the AP is not visible.
    """

    __slots__ = ()

    def sample_db(self, key: tuple[int, ...] | None = None) -> float:
        gain = self._keyed.exponential(*self._key(key))
        # Clamp astronomically deep draws rather than propagating -inf dB.
        gain = max(gain, 1e-12)
        return 10.0 * math.log10(gain)

    def sample_db_batch(self, link_hashes: np.ndarray, tx_seq: int) -> np.ndarray:
        n = link_hashes.shape[0]
        gain = self._keyed.exponential_batch([link_hashes, tx_seq], (n,))
        gain = np.maximum(gain, 1e-12)
        return 10.0 * libm_map(math.log10, gain)


class RicianFading(_KeyedFading):
    """Rician fading with K-factor: partial line-of-sight.

    The amplitude is ``|sqrt(K/(K+1)) + CN(0, 1/(K+1))|`` so the mean power
    gain is 1 (0 dB).  ``K → 0`` degenerates to Rayleigh, ``K → ∞`` to no
    fading.  A K of 3–10 dB fits a street with the AP in view.
    """

    __slots__ = ("k_factor", "_los", "_scatter_sigma",)

    def __init__(self, rng: np.random.Generator, *, k_factor: float = 4.0) -> None:
        if k_factor < 0.0:
            raise RadioError(f"Rician K-factor must be >= 0, got {k_factor!r}")
        super().__init__(rng)
        self.k_factor = k_factor
        self._los = math.sqrt(k_factor / (k_factor + 1.0))
        self._scatter_sigma = math.sqrt(1.0 / (2.0 * (k_factor + 1.0)))

    def sample_db(self, key: tuple[int, ...] | None = None) -> float:
        z_re, z_im = self._keyed.normal_pair(*self._key(key))
        re = self._los + self._scatter_sigma * z_re
        im = self._scatter_sigma * z_im
        gain = re * re + im * im
        gain = max(gain, 1e-12)
        return 10.0 * math.log10(gain)

    def sample_db_batch(self, link_hashes: np.ndarray, tx_seq: int) -> np.ndarray:
        n = link_hashes.shape[0]
        z_re, z_im = self._keyed.normal_pair_batch([link_hashes, tx_seq], (n,))
        re = self._los + self._scatter_sigma * z_re
        im = self._scatter_sigma * z_im
        gain = re * re + im * im
        gain = np.maximum(gain, 1e-12)
        return 10.0 * libm_map(math.log10, gain)
