"""Log-normal shadowing with Gudmundson spatial correlation.

Shadowing captures obstruction by buildings, parked cars and street
furniture.  Two properties matter for reproducing the paper:

1. **Temporal correlation** — consecutive packets on the *same* link share
   fate while the vehicle moves less than a decorrelation distance, which
   produces the burst losses visible in the per-packet reception curves
   (Figs 3–5).
2. **Link independence** — different cars behind different obstructions
   fade *independently*, which is precisely the spatial diversity that
   Cooperative ARQ converts into recovered packets.

Both models here realise their process from *keyed* randomness
(:mod:`repro.radio.keyed`): the value on a link is a pure function of the
link, the geometry (or time) and the round epoch — never of how often or
in which order links were sampled.  That invariance is what lets the
medium's reception fast path cull out-of-range links without perturbing
any other link's realisation:

* :class:`GudmundsonShadowing` is a frozen spatial random field — a unit
  Gaussian lattice with cell size equal to the decorrelation distance,
  interpolated and re-normalised to keep the marginal exactly
  ``N(0, σ²)``.  The lattice is indexed by the summed endpoint position
  *and* the endpoint separation, so any relative movement — a follower
  trailing the AP, or two cars passing head-on (where the position sum
  is stationary but the separation sweeps) — walks into fresh cells at
  the summed-displacement rate, reproducing Gudmundson's (1991)
  ``ρ(Δd) ≈ exp(-Δd/d_corr)`` roll-off; a stationary link keeps its
  value; both indices are symmetric in tx/rx, so the field is
  reciprocal by construction.
* :class:`TemporalTxShadowing` is an Ornstein–Uhlenbeck chain realised on
  a fixed time grid with keyed innovations, advanced lazily to the
  queried instant.

Values are clamped to ``±clamp_sigmas·σ`` (default 4σ, clipping
probability ~6e-5 per draw), so every model exposes a finite
:meth:`ShadowingModel.max_boost_db` — the worst-case headroom the
medium's deterministic reachability bound can rely on.
"""

from __future__ import annotations

import abc
import math
from typing import Hashable

import numpy as np

from repro.errors import RadioError
from repro.geom import Vec2
from repro.radio.keyed import KeyedRandom, stable_hash64

LinkKey = tuple[Hashable, Hashable]

#: Corner offsets of one lattice cell, in the exact order the scalar
#: trilinear expression visits them: x fastest, then y, then z.
_CORNER_DX = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int64)
_CORNER_DY = np.array([0, 0, 1, 1, 0, 0, 1, 1], dtype=np.int64)
_CORNER_DZ = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)


class ShadowingModel(abc.ABC):
    """Interface: per-link, position- and time-indexed shadowing in dB."""

    __slots__ = ()

    @abc.abstractmethod
    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        """Shadowing value (dB, may be negative) for a packet on *link*.

        Implementations must be pure in ``(link, positions, time)``
        between :meth:`reset` calls; *link* must be symmetric (callers
        normalise the endpoint order) so the channel is reciprocal.
        """

    def sample_db_batch(
        self,
        links: list[LinkKey],
        link_hashes: np.ndarray,
        tx_pos: Vec2,
        rx_xs: np.ndarray,
        rx_ys: np.ndarray,
        distances_m: np.ndarray,
        time: float = 0.0,
    ) -> np.ndarray:
        """Shadowing for a whole candidate set of one broadcast.

        *link_hashes* carries ``stable_hash64(link)`` per candidate (the
        channel already memoises them) and *distances_m* the exact
        tx→rx distances, so vectorized models need no per-link Python
        work.  Must be bit-identical to mapping :meth:`sample_db`; this
        fallback does exactly that, which also keeps stateful models
        (the lazily advanced OU chain) trivially correct.
        """
        out = np.empty(len(links), dtype=np.float64)
        xs = rx_xs.tolist()
        ys = rx_ys.tolist()
        for i, link in enumerate(links):
            out[i] = self.sample_db(link, tx_pos, Vec2(xs[i], ys[i]), time)
        return out

    def sample_db_multibatch(
        self,
        links: list[LinkKey],
        link_hashes: np.ndarray,
        tx_xs: np.ndarray,
        tx_ys: np.ndarray,
        rx_xs: np.ndarray,
        rx_ys: np.ndarray,
        distances_m: np.ndarray,
        time: float = 0.0,
    ) -> np.ndarray:
        """Shadowing for lanes concatenated from *several* broadcasts.

        Unlike :meth:`sample_db_batch` the transmitter position varies
        per lane (``tx_xs``/``tx_ys``), so candidate sets of different
        same-instant transmissions can share one vectorized pass.  Must
        be bit-identical to mapping :meth:`sample_db` per lane; this
        fallback does exactly that, so custom models stay correct
        inside the medium's cross-broadcast coalescer without opting in.
        """
        out = np.empty(len(links), dtype=np.float64)
        txx = tx_xs.tolist()
        txy = tx_ys.tolist()
        xs = rx_xs.tolist()
        ys = rx_ys.tolist()
        for i, link in enumerate(links):
            out[i] = self.sample_db(
                link, Vec2(txx[i], txy[i]), Vec2(xs[i], ys[i]), time
            )
        return out

    def max_boost_db(self) -> float:
        """Largest positive value :meth:`sample_db` can ever return.

        Used by the medium's deterministic reachability bound; models
        without a finite bound return ``inf`` (which disables culling).
        """
        return math.inf

    def reset(self) -> None:
        """Start a fresh realisation (called between simulation rounds)."""


class NoShadowing(ShadowingModel):
    """Deterministic zero shadowing — for unit tests and calibration."""

    __slots__ = ()

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        return 0.0

    def sample_db_batch(
        self, links, link_hashes, tx_pos, rx_xs, rx_ys, distances_m, time=0.0
    ) -> np.ndarray:
        return np.zeros(len(links), dtype=np.float64)

    def sample_db_multibatch(
        self, links, link_hashes, tx_xs, tx_ys, rx_xs, rx_ys, distances_m, time=0.0
    ) -> np.ndarray:
        return np.zeros(len(links), dtype=np.float64)

    def max_boost_db(self) -> float:
        return 0.0

    def reset(self) -> None:  # no state
        return None


class GudmundsonShadowing(ShadowingModel):
    """Spatially correlated log-normal shadowing as a frozen keyed field.

    Parameters
    ----------
    rng:
        Source of the field seed (a dedicated stream, see
        :class:`repro.sim.RandomStreams`).
    sigma_db:
        Standard deviation of the shadowing process (4–8 dB urban).
    decorrelation_distance_m:
        Lattice cell size: correlation decays over roughly this distance
        of summed endpoint movement, after Gudmundson (1991).
    clamp_sigmas:
        Values are clipped to ``±clamp_sigmas·sigma_db``.

    Notes
    -----
    The value for a link is ``σ·Σ wᵢ gᵢ / ‖w‖₂`` over the eight unit
    Gaussians ``gᵢ`` anchored at the corners of the lattice cell in
    ``(summed position, separation)`` space, with trilinear weights
    ``wᵢ``; the ``‖w‖₂`` renormalisation keeps the marginal exactly
    ``N(0, σ²)`` everywhere.  Each ``gᵢ`` is a pure function of
    ``(link, epoch, corner)``, so the field is deterministic per round
    no matter which links the medium samples or skips.
    """

    __slots__ = (
        "_keyed",
        "sigma_db",
        "decorrelation_distance_m",
        "clamp_sigmas",
        "_epoch",
        "_link_hashes",
        "_corners",
        "_corner_blocks",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        sigma_db: float = 6.0,
        decorrelation_distance_m: float = 15.0,
        clamp_sigmas: float = 4.0,
    ) -> None:
        if sigma_db < 0.0:
            raise RadioError(f"shadowing sigma must be >= 0, got {sigma_db!r}")
        if decorrelation_distance_m <= 0.0:
            raise RadioError("decorrelation distance must be positive")
        self._keyed = KeyedRandom.from_rng(rng)
        self.sigma_db = sigma_db
        self.decorrelation_distance_m = decorrelation_distance_m
        self.clamp_sigmas = clamp_sigmas
        self._epoch = 0
        self._link_hashes: dict[LinkKey, int] = {}
        # (link hash, corner) → unit Gaussian: a pure memo of keyed values.
        # Consecutive frames of a moving link live in the same lattice
        # cell for ~d_corr/speed seconds, so the eight corner draws are
        # reused hundreds of times; capped and dropped wholesale when a
        # long-running scenario accumulates too many cold corners.
        self._corners: dict[tuple[int, int, int, int], float] = {}
        # (link hash, cell) → all eight corner Gaussians of that cell as
        # one tuple: the batch kernel's cell-grained memo (one dict probe
        # per candidate instead of eight, and tuples assemble into the
        # (n, 8) matrix with a single np.array call).  Values are pure in
        # (key, epoch), so this coexists with the scalar memo without any
        # consistency protocol.
        self._corner_blocks: dict[
            tuple[int, int, int, int], tuple[float, ...]
        ] = {}

    _MAX_CORNER_CACHE = 262144
    _MAX_BLOCK_CACHE = 32768

    def _link_hash(self, link: LinkKey) -> int:
        cached = self._link_hashes.get(link)
        if cached is None:
            cached = stable_hash64(link)
            self._link_hashes[link] = cached
        return cached

    def _corner(self, h: int, ix: int, iy: int, iz: int) -> float:
        key = (h, ix, iy, iz)
        value = self._corners.get(key)
        if value is None:
            value = self._keyed.normal(h, self._epoch, ix, iy, iz)
            if len(self._corners) >= self._MAX_CORNER_CACHE:
                self._corners.clear()
            self._corners[key] = value
        return value

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        inv_cell = 1.0 / self.decorrelation_distance_m
        # Two symmetric geometry indices: the summed endpoint position
        # (decorrelates co-moving and single-mover links) and the
        # separation (decorrelates head-on passes, where the sum is
        # stationary but the endpoints sweep past each other).
        sx = (tx_pos.x + rx_pos.x) * inv_cell
        sy = (tx_pos.y + rx_pos.y) * inv_cell
        sz = tx_pos.distance_to(rx_pos) * inv_cell
        ix = math.floor(sx)
        iy = math.floor(sy)
        iz = math.floor(sz)
        fx = sx - ix
        fy = sy - iy
        fz = sz - iz
        h = self._link_hash(link)
        gx = 1.0 - fx
        gy = 1.0 - fy
        gz = 1.0 - fz
        block = self._corner_blocks.get((h, ix, iy, iz))
        if block is not None:
            # The batch kernel already drew this cell's eight corners
            # (pure values, so reuse is exact): one probe, no per-corner
            # lookups — mixed scalar/batch workloads share one cache.
            c000, c100, c010, c110, c001, c101, c011, c111 = block
        else:
            corner = self._corner
            c000 = corner(h, ix, iy, iz)
            c100 = corner(h, ix + 1, iy, iz)
            c010 = corner(h, ix, iy + 1, iz)
            c110 = corner(h, ix + 1, iy + 1, iz)
            c001 = corner(h, ix, iy, iz + 1)
            c101 = corner(h, ix + 1, iy, iz + 1)
            c011 = corner(h, ix, iy + 1, iz + 1)
            c111 = corner(h, ix + 1, iy + 1, iz + 1)
        mix = gz * (
            gx * gy * c000
            + fx * gy * c100
            + gx * fy * c010
            + fx * fy * c110
        ) + fz * (
            gx * gy * c001
            + fx * gy * c101
            + gx * fy * c011
            + fx * fy * c111
        )
        # Trilinear weights factorise, so ‖w‖₂² does too.
        norm = math.sqrt(
            (gx * gx + fx * fx) * (gy * gy + fy * fy) * (gz * gz + fz * fz)
        )
        value = self.sigma_db * mix / norm
        cap = self.clamp_sigmas * self.sigma_db
        return min(max(value, -cap), cap)

    def sample_db_batch(
        self,
        links: list[LinkKey],
        link_hashes: np.ndarray,
        tx_pos: Vec2,
        rx_xs: np.ndarray,
        rx_ys: np.ndarray,
        distances_m: np.ndarray,
        time: float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`sample_db` for one broadcast's candidate set.

        Same math, array-shaped: the lattice indices, trilinear weights
        and renormalisation evaluate in NumPy with the scalar operation
        order preserved; the eight corner Gaussians come from
        :meth:`_corner_block_matrix` (cell-memoised keyed draws).
        *distances_m* must be the exact ``tx_pos.distance_to(rx_pos)``
        values (the channel's link budget already computed them).
        """
        if len(links) == 0:
            return np.zeros(0, dtype=np.float64)
        inv_cell = 1.0 / self.decorrelation_distance_m
        sx = (tx_pos.x + rx_xs) * inv_cell
        sy = (tx_pos.y + rx_ys) * inv_cell
        sz = distances_m * inv_cell
        return self._field_batch(link_hashes, sx, sy, sz)

    def sample_db_multibatch(
        self,
        links: list[LinkKey],
        link_hashes: np.ndarray,
        tx_xs: np.ndarray,
        tx_ys: np.ndarray,
        rx_xs: np.ndarray,
        rx_ys: np.ndarray,
        distances_m: np.ndarray,
        time: float = 0.0,
    ) -> np.ndarray:
        """Cross-broadcast batch: per-lane transmitter coordinates.

        ``(tx_x + rx_x)`` per lane matches the scalar index expression
        operand for operand, so lanes of different transmitters share one
        interpolation pass bit-identically.
        """
        if len(links) == 0:
            return np.zeros(0, dtype=np.float64)
        inv_cell = 1.0 / self.decorrelation_distance_m
        sx = (tx_xs + rx_xs) * inv_cell
        sy = (tx_ys + rx_ys) * inv_cell
        sz = distances_m * inv_cell
        return self._field_batch(link_hashes, sx, sy, sz)

    def _field_batch(
        self, link_hashes: np.ndarray, sx: np.ndarray, sy: np.ndarray, sz: np.ndarray
    ) -> np.ndarray:
        """Interpolate the lattice at field coordinates ``(sx, sy, sz)``."""
        ixf = np.floor(sx)
        iyf = np.floor(sy)
        izf = np.floor(sz)
        fx = sx - ixf
        fy = sy - iyf
        fz = sz - izf
        corners = self._corner_block_matrix(
            link_hashes,
            ixf.astype(np.int64),
            iyf.astype(np.int64),
            izf.astype(np.int64),
        )
        gx = 1.0 - fx
        gy = 1.0 - fy
        gz = 1.0 - fz
        mix = gz * (
            gx * gy * corners[0]
            + fx * gy * corners[1]
            + gx * fy * corners[2]
            + fx * fy * corners[3]
        ) + fz * (
            gx * gy * corners[4]
            + fx * gy * corners[5]
            + gx * fy * corners[6]
            + fx * fy * corners[7]
        )
        norm = np.sqrt(
            (gx * gx + fx * fx) * (gy * gy + fy * fy) * (gz * gz + fz * fz)
        )
        value = self.sigma_db * mix / norm
        cap = self.clamp_sigmas * self.sigma_db
        return np.minimum(np.maximum(value, -cap), cap)

    def _corner_block_matrix(
        self, link_hashes: np.ndarray, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray
    ) -> np.ndarray:
        """The ``(8, n)`` corner Gaussians for each candidate's cell.

        Cache hits resolve with one dict probe per candidate; all misses
        evaluate as a single ``(8, m)`` vectorized keyed draw, deduped by
        cell key first — a coalesced cross-broadcast pass routinely holds
        the same cell twice (reciprocal links share both the canonical
        hash and the symmetric geometry indices), and the draws are pure,
        so each unique cell is drawn once and fanned out.
        """
        n = ix.shape[0]
        blocks = self._corner_blocks
        h_list = link_hashes.tolist()
        ix_list = ix.tolist()
        iy_list = iy.tolist()
        iz_list = iz.tolist()
        rows: list[tuple[float, ...] | None] = [None] * n
        misses: list[int] = []
        miss_keys: dict[tuple[int, int, int, int], list[int]] = {}
        for i in range(n):
            key = (h_list[i], ix_list[i], iy_list[i], iz_list[i])
            block = blocks.get(key)
            if block is None:
                lanes = miss_keys.get(key)
                if lanes is None:
                    miss_keys[key] = [i]
                    misses.append(i)
                else:
                    lanes.append(i)
            else:
                rows[i] = block
        if misses:
            miss_idx = np.array(misses)
            values = self._keyed.normal_batch(
                [
                    link_hashes[miss_idx],
                    self._epoch,
                    ix[miss_idx] + _CORNER_DX[:, None],
                    iy[miss_idx] + _CORNER_DY[:, None],
                    iz[miss_idx] + _CORNER_DZ[:, None],
                ],
                (8, len(misses)),
            )
            if len(blocks) + len(misses) > self._MAX_BLOCK_CACHE:
                blocks.clear()
            for j, lanes in enumerate(miss_keys.values()):
                block = tuple(values[:, j].tolist())
                i = lanes[0]
                blocks[(h_list[i], ix_list[i], iy_list[i], iz_list[i])] = block
                for lane in lanes:
                    rows[lane] = block
        return np.array(rows, dtype=np.float64).T

    def max_boost_db(self) -> float:
        return self.clamp_sigmas * self.sigma_db

    def reset(self) -> None:
        self._epoch += 1
        self._corners.clear()
        self._corner_blocks.clear()


class TemporalTxShadowing(ShadowingModel):
    """Transmitter-side time-correlated shadowing, shared by all links.

    Models obstruction events local to the transmitter — pedestrians and
    vehicles passing in front of the testbed's first-floor window antenna.
    Because the process is keyed by the *transmitter*, a deep dip hits
    every receiver at once: this is the common-mode loss component that
    makes different cars lose the *same* packets (the paper's joint-loss
    floor in Figs 6–8).  It evolves as an Ornstein–Uhlenbeck chain with
    correlation time ``tau_s``, realised on a fixed grid of
    ``tau_s / 4``-second steps with keyed innovations and advanced lazily
    to the queried instant (so the value at a time is independent of the
    sampling pattern).

    Per-link diversity still comes from :class:`GudmundsonShadowing`;
    compose the two with :class:`CompositeShadowing`.
    """

    __slots__ = (
        "_keyed",
        "sigma_db",
        "tau_s",
        "clamp_sigmas",
        "_hub",
        "_step_s",
        "_rho",
        "_innovation_scale",
        "_epoch",
        "_state",
    )

    #: Grid steps per correlation time; within one step the process is
    #: constant, matching the sub-coherence packet spacing of the flows.
    _STEPS_PER_TAU = 4

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        sigma_db: float = 4.0,
        tau_s: float = 2.0,
        hub: Hashable | None = None,
        clamp_sigmas: float = 4.0,
    ) -> None:
        if sigma_db < 0.0:
            raise RadioError(f"shadowing sigma must be >= 0, got {sigma_db!r}")
        if tau_s <= 0.0:
            raise RadioError("correlation time must be positive")
        self._keyed = KeyedRandom.from_rng(rng)
        self.sigma_db = sigma_db
        self.tau_s = tau_s
        self.clamp_sigmas = clamp_sigmas
        self._hub = hub
        self._step_s = tau_s / self._STEPS_PER_TAU
        rho = math.exp(-1.0 / self._STEPS_PER_TAU)
        self._rho = rho
        self._innovation_scale = math.sqrt(max(0.0, 1.0 - rho * rho))
        self._epoch = 0
        # process key → (hash, last grid index, value there) — a pure
        # cache: values are deterministic in (key, epoch, grid index).
        self._state: dict[Hashable, tuple[int, int, float]] = {}

    def _process_key(self, link: LinkKey) -> Hashable:
        """All links touching the hub share one process; others are per-link."""
        if self._hub is not None and self._hub in link:
            return self._hub
        return link

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        return self._value_at(
            self._process_key(link), max(0, math.floor(time / self._step_s))
        )

    def _value_at(self, key: Hashable, k: int) -> float:
        """The process value at grid step *k* (pure in key, epoch, k)."""
        cached = self._state.get(key)
        if cached is None or cached[1] > k:
            h = cached[0] if cached is not None else stable_hash64(key)
            j, value = 0, self._clamp(self.sigma_db * self._keyed.normal(h, self._epoch, 0))
        else:
            h, j, value = cached
        sigma_innovation = self._innovation_scale * self.sigma_db
        while j < k:
            j += 1
            value = self._clamp(
                self._rho * value
                + sigma_innovation * self._keyed.normal(h, self._epoch, j)
            )
        self._state[key] = (h, k, value)
        return value

    def sample_db_batch(
        self, links, link_hashes, tx_pos, rx_xs, rx_ys, distances_m, time=0.0
    ) -> np.ndarray:
        """Batch evaluation: all innovations of the set in one keyed draw.

        All lanes share the grid step, so every link touching the hub —
        the whole candidate set when the AP transmits — resolves to one
        process value.  Distinct processes that need advancing (or
        initialising) pool their keyed innovations into a single
        vectorized draw; the cheap ``clamp(ρ·v + σ·z)`` recurrence then
        runs per process on those bit-identical variates, so the values
        match the scalar chain exactly (it is pure in
        ``(key, epoch, step)``).
        """
        k = max(0, math.floor(time / self._step_s))
        n = len(links)
        out = np.empty(n, dtype=np.float64)
        hub = self._hub
        state = self._state
        # Process key → resolved value (float) or pending lane list.
        seen: dict[Hashable, float | list[int]] = {}
        pending = False
        for i, link in enumerate(links):
            key = hub if (hub is not None and hub in link) else link
            entry = seen.get(key)
            if entry is None:
                cached = state.get(key)
                if cached is not None and cached[1] == k:
                    value = cached[2]
                    seen[key] = value
                    out[i] = value
                else:
                    seen[key] = [i]
                    pending = True
            elif type(entry) is list:
                entry.append(i)
            else:
                out[i] = entry
        if pending:
            self._advance_batch(
                {key: v for key, v in seen.items() if type(v) is list}, k, out
            )
        return out

    def sample_db_multibatch(
        self, links, link_hashes, tx_xs, tx_ys, rx_xs, rx_ys, distances_m, time=0.0
    ) -> np.ndarray:
        # The OU process depends only on (link, time), never on geometry,
        # so lanes of different transmitters batch exactly like one
        # broadcast's candidate set.
        return self.sample_db_batch(
            links, link_hashes, None, rx_xs, rx_ys, distances_m, time
        )

    def _advance_batch(
        self, pending: dict[Hashable, list[int]], k: int, out: np.ndarray
    ) -> None:
        """Advance (or start) each pending process to step *k* at once.

        The keyed innovations ``normal(h, epoch, j)`` for every needed
        ``(process, step)`` pair are drawn as one vectorized batch — they
        are pure, so pooling them changes nothing — and the sequential
        clamp recurrence consumes them per process in scalar float64,
        exactly as :meth:`_value_at` would.
        """
        state = self._state
        starts: list[int] = []  # first innovation step needed per process
        hashes: list[int] = []
        values: list[float] = []
        for key in pending:
            cached = state.get(key)
            if cached is None or cached[1] > k:
                h = cached[0] if cached is not None else stable_hash64(key)
                starts.append(0)
                hashes.append(h)
                values.append(0.0)  # seeded by the j=0 draw below
            else:
                h, j, value = cached
                starts.append(j + 1)
                hashes.append(h)
                values.append(value)
        h_arr = np.array(hashes, dtype=np.uint64)
        if all(start == k for start in starts):
            # Common steady-state shape: every stale process advances by
            # exactly one grid step — one draw per process, no ragged
            # index assembly.
            draws = self._keyed.normal_batch(
                [h_arr, self._epoch, k], (len(starts),)
            ).tolist()
        else:
            counts = [k - start + 1 for start in starts]
            h_flat = np.repeat(h_arr, counts)
            steps: list[int] = []
            for start in starts:
                steps.extend(range(start, k + 1))
            j_flat = np.array(steps, dtype=np.int64)
            draws = self._keyed.normal_batch(
                [h_flat, self._epoch, j_flat], (h_flat.shape[0],)
            ).tolist()
        clamp = self._clamp
        rho = self._rho
        sigma_innovation = self._innovation_scale * self.sigma_db
        offset = 0
        for index, (key, lanes) in enumerate(pending.items()):
            start = starts[index]
            value = values[index]
            for step in range(start, k + 1):
                z = draws[offset]
                offset += 1
                if step == 0:
                    value = clamp(self.sigma_db * z)
                else:
                    value = clamp(rho * value + sigma_innovation * z)
            state[key] = (hashes[index], k, value)
            for lane in lanes:
                out[lane] = value

    def _clamp(self, value: float) -> float:
        cap = self.clamp_sigmas * self.sigma_db
        return min(max(value, -cap), cap)

    def max_boost_db(self) -> float:
        return self.clamp_sigmas * self.sigma_db

    def reset(self) -> None:
        self._epoch += 1
        self._state.clear()


class CompositeShadowing(ShadowingModel):
    """Sum of independent shadowing components.

    Typical use: ``CompositeShadowing([per_link, tx_common])`` where the
    per-link component carries spatial diversity across cars and the
    common component carries the shared AP-side variation.
    """

    __slots__ = ("components",)

    def __init__(self, components: list[ShadowingModel]) -> None:
        if not components:
            raise RadioError("CompositeShadowing needs at least one component")
        self.components = list(components)

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        total = 0.0
        for component in self.components:
            total += component.sample_db(link, tx_pos, rx_pos, time)
        return total

    def sample_db_batch(
        self, links, link_hashes, tx_pos, rx_xs, rx_ys, distances_m, time=0.0
    ) -> np.ndarray:
        # Accumulates from zeros in component order, matching the scalar
        # ``0.0 + a + b`` summation bit for bit.
        total = np.zeros(len(links), dtype=np.float64)
        for component in self.components:
            total = total + component.sample_db_batch(
                links, link_hashes, tx_pos, rx_xs, rx_ys, distances_m, time
            )
        return total

    def sample_db_multibatch(
        self, links, link_hashes, tx_xs, tx_ys, rx_xs, rx_ys, distances_m, time=0.0
    ) -> np.ndarray:
        total = np.zeros(len(links), dtype=np.float64)
        for component in self.components:
            total = total + component.sample_db_multibatch(
                links, link_hashes, tx_xs, tx_ys, rx_xs, rx_ys, distances_m, time
            )
        return total

    def max_boost_db(self) -> float:
        return sum(c.max_boost_db() for c in self.components)

    def reset(self) -> None:
        for component in self.components:
            component.reset()
