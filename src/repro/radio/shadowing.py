"""Log-normal shadowing with Gudmundson spatial correlation.

Shadowing captures obstruction by buildings, parked cars and street
furniture.  Two properties matter for reproducing the paper:

1. **Temporal correlation** — consecutive packets on the *same* link share
   fate while the vehicle moves less than a decorrelation distance, which
   produces the burst losses visible in the per-packet reception curves
   (Figs 3–5).
2. **Link independence** — different cars behind different obstructions
   fade *independently*, which is precisely the spatial diversity that
   Cooperative ARQ converts into recovered packets.

The classic Gudmundson (1991) model gives the autocorrelation
``ρ(Δd) = exp(-Δd / d_corr)`` of the shadowing process along a trajectory.
We realise it per link as a first-order Gauss–Markov (AR(1)) process
indexed by the cumulative relative movement of the two endpoints.
"""

from __future__ import annotations

import abc
import math
from typing import Hashable

import numpy as np

from repro.errors import RadioError
from repro.geom import Vec2

LinkKey = tuple[Hashable, Hashable]


class ShadowingModel(abc.ABC):
    """Interface: per-link, position- and time-indexed shadowing in dB."""

    @abc.abstractmethod
    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        """Shadowing value (dB, may be negative) for a packet on *link*.

        Implementations may keep per-link state; *link* must be symmetric
        (callers normalise the endpoint order) so the channel is reciprocal.
        """

    def reset(self) -> None:
        """Drop all per-link state (called between simulation rounds)."""


class NoShadowing(ShadowingModel):
    """Deterministic zero shadowing — for unit tests and calibration."""

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        return 0.0

    def reset(self) -> None:  # no state
        return None


class GudmundsonShadowing(ShadowingModel):
    """Spatially correlated log-normal shadowing.

    Parameters
    ----------
    rng:
        Source of randomness (a dedicated stream, see
        :class:`repro.sim.RandomStreams`).
    sigma_db:
        Standard deviation of the shadowing process (4–8 dB urban).
    decorrelation_distance_m:
        Distance over which correlation falls to ``1/e`` (10–20 m urban).

    Notes
    -----
    State per link is ``(last tx pos, last rx pos, last value)``.  On each
    sample the relative displacement of both endpoints since the previous
    sample drives the AR(1) update

    ``X_new = ρ X_old + sqrt(1-ρ²) N(0, σ)``,  ``ρ = exp(-Δd/d_corr)``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        sigma_db: float = 6.0,
        decorrelation_distance_m: float = 15.0,
    ) -> None:
        if sigma_db < 0.0:
            raise RadioError(f"shadowing sigma must be >= 0, got {sigma_db!r}")
        if decorrelation_distance_m <= 0.0:
            raise RadioError("decorrelation distance must be positive")
        self._rng = rng
        self.sigma_db = sigma_db
        self.decorrelation_distance_m = decorrelation_distance_m
        self._state: dict[LinkKey, tuple[Vec2, Vec2, float]] = {}

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        previous = self._state.get(link)
        if previous is None:
            value = float(self._rng.normal(0.0, self.sigma_db))
        else:
            prev_tx, prev_rx, prev_value = previous
            moved = prev_tx.distance_to(tx_pos) + prev_rx.distance_to(rx_pos)
            rho = math.exp(-moved / self.decorrelation_distance_m)
            innovation = float(self._rng.normal(0.0, self.sigma_db))
            value = rho * prev_value + math.sqrt(max(0.0, 1.0 - rho * rho)) * innovation
        self._state[link] = (tx_pos, rx_pos, value)
        return value

    def reset(self) -> None:
        self._state.clear()


class TemporalTxShadowing(ShadowingModel):
    """Transmitter-side time-correlated shadowing, shared by all links.

    Models obstruction events local to the transmitter — pedestrians and
    vehicles passing in front of the testbed's first-floor window antenna.
    Because the process is keyed by the *transmitter*, a deep dip hits
    every receiver at once: this is the common-mode loss component that
    makes different cars lose the *same* packets (the paper's joint-loss
    floor in Figs 6–8).  It evolves as an Ornstein–Uhlenbeck process with
    correlation time ``tau_s``.

    Per-link diversity still comes from :class:`GudmundsonShadowing`;
    compose the two with :class:`CompositeShadowing`.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        sigma_db: float = 4.0,
        tau_s: float = 2.0,
        hub: Hashable | None = None,
    ) -> None:
        if sigma_db < 0.0:
            raise RadioError(f"shadowing sigma must be >= 0, got {sigma_db!r}")
        if tau_s <= 0.0:
            raise RadioError("correlation time must be positive")
        self._rng = rng
        self.sigma_db = sigma_db
        self.tau_s = tau_s
        self._hub = hub
        # process key → (last sample time, last value)
        self._state: dict[Hashable, tuple[float, float]] = {}

    def _process_key(self, link: LinkKey) -> Hashable:
        """All links touching the hub share one process; others are per-link."""
        if self._hub is not None and self._hub in link:
            return self._hub
        return link

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        tx_key = self._process_key(link)
        previous = self._state.get(tx_key)
        if previous is None:
            value = float(self._rng.normal(0.0, self.sigma_db))
        else:
            prev_time, prev_value = previous
            dt = abs(time - prev_time)
            rho = math.exp(-dt / self.tau_s)
            innovation = float(self._rng.normal(0.0, self.sigma_db))
            value = rho * prev_value + math.sqrt(max(0.0, 1.0 - rho * rho)) * innovation
        self._state[tx_key] = (time, value)
        return value

    def reset(self) -> None:
        self._state.clear()


class CompositeShadowing(ShadowingModel):
    """Sum of independent shadowing components.

    Typical use: ``CompositeShadowing([per_link, tx_common])`` where the
    per-link component carries spatial diversity across cars and the
    common component carries the shared AP-side variation.
    """

    def __init__(self, components: list[ShadowingModel]) -> None:
        if not components:
            raise RadioError("CompositeShadowing needs at least one component")
        self.components = list(components)

    def sample_db(
        self, link: LinkKey, tx_pos: Vec2, rx_pos: Vec2, time: float = 0.0
    ) -> float:
        return sum(c.sample_db(link, tx_pos, rx_pos, time) for c in self.components)

    def reset(self) -> None:
        for component in self.components:
            component.reset()
