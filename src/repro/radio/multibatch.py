"""The cross-broadcast channel kernel: one pass over many transmissions.

:func:`broadcast_samples` (``radio/batch.py``) removed the per-receiver
Python round-trip *within* one broadcast, but every broadcast still paid
the NumPy fixed costs once, and candidate sets below the medium's
``batch_min_candidates`` floor fell back to scalar ``channel.sample``
calls — the dominant cost of protocol-heavy multi-AP rounds, where many
small HELLO/data broadcasts land on the same wheel slot.

:func:`multibroadcast_samples` concatenates the candidate lanes of N
pending same-instant broadcasts into flat arrays (per-lane transmitter
coordinates, powers and ``tx_seq`` counters alongside the receiver
columns) and evaluates them in one keyed pass: one ``hypot``/path-loss
sweep, one reachability cull, one Gudmundson corner-probe set (deduped
across broadcasts), one fading draw.  Keyed counter-based randomness
makes the regrouping exact by construction — each lane's draws are a
pure function of its ``(link, transmission)`` key, independent of which
pass it rides in — and ``tests/radio/test_multibatch_parity.py`` pins
the concatenated pass bitwise-equal to one-at-a-time evaluation.

The result is returned per broadcast (a :class:`BroadcastBatch` each, in
input order, with lane indices local to that broadcast's slice), so the
medium's admission loop is oblivious to how the sampling was grouped.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.radio.batch import _EMPTY, BroadcastBatch, broadcast_samples
from repro.radio.channel import Channel
from repro.radio.keyed import hypot_map
from repro.radio.obstruction import NoObstruction

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.geom import Vec2


class PendingSlice(typing.NamedTuple):
    """One queued broadcast's transmitter facts and lane range.

    ``start:stop`` index the flat lane arrays handed to
    :func:`multibroadcast_samples`.
    """

    tx_id: typing.Hashable
    tx_pos: "Vec2"
    tx_power_dbm: float
    tx_seq: int
    start: int
    stop: int


def _needs_per_broadcast(channel: Channel) -> bool:
    """Scripted/overridden channel physics cannot ride the flat pass.

    Subclasses overriding any budget or sampling entry point (scripted
    realisations in protocol tests) are honoured by evaluating each
    broadcast through :func:`broadcast_samples`, which carries its own
    per-candidate scalar fallbacks.
    """
    cls = type(channel)
    return (
        cls.link_budget is not Channel.link_budget
        or cls.link_budget_batch is not Channel.link_budget_batch
        or cls.sample is not Channel.sample
        or cls.sample_batch is not Channel.sample_batch
        or cls.sample_multibatch is not Channel.sample_multibatch
    )


def multibroadcast_samples(
    channel: Channel,
    broadcasts: list[PendingSlice],
    rx_ids: list[typing.Hashable],
    tx_xs: np.ndarray,
    tx_ys: np.ndarray,
    rx_xs: np.ndarray,
    rx_ys: np.ndarray,
    rx_gains_db: np.ndarray,
    rx_thresholds_dbm: np.ndarray,
    tx_powers_dbm: np.ndarray,
    tx_seqs: np.ndarray,
    headroom_db: float,
    time: float,
) -> list[BroadcastBatch]:
    """Evaluate N broadcasts' concatenated candidate lanes in one pass.

    Mirrors :func:`broadcast_samples` stage for stage — deterministic
    budget, reachability cull, stochastic realisation for the survivors,
    sensitivity filter — with every per-transmission scalar widened to a
    per-lane array.  All lanes share *time* (the coalescer only queues
    same-instant broadcasts).  Returns one :class:`BroadcastBatch` per
    input broadcast, ``kept`` indices local to its lane slice.
    """
    if _needs_per_broadcast(channel):
        results = []
        for b in broadcasts:
            sl = slice(b.start, b.stop)
            results.append(
                broadcast_samples(
                    channel,
                    b.tx_id,
                    rx_ids[sl],
                    b.tx_pos,
                    rx_xs[sl],
                    rx_ys[sl],
                    rx_gains_db[sl],
                    rx_thresholds_dbm[sl],
                    b.tx_power_dbm,
                    headroom_db,
                    time,
                    b.tx_seq,
                )
            )
        return results

    distances = hypot_map(tx_xs - rx_xs, tx_ys - rx_ys)
    losses = channel.pathloss.loss_db_batch(distances)
    obstruction = channel.obstruction
    if type(obstruction) is not NoObstruction:
        # The obstruction batch API is per-transmitter; slice-add each
        # broadcast's extra loss (NoObstruction would only add zeros).
        for b in broadcasts:
            sl = slice(b.start, b.stop)
            losses[sl] = losses[sl] + obstruction.extra_loss_db_batch(
                b.tx_pos, rx_xs[sl], rx_ys[sl]
            )
    reachable = (
        tx_powers_dbm + rx_gains_db - losses + headroom_db >= rx_thresholds_dbm
    )
    idx = np.flatnonzero(reachable)
    if idx.size == 0:
        return [_EMPTY for _ in broadcasts]
    idx_list = idx.tolist()
    sub_rx_ids = [rx_ids[i] for i in idx_list]
    bounds = np.searchsorted(
        idx, [b.start for b in broadcasts] + [b.stop for b in broadcasts]
    )
    n_broadcasts = len(broadcasts)
    sub_tx_ids: list[typing.Hashable] = []
    for k, b in enumerate(broadcasts):
        sub_tx_ids.extend([b.tx_id] * int(bounds[n_broadcasts + k] - bounds[k]))
    rx_power, mean_power = channel.sample_multibatch(
        sub_tx_ids,
        sub_rx_ids,
        tx_xs[idx],
        tx_ys[idx],
        rx_xs[idx],
        rx_ys[idx],
        tx_powers_dbm[idx],
        rx_gains_db[idx],
        time,
        tx_seqs[idx],
        (distances[idx], losses[idx]),
    )
    keep = mean_power >= rx_thresholds_dbm[idx]
    kept = idx[keep]
    kept_power = rx_power[keep]
    kept_mean = mean_power[keep]
    kept_dist = distances[kept]
    results = []
    splits = np.searchsorted(
        kept, [b.start for b in broadcasts] + [b.stop for b in broadcasts]
    )
    for k, b in enumerate(broadcasts):
        lo = int(splits[k])
        hi = int(splits[n_broadcasts + k])
        if lo == hi:
            results.append(_EMPTY)
            continue
        results.append(
            BroadcastBatch(
                kept[lo:hi] - b.start,
                kept_power[lo:hi],
                kept_mean[lo:hi],
                kept_dist[lo:hi],
            )
        )
    return results
