"""The car × packet reception matrix — the paper's core data structure.

All results in the paper reduce to, per flow: which packets (by number)
were received directly at each car, which the destination held after
cooperation, and which any car in the platoon received (the "joint" /
virtual-car reference the protocol is measured against, Figs 6–8).

Packet *numbers* are 1-based indices within the flow's platoon window —
the range from the first to the last sequence number any platoon member
captured — matching how the paper aligns its per-packet curves at the
moment the platoon associates with the AP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.mac.frames import NodeId


@dataclass(frozen=True)
class ReceptionMatrix:
    """Per-flow reception outcome of one experiment round.

    Attributes
    ----------
    flow:
        The destination car of this flow.
    window:
        ``(lo, hi)`` sequence-number window (platoon association window).
    direct:
        Car → set of seqs that car received straight from the AP (within
        the window).
    after_coop:
        Seqs the destination holds after cooperative recovery (direct ∪
        recovered, within the window).
    """

    flow: NodeId
    window: tuple[int, int]
    direct: dict[NodeId, frozenset[int]]
    after_coop: frozenset[int]

    def __post_init__(self) -> None:
        lo, hi = self.window
        if lo > hi:
            raise AnalysisError(f"empty window {self.window!r}")

    @staticmethod
    def build(
        flow: NodeId,
        direct_by_car: dict[NodeId, set[int]],
        recovered: set[int],
    ) -> "ReceptionMatrix | None":
        """Assemble a matrix from raw reception sets.

        Returns ``None`` when no car received anything (no association —
        the round contributes nothing for this flow).
        """
        all_seqs = set().union(*direct_by_car.values()) if direct_by_car else set()
        if not all_seqs:
            return None
        lo, hi = min(all_seqs), max(all_seqs)
        window_filter = lambda seqs: frozenset(s for s in seqs if lo <= s <= hi)
        direct = {car: window_filter(seqs) for car, seqs in direct_by_car.items()}
        own = direct.get(flow, frozenset())
        after = own | window_filter(recovered)
        return ReceptionMatrix(flow=flow, window=(lo, hi), direct=direct, after_coop=after)

    # -- scalar summaries (Table 1) ------------------------------------------------

    @property
    def tx_by_ap(self) -> int:
        """Packets the AP transmitted in the window ("Tx by the AP")."""
        return self.window[1] - self.window[0] + 1

    @property
    def lost_before_coop(self) -> int:
        """Packets the destination missed from the AP directly."""
        own = self.direct.get(self.flow, frozenset())
        return self.tx_by_ap - len(own)

    @property
    def lost_after_coop(self) -> int:
        """Packets still missing after cooperative recovery."""
        return self.tx_by_ap - len(self.after_coop)

    @property
    def joint(self) -> frozenset[int]:
        """Seqs received by *any* car — the virtual-car upper bound."""
        result: set[int] = set()
        for seqs in self.direct.values():
            result |= seqs
        return frozenset(result)

    @property
    def lost_joint(self) -> int:
        """Packets no car in the platoon received."""
        return self.tx_by_ap - len(self.joint)

    # -- per-packet-number views (Figures 3–8) ---------------------------------------

    def packet_number(self, seq: int) -> int:
        """1-based packet number of a sequence number within the window."""
        lo, hi = self.window
        if not lo <= seq <= hi:
            raise AnalysisError(f"seq {seq} outside window {self.window}")
        return seq - lo + 1

    def direct_indicator(self, car: NodeId) -> list[bool]:
        """Reception indicator by packet number at one car."""
        lo, hi = self.window
        seqs = self.direct.get(car, frozenset())
        return [seq in seqs for seq in range(lo, hi + 1)]

    def after_coop_indicator(self) -> list[bool]:
        """After-cooperation indicator by packet number (destination)."""
        lo, hi = self.window
        return [seq in self.after_coop for seq in range(lo, hi + 1)]

    def joint_indicator(self) -> list[bool]:
        """Any-car indicator by packet number."""
        joint = self.joint
        lo, hi = self.window
        return [seq in joint for seq in range(lo, hi + 1)]

    def optimality_violations(self) -> frozenset[int]:
        """Seqs recovered by the destination that *no* car received.

        Must be empty: cooperation cannot create packets out of thin air.
        Used as a cross-validation invariant by the test suite.
        """
        return self.after_coop - self.joint
