"""Per-round frame capture with per-node / per-flow queries."""

from __future__ import annotations

from collections import defaultdict

from repro.mac.frames import DataFrame, Frame, NodeId
from repro.mac.medium import LossCause
from repro.radio.modulation import WifiRate
from repro.trace.records import RxRecord, TxRecord


class TraceCollector:
    """Records every TX and per-receiver RX event of a medium.

    Install via ``Medium(..., trace=collector)`` or
    :meth:`~repro.mac.medium.Medium.set_trace`.

    The query helpers below are the post-processing primitives the paper's
    evaluation needs: which data packets of which flow were transmitted,
    and which were captured at each car.

    One collector lives on every traced medium and is touched on every
    TX/RX, so it is slotted alongside the other hot-path objects.
    """

    __slots__ = (
        "tx_records",
        "rx_records",
        "_data_deliveries",
        "_data_transmissions",
    )

    def __init__(self) -> None:
        self.tx_records: list[TxRecord] = []
        self.rx_records: list[RxRecord] = []
        # (rx node, flow) → {seq: first delivery time}
        self._data_deliveries: dict[tuple[NodeId, NodeId], dict[int, float]] = (
            defaultdict(dict)
        )
        # flow → {seq: first tx time}
        self._data_transmissions: dict[NodeId, dict[int, float]] = defaultdict(dict)

    # -- medium hooks --------------------------------------------------------

    def on_tx(self, time: float, node: NodeId, frame: Frame, rate: WifiRate) -> None:
        """Medium callback: a frame started transmission."""
        self.tx_records.append(TxRecord(time, node, frame, rate))
        if isinstance(frame, DataFrame):
            self._data_transmissions[frame.flow_dst].setdefault(frame.seq, time)

    def on_rx(
        self,
        time: float,
        node: NodeId,
        frame: Frame,
        cause: LossCause,
        snr_db: float,
        rx_power_dbm: float,
    ) -> None:
        """Medium callback: an arrival finished (delivered or lost)."""
        self.rx_records.append(
            RxRecord(time, node, frame, cause, snr_db, rx_power_dbm)
        )
        if cause is LossCause.DELIVERED and isinstance(frame, DataFrame):
            self._data_deliveries[(node, frame.flow_dst)].setdefault(frame.seq, time)

    # -- queries -----------------------------------------------------------------

    def transmitted_seqs(self, flow: NodeId) -> set[int]:
        """All data sequence numbers the AP transmitted on *flow*."""
        return set(self._data_transmissions[flow])

    def delivered_seqs(self, node: NodeId, flow: NodeId) -> set[int]:
        """Data seqs of *flow* captured (delivered) at *node*."""
        return set(self._data_deliveries[(node, flow)])

    def delivery_time(self, node: NodeId, flow: NodeId, seq: int) -> float | None:
        """First delivery time of a packet at a node, or ``None``."""
        return self._data_deliveries[(node, flow)].get(seq)

    def loss_causes(self, node: NodeId) -> dict[LossCause, int]:
        """Histogram of RX outcomes at one node."""
        histogram: dict[LossCause, int] = defaultdict(int)
        for record in self.rx_records:
            if record.node == node:
                histogram[record.cause] += 1
        return dict(histogram)

    def frames_sent_by(self, node: NodeId) -> int:
        """Number of frames transmitted by a node."""
        return sum(1 for record in self.tx_records if record.node == node)

    def clear(self) -> None:
        """Drop everything (for reuse across rounds)."""
        self.tx_records.clear()
        self.rx_records.clear()
        self._data_deliveries.clear()
        self._data_transmissions.clear()
