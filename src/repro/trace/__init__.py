"""Trace capture — the simulated equivalent of the testbed's tcpdump.

The testbed captured all received traffic on each laptop "for its analysis
and post-processing".  :class:`TraceCollector` plays that role: it hooks
the medium's TX/RX events and exposes per-node, per-flow queries;
:class:`ReceptionMatrix` is the car × packet boolean table the paper's
Table 1 and all figures are computed from.
"""

from repro.trace.records import RxRecord, TxRecord
from repro.trace.capture import TraceCollector
from repro.trace.matrix import ReceptionMatrix

__all__ = ["ReceptionMatrix", "RxRecord", "TraceCollector", "TxRecord"]
