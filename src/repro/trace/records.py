"""Immutable per-frame trace records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.frames import Frame, NodeId
from repro.mac.medium import LossCause
from repro.radio.modulation import WifiRate


@dataclass(frozen=True)
class TxRecord:
    """One frame put on the air."""

    time: float
    node: NodeId
    frame: Frame
    rate: WifiRate


@dataclass(frozen=True)
class RxRecord:
    """One frame arriving (or failing to arrive) at one receiver.

    ``cause`` is :attr:`~repro.mac.medium.LossCause.DELIVERED` for
    successful receptions; other values classify the loss.  Arrivals far
    below sensitivity generate no record at all (a real sniffer never sees
    them).
    """

    time: float
    node: NodeId
    frame: Frame
    cause: LossCause
    snr_db: float
    rx_power_dbm: float

    @property
    def delivered(self) -> bool:
        """Whether the frame was received correctly."""
        return self.cause is LossCause.DELIVERED
