"""The slot-wheel scheduler: a calendar queue keyed on the MAC slot grid.

Drop-in replacement for the binary-heap :class:`~repro.sim.scheduler.EventQueue`
with the same total order ``(time, priority, seq)`` and the same
live-count/cancel invariants, but a different cost profile.  The heap
pays a Python-level ``Event.__lt__`` per sift comparison — O(log n) of
them per push *and* pop — which caps the kernel around a couple hundred
thousand events per second.  The wheel repackages every entry as a
``(time, priority, seq, event)`` tuple — ``seq`` is globally unique, so
a comparison never reaches the event element and always runs inside
CPython's C tuple comparison — and replaces per-event heap sifts with
per-*slot* and per-*window* work:

* **near tier** — a dict of buckets keyed by absolute slot number
  (``floor(time / slot_s)``, the MAC slot grid from
  :mod:`repro.mac.timing`), plus a small int-heap of occupied slot
  numbers.  Pushing into an existing bucket is one dict probe and a
  ``list.append``; the int-heap is touched once per *distinct slot*, not
  per event, so slot-aligned MAC workloads (back-off expiries, frame
  ends) collapse to O(1) amortised pushes.
* **serving window** — when the cursor drains, the next
  ``window_slots`` worth of due entries (near buckets plus due overflow
  entries) are gathered and sorted *once*, descending, so the next event
  is always ``cursor[-1]`` and pop is O(1).  Events pushed into the
  window while it is being served — timers armed for "now", same-instant
  follow-ups — binary-insert into the cursor, preserving the exact total
  order; causality (no scheduling into the past) keeps those insertions
  near the serving end.
* **overflow tier** — events beyond ``horizon_slots`` ahead of the
  serving window (coverage watchdogs, HELLO periods, round-end
  sentinels) are appended O(1) to a pending batch; each advance folds
  the batch into a descending-sorted list (timsort is adaptive, so a
  mostly-sorted tier re-sorts in near-linear time) and drains the due
  window with one binary search plus a slice off the tail — O(due), not
  O(due · log n) heap pops.

Cancellation stays lazy exactly as in the heap queue: a cancelled entry
is skipped when its window is served.  Both queues auto-compact when
dead entries pile up past ``2 × live`` (see
:func:`repro.sim.scheduler.should_compact`).

Ordering equivalence with the heap queue is pinned by the Hypothesis
suite in ``tests/sim/test_scheduler_equivalence.py``; the legacy heap
stays selectable via ``Simulator(scheduler="heap")`` as the reference
arm.
"""

from __future__ import annotations

import heapq
import math

from repro.sim.event import Event

#: Default bucket width: the 802.11 DSSS MAC slot (20 µs) — the grid
#: most kernel events (back-offs, DIFS expiries, frame ends) land on.
#: Mirrored from :data:`repro.mac.timing.DSSS_TIMING` rather than
#: imported (the MAC layer sits above the kernel); the value equality is
#: pinned by a test.  Written as the same ``20 · 1e-6`` expression the
#: MAC layer evaluates (``20e-6`` parses one ulp away) so the pin holds
#: bitwise.
DEFAULT_SLOT_S = 20 * 1e-6

#: Slots gathered into one serving window (256 · 20 µs ≈ 5 ms): large
#: enough to amortise the advance bookkeeping over many events, small
#: enough that mid-window insertions stay cheap.
DEFAULT_WINDOW_SLOTS = 256

#: Slots the near tier spans ahead of the serving window before an event
#: is routed to the overflow heap (4096 · 20 µs ≈ 82 ms by default —
#: wide enough for every in-flight MAC timer, narrow enough that
#: second-scale protocol timers stay out of the bucket dict).
DEFAULT_HORIZON_SLOTS = 4096

#: Slot number used for non-finite times (``inf`` sentinel events): far
#: beyond any reachable slot, so they sit in the overflow tier until
#: everything else has drained.
_FAR_SLOT = 2**62

# One global load instead of module + attribute on the push hot path.
_floor = math.floor


class SlotWheelQueue:
    """Calendar queue over the MAC slot grid, heap-equivalent in order.

    Invariant (same as :class:`~repro.sim.scheduler.EventQueue`):
    ``len(self)`` always equals the number of non-cancelled entries held
    across the cursor, the near buckets and the overflow tier
    (:meth:`live_heap_count` re-derives it in O(n) for the tests), and
    :meth:`cancel` is the only path that may decrement it for a
    cancellation — refusing fired, already-cancelled and foreign
    handles.

    The ordering argument, for the record: the serving window covers the
    slot range ``[base_slot, cursor_hi]`` and *owns every entry in it* —
    ``_advance`` drains both tiers for the range, pushes into the range
    binary-insert into the cursor (events cannot be scheduled into the
    past, so nothing can be pushed below the range), and overflow
    routing requires ``slot ≥ base_slot + horizon > cursor_hi``.  Hence
    the cursor minimum is always the global minimum, and within the
    window the sort on ``(time, priority, seq)`` keys reproduces the
    heap's total order exactly.
    """

    __slots__ = (
        "_slot_s",
        "_inv_slot",
        "_window",
        "_horizon",
        "_buckets",
        "_slot_heap",
        "_cursor",
        "_cursor_hi",
        "_base_slot",
        "_overflow",
        "_overflow_pending",
        "_live",
        "_dead",
        "overflow_pushes",
    )

    kind = "wheel"

    def __init__(
        self,
        slot_s: float = DEFAULT_SLOT_S,
        *,
        window_slots: int = DEFAULT_WINDOW_SLOTS,
        horizon_slots: int = DEFAULT_HORIZON_SLOTS,
    ) -> None:
        if slot_s <= 0.0 or not math.isfinite(slot_s):
            raise ValueError(f"slot width must be positive and finite, got {slot_s!r}")
        if window_slots < 1:
            raise ValueError(f"window must span at least 1 slot, got {window_slots!r}")
        if horizon_slots < 2 * window_slots:
            raise ValueError(
                f"horizon ({horizon_slots}) must be at least twice the "
                f"window ({window_slots}), or serving-window pushes could "
                "be routed to the overflow tier"
            )
        self._slot_s = slot_s
        self._inv_slot = 1.0 / slot_s
        self._window = window_slots
        self._horizon = horizon_slots
        # slot number → list of (time, priority, seq, event) entries,
        # unsorted until their window is served.
        self._buckets: dict[int, list[tuple]] = {}
        # Min-heap of occupied near-tier slot numbers (ints compare in C).
        self._slot_heap: list[int] = []
        # The window being served: entries sorted descending, so the next
        # event is cursor[-1] and pop() is O(1).
        self._cursor: list[tuple] = []
        # Highest slot owned by the cursor (inclusive); None = no window.
        self._cursor_hi: int | None = None
        # Serving front; pushes ``horizon`` slots ahead go to overflow.
        self._base_slot = 0
        # Beyond-horizon entries: a descending-sorted tier (earliest key
        # last, so draining slices off the tail) plus an unsorted pending
        # batch folded in at the next advance.
        self._overflow: list[tuple] = []
        self._overflow_pending: list[tuple] = []
        self._live = 0
        self._dead = 0
        #: Total entries ever routed to the overflow tier (plain int so
        #: the obs layer can export it without a guard on this hot path).
        self.overflow_pushes = 0

    # -- introspection ---------------------------------------------------------

    @property
    def slot_s(self) -> float:
        """Bucket width in seconds (the MAC slot grid)."""
        return self._slot_s

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def physical_size(self) -> int:
        """Entries currently held, live and (lazily deleted) dead alike."""
        return self._live + self._dead

    def occupied_slots(self) -> int:
        """Near-tier buckets holding entries, cursor included (density)."""
        return len(self._buckets) + (1 if self._cursor else 0)

    def overflow_len(self) -> int:
        """Entries currently parked in the overflow tier."""
        return len(self._overflow) + len(self._overflow_pending)

    # -- core operations -------------------------------------------------------

    def push(self, event: Event) -> None:
        """Insert an event.

        Raises
        ------
        ValueError
            If the event already belongs to a queue (double-push would
            double-count the live total).
        """
        if event.owner is not None:
            raise ValueError(f"{event!r} is already queued")
        event.owner = self
        entry = (event.time, event.priority, event.seq, event)
        self._insert(entry)
        self._live += 1

    def push_new(self, time, priority, seq, callback, args) -> Event:
        """Create an event and insert it — the fused scheduling hot path.

        Equivalent to ``Event(...)`` followed by :meth:`push`, minus one
        call layer and the foreign-owner guard a freshly built event
        cannot trip.  :meth:`~repro.sim.Simulator.schedule` routes
        through this; :meth:`push` remains for re-queueing externally
        built events.
        """
        event = Event(time, priority, seq, callback, args)
        event.owner = self
        try:
            slot = _floor(time * self._inv_slot)
        except (OverflowError, ValueError):  # inf / nan sentinel times
            slot = _FAR_SLOT
        cursor_hi = self._cursor_hi
        if cursor_hi is not None and slot <= cursor_hi:
            # The serving window: binary-insert into the descending
            # cursor.  Causality (no scheduling into the past) puts the
            # insertion point at or past the un-served suffix.
            entry = (time, priority, seq, event)
            cursor = self._cursor
            lo, hi = 0, len(cursor)
            while lo < hi:
                mid = (lo + hi) // 2
                if cursor[mid] > entry:
                    lo = mid + 1
                else:
                    hi = mid
            cursor.insert(lo, entry)
        elif slot - self._base_slot >= self._horizon:
            self._overflow_pending.append((time, priority, seq, event))
            self.overflow_pushes += 1
        else:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [(time, priority, seq, event)]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append((time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event, marking it fired.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while True:
            cursor = self._cursor
            while cursor:
                event = cursor.pop()[3]
                if event._cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                event._fired = True
                return event
            if not self._advance():
                raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float:
        """Timestamp of the earliest live event without removing it.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while True:
            cursor = self._cursor
            while cursor:
                event = cursor[-1][3]
                if event._cancelled:
                    cursor.pop()
                    self._dead -= 1
                    continue
                return cursor[-1][0]
            if not self._advance():
                raise IndexError("peek on empty EventQueue")

    def serve(self, until: float | None = None):
        """Yield live events in order, marking each fired — the drain loop.

        The :meth:`~repro.sim.Simulator.run` hot path: one generator
        resumption per event instead of a ``peek_time`` + ``pop`` method
        pair, with the cancelled-entry pruning done once.  With *until*,
        stops (without consuming) at the first event past it.  The
        cursor is re-read after every yield — a consumer callback may
        push into it, or swap it out entirely via an auto-compact.
        """
        if until is None:
            while True:
                cursor = self._cursor
                if not cursor:
                    if not self._advance():
                        return
                    continue
                event = cursor.pop()[3]
                if event._cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                event._fired = True
                yield event
        else:
            while True:
                cursor = self._cursor
                if not cursor:
                    if not self._advance():
                        return
                    continue
                entry = cursor[-1]
                event = entry[3]
                if event._cancelled:
                    cursor.pop()
                    self._dead -= 1
                    continue
                if entry[0] > until:
                    return
                cursor.pop()
                self._live -= 1
                event._fired = True
                yield event

    def cancel(self, event: Event) -> bool:
        """Cancel *event* if it is still a live entry of this queue.

        Returns ``True`` when the event was live and is now cancelled;
        ``False`` when there was nothing to do (already cancelled,
        already fired, or never pushed to *this* queue).  Dead entries
        linger until their window is served; when they outnumber live
        entries past the shared auto-compact threshold the queue rebuilds
        itself (see :func:`repro.sim.scheduler.should_compact`).
        """
        if event.cancelled or event.fired or event.owner is not self:
            return False
        event.cancel()
        self._live -= 1
        self._dead += 1
        if should_compact(self._live, self._dead):
            self.compact()
        return True

    def compact(self) -> None:
        """Drop all cancelled entries and rebuild the tiers.

        Survivors are re-seeded through the overflow tier; the next
        :meth:`pop`/:meth:`peek_time` re-establishes a serving window
        across both tiers, so ordering is untouched.
        """
        live = [entry for entry in self._iter_entries() if not entry[3]._cancelled]
        live.sort(reverse=True)
        self._overflow = live
        self._overflow_pending = []
        self._buckets = {}
        self._slot_heap = []
        self._cursor = []
        # No serving window: pushes must not sidestep the re-seeded
        # overflow until _advance re-establishes one.
        self._cursor_hi = None
        self._dead = 0
        self._live = len(live)

    def clear(self) -> None:
        """Remove everything, resetting all cancellation bookkeeping.

        Discarded events are marked cancelled so a stale handle passed to
        :meth:`cancel` afterwards is refused instead of driving the live
        count negative.
        """
        for entry in self._iter_entries():
            entry[3].cancel()
        self._buckets = {}
        self._slot_heap = []
        self._cursor = []
        self._cursor_hi = None
        self._overflow = []
        self._overflow_pending = []
        self._live = 0
        self._dead = 0

    def live_heap_count(self) -> int:
        """O(n) count of non-cancelled entries (invariant check)."""
        return sum(1 for entry in self._iter_entries() if not entry[3]._cancelled)

    # -- internals -------------------------------------------------------------

    def _insert(self, entry) -> None:
        """Route one (time, priority, seq, event) entry to its tier.

        Same routing as the inlined body of :meth:`push_new` (which
        skips this call layer — it is the kernel's hottest path).
        """
        try:
            slot = _floor(entry[0] * self._inv_slot)
        except (OverflowError, ValueError):  # inf / nan sentinel times
            slot = _FAR_SLOT
        cursor_hi = self._cursor_hi
        if cursor_hi is not None and slot <= cursor_hi:
            cursor = self._cursor
            lo, hi = 0, len(cursor)
            while lo < hi:
                mid = (lo + hi) // 2
                if cursor[mid] > entry:
                    lo = mid + 1
                else:
                    hi = mid
            cursor.insert(lo, entry)
        elif slot - self._base_slot >= self._horizon:
            self._overflow_pending.append(entry)
            self.overflow_pushes += 1
        else:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [entry]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append(entry)

    def _iter_entries(self):
        yield from self._cursor
        for bucket in self._buckets.values():
            yield from bucket
        yield from self._overflow
        yield from self._overflow_pending

    def _advance(self) -> bool:
        """Gather the next serving window into the cursor.

        Picks the earliest occupied slot across both tiers, collects
        every entry within ``window_slots`` of it (due overflow entries
        included), and sorts the batch once.  Returns ``False`` when no
        entries remain anywhere.
        """
        buckets = self._buckets
        slot_heap = self._slot_heap
        overflow = self._overflow
        pending = self._overflow_pending
        inv = self._inv_slot
        floor = math.floor
        if pending:
            # Fold the unsorted batch into the sorted tier.  Timsort is
            # adaptive: the existing descending run plus a short batch
            # re-sorts in near-linear time.
            overflow.extend(pending)
            pending.clear()
            overflow.sort(reverse=True)
        # Drop slot-heap heads whose buckets were already consumed
        # (defensive: the serve path removes both together).
        while slot_heap and slot_heap[0] not in buckets:
            heapq.heappop(slot_heap)
        if overflow:
            try:
                head_slot = floor(overflow[-1][0] * inv)
            except (OverflowError, ValueError):
                head_slot = _FAR_SLOT
            start = min(slot_heap[0], head_slot) if slot_heap else head_slot
        elif slot_heap:
            start = slot_heap[0]
        else:
            return False
        end = start + self._window  # exclusive
        # Drain due overflow entries: binary-search the descending tier
        # for the first entry with slot < end, slice the tail off.  The
        # slice is already descending-sorted — exactly the cursor order.
        collect: list[tuple] = []
        if overflow:
            lo, hi = 0, len(overflow)
            while lo < hi:
                mid = (lo + hi) // 2
                try:
                    slot = floor(overflow[mid][0] * inv)
                except (OverflowError, ValueError):
                    slot = _FAR_SLOT
                if slot >= end:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(overflow):
                collect = overflow[lo:]
                del overflow[lo:]
        sorted_prefix = len(collect)
        while slot_heap and slot_heap[0] < end:
            bucket = buckets.pop(heapq.heappop(slot_heap), None)
            if bucket is not None:
                collect.extend(bucket)
        if len(collect) > sorted_prefix:
            collect.sort(reverse=True)
        self._cursor = collect
        self._cursor_hi = end - 1
        self._base_slot = start
        return True


# Imported late to avoid a cycle: scheduler.py exposes the factory that
# builds this class and owns the shared auto-compact policy.
from repro.sim.scheduler import should_compact  # noqa: E402
