"""The pending-event set: a binary heap with lazy deletion."""

from __future__ import annotations

import heapq

from repro.sim.event import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``.

    Cancelled events stay in the heap and are skipped on pop — O(1)
    cancellation at the cost of occasional dead entries, the standard
    lazy-deletion trade-off.  :meth:`compact` can be called to purge dead
    entries if a workload cancels heavily (the MAC layer does when frames
    are suppressed).

    Invariant: ``len(self)`` always equals the number of non-cancelled
    events currently in the heap (see :meth:`live_heap_count`).  All
    bookkeeping that could break it is funnelled through :meth:`cancel`,
    which refuses events that are not live heap entries — in particular
    events that already fired (popped events are marked via
    :meth:`Event.mark_fired`, so a cancel-after-fire cannot drive the
    live count negative and stop a run while live events remain).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        """Insert an event.

        Raises
        ------
        ValueError
            If the event already belongs to a queue (double-push would
            double-count the live total).
        """
        if event.owner is not None:
            raise ValueError(f"{event!r} is already queued")
        event.owner = self
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event, marking it fired.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                event.mark_fired()
                return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float:
        """Timestamp of the earliest live event without removing it.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._discard_dead_head()
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0].time

    def cancel(self, event: Event) -> bool:
        """Cancel *event* if it is still a live entry of this queue.

        Returns ``True`` when the event was live and is now cancelled;
        ``False`` when there was nothing to do (already cancelled,
        already fired, or never pushed to *this* queue).  This is the
        only path that may decrement the live count for a cancellation,
        so the count cannot drift.
        """
        if event.cancelled or event.fired or event.owner is not self:
            return False
        event.cancel()
        self._live -= 1
        return True

    def compact(self) -> None:
        """Drop all cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        # Dead entries carried no live count; the invariant is untouched,
        # but re-derive defensively so a prior external miscount heals.
        self._live = len(self._heap)

    def clear(self) -> None:
        """Remove everything, resetting all cancellation bookkeeping.

        Discarded events are marked cancelled so a stale handle passed to
        :meth:`cancel` afterwards is refused instead of driving the live
        count negative.
        """
        for event in self._heap:
            event.cancel()
        self._heap.clear()
        self._live = 0

    def live_heap_count(self) -> int:
        """O(n) count of non-cancelled heap entries (invariant check)."""
        return sum(1 for e in self._heap if not e.cancelled)

    def _discard_dead_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
