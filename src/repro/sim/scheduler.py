"""The pending-event set: heap and slot-wheel schedulers, one contract.

Two interchangeable implementations share the ``(time, priority, seq)``
total order and the live-count/cancel invariants:

* :class:`EventQueue` — the original binary heap with lazy deletion,
  kept as the reference arm (``Simulator(scheduler="heap")``);
* :class:`~repro.sim.wheel.SlotWheelQueue` — the calendar queue keyed
  on the MAC slot grid, the default (see :mod:`repro.sim.wheel`).

:func:`make_event_queue` is the single construction point, and
:func:`should_compact` the shared auto-compaction policy: a workload
that cancels heavily (the MAC layer does when frames are suppressed,
the protocol's coverage watchdog used to) triggers a rebuild once dead
entries outnumber live ones 2:1.
"""

from __future__ import annotations

import heapq

from repro.errors import ConfigurationError
from repro.sim.event import Event

#: Auto-compact when dead entries exceed this multiple of live entries …
COMPACT_DEAD_FACTOR = 2
#: … but never below this many dead entries (rebuilding a tiny queue
#: costs more than carrying a handful of corpses).
COMPACT_MIN_DEAD = 64


def should_compact(live: int, dead: int) -> bool:
    """The shared lazy-deletion pressure valve, pinned by tests."""
    return dead >= COMPACT_MIN_DEAD and dead > COMPACT_DEAD_FACTOR * live


def make_event_queue(scheduler: str = "wheel", *, slot_s: float | None = None):
    """Build the pending-event set the :class:`~repro.sim.Simulator` runs on.

    Parameters
    ----------
    scheduler:
        ``"wheel"`` (default) — the slot-wheel calendar queue;
        ``"heap"`` — the legacy binary heap, kept as the bit-identical
        reference arm for A/B pins and equivalence tests.
    slot_s:
        Bucket width for the wheel (default: the DSSS MAC slot).
        Ignored by the heap.
    """
    if scheduler == "wheel":
        from repro.sim.wheel import DEFAULT_SLOT_S, SlotWheelQueue

        return SlotWheelQueue(slot_s if slot_s is not None else DEFAULT_SLOT_S)
    if scheduler == "heap":
        return EventQueue()
    raise ConfigurationError(
        f"unknown scheduler {scheduler!r}; choose 'wheel' or 'heap'"
    )


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``.

    Cancelled events stay in the heap and are skipped on pop — O(1)
    cancellation at the cost of occasional dead entries, the standard
    lazy-deletion trade-off.  :meth:`cancel` auto-compacts once dead
    entries pile up past the :func:`should_compact` threshold; workloads
    that cancel heavily (the MAC layer does when frames are suppressed)
    may also call :meth:`compact` explicitly.

    Invariant: ``len(self)`` always equals the number of non-cancelled
    events currently in the heap (see :meth:`live_heap_count`).  All
    bookkeeping that could break it is funnelled through :meth:`cancel`,
    which refuses events that are not live heap entries — in particular
    events that already fired (popped events are marked via
    :meth:`Event.mark_fired`, so a cancel-after-fire cannot drive the
    live count negative and stop a run while live events remain).
    """

    __slots__ = ("_heap", "_live",)

    kind = "heap"

    def __init__(self) -> None:
        # Entries are (time, priority, seq, event) tuples: heap sifts
        # compare at C speed, and seq is globally unique so a comparison
        # never reaches the event element.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def physical_size(self) -> int:
        """Entries currently held, live and (lazily deleted) dead alike."""
        return len(self._heap)

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        """Insert an event.

        Raises
        ------
        ValueError
            If the event already belongs to a queue (double-push would
            double-count the live total).
        """
        if event.owner is not None:
            raise ValueError(f"{event!r} is already queued")
        event.owner = self
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        self._live += 1

    def push_new(self, time, priority, seq, callback, args) -> Event:
        """Create an event and insert it — the fused scheduling hot path.

        Same contract as :meth:`SlotWheelQueue.push_new`.
        """
        event = Event(time, priority, seq, callback, args)
        event.owner = self
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event, marking it fired.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if not event._cancelled:
                self._live -= 1
                event._fired = True
                return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float:
        """Timestamp of the earliest live event without removing it.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._discard_dead_head()
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def serve(self, until: float | None = None):
        """Yield live events in order, marking each fired — the drain loop.

        Same contract as :meth:`SlotWheelQueue.serve`: one generator
        resumption per event, stopping (without consuming) at the first
        event past *until* when given.  The heap is re-read after every
        yield — a consumer callback may swap it out via an auto-compact.
        """
        heappop = heapq.heappop
        if until is None:
            while True:
                heap = self._heap
                if not heap:
                    return
                event = heappop(heap)[3]
                if event._cancelled:
                    continue
                self._live -= 1
                event._fired = True
                yield event
        else:
            while True:
                heap = self._heap
                if not heap:
                    return
                entry = heap[0]
                event = entry[3]
                if event._cancelled:
                    heappop(heap)
                    continue
                if entry[0] > until:
                    return
                heappop(heap)
                self._live -= 1
                event._fired = True
                yield event

    def cancel(self, event: Event) -> bool:
        """Cancel *event* if it is still a live entry of this queue.

        Returns ``True`` when the event was live and is now cancelled;
        ``False`` when there was nothing to do (already cancelled,
        already fired, or never pushed to *this* queue).  This is the
        only path that may decrement the live count for a cancellation,
        so the count cannot drift.
        """
        if event.cancelled or event.fired or event.owner is not self:
            return False
        event.cancel()
        self._live -= 1
        if should_compact(self._live, len(self._heap) - self._live):
            self.compact()
        return True

    def compact(self) -> None:
        """Drop all cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap if not e[3]._cancelled]
        heapq.heapify(self._heap)
        # Dead entries carried no live count; the invariant is untouched,
        # but re-derive defensively so a prior external miscount heals.
        self._live = len(self._heap)

    def clear(self) -> None:
        """Remove everything, resetting all cancellation bookkeeping.

        Discarded events are marked cancelled so a stale handle passed to
        :meth:`cancel` afterwards is refused instead of driving the live
        count negative.
        """
        for entry in self._heap:
            entry[3].cancel()
        self._heap.clear()
        self._live = 0

    def live_heap_count(self) -> int:
        """O(n) count of non-cancelled heap entries (invariant check)."""
        return sum(1 for e in self._heap if not e[3]._cancelled)

    def _discard_dead_head(self) -> None:
        while self._heap and self._heap[0][3]._cancelled:
            heapq.heappop(self._heap)
