"""The pending-event set: a binary heap with lazy deletion."""

from __future__ import annotations

import heapq

from repro.sim.event import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, priority, seq)``.

    Cancelled events stay in the heap and are skipped on pop — O(1)
    cancellation at the cost of occasional dead entries, the standard
    lazy-deletion trade-off.  :meth:`compact` can be called to purge dead
    entries if a workload cancels heavily (the MAC layer does when frames
    are suppressed).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(self._heap, event)
        self._live += 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> float:
        """Timestamp of the earliest live event without removing it.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._discard_dead_head()
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Inform the queue that one of its events was cancelled.

        Called by the simulator so :meth:`__len__` stays accurate.
        """
        self._live -= 1

    def compact(self) -> None:
        """Drop all cancelled entries and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)

    def clear(self) -> None:
        """Remove everything."""
        self._heap.clear()
        self._live = 0

    def _discard_dead_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
