"""The simulation event loop and clock."""

from __future__ import annotations

from collections.abc import Callable, Generator
from time import perf_counter
from typing import Any

from repro import obs
from repro.errors import SimulationError
from repro.obs.probes import kernel_probes
from repro.sim.event import Event, Priority
from repro.sim.process import Process
from repro.sim.random import RandomStreams
from repro.sim.scheduler import EventQueue


class Simulator:
    """Discrete-event simulator: a clock plus an ordered event queue.

    Parameters
    ----------
    seed:
        Root seed for :attr:`streams`.  ``None`` draws fresh OS entropy
        (still recorded, so runs can be replayed).
    start_time:
        Initial clock value in seconds.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, *, seed: int | None = None, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        # Observability is captured at construction (enable the registry /
        # install the tracer *before* building the simulation).  With both
        # off, the only per-event cost left is one attribute load plus an
        # ``is``-test in step() — the ≤2% budget bench_obs.py pins.
        self._obs = kernel_probes()
        self._tracer = obs.tracer()
        self._instrumented = self._obs is not None or self._tracer is not None
        self._slot_time: float | None = None

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events awaiting execution."""
        return len(self._queue)

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: Priority = Priority.NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* to run *delay* seconds from now.

        Raises
        ------
        SimulationError
            If *delay* is negative.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule {delay!r} s into the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: Priority = Priority.NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        self._queue.push(event)
        if self._obs is not None:
            self._obs.pushed.value += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Idempotent.

        Cancelling an event that already fired is a no-op: the live-event
        count must only be decremented for events still in the queue, or
        :attr:`pending_events` would go negative and :meth:`run` could
        stop while live events remain.
        """
        if self._queue.cancel(event) and self._obs is not None:
            self._obs.cancelled.value += 1

    # -- processes ----------------------------------------------------------------

    def process(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Launch a generator as a cooperative process (see :mod:`repro.sim.process`)."""
        return Process(self, generator, name)

    # -- execution ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event.

        Returns
        -------
        bool
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        if self._instrumented:
            self._step_observed(event)
        else:
            event.callback(*event.args)
        return True

    def _step_observed(self, event: Event) -> None:
        """step() with metrics/tracing on: slot spans, cost centers."""
        tracer = self._tracer
        if tracer is not None and event.time != self._slot_time:
            # A new simulated instant: close the previous slot span and
            # open the next, so the Perfetto timeline shows how much wall
            # clock each simulated instant costs.
            if self._slot_time is not None:
                tracer.end()
            tracer.begin("slot", cat="kernel", sim_time=event.time)
            self._slot_time = event.time
        if self._obs is None:
            event.callback(*event.args)
            return
        start = perf_counter()
        event.callback(*event.args)
        self._obs.record_fire(
            event.callback, perf_counter() - start, len(self._queue)
        )

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or the clock passes *until*.

        When *until* is given, the clock is advanced to exactly *until* even
        if the last event fires earlier — mirroring ns-3's ``Stop`` time —
        so back-to-back ``run(until=...)`` calls tile time contiguously.

        Raises
        ------
        SimulationError
            If called re-entrantly from within an event callback.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                if until is not None and self._queue.peek_time() > until:
                    break
                self.step()
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
            if self._slot_time is not None:
                self._tracer.end()
                self._slot_time = None

    def stop(self) -> None:
        """Stop :meth:`run` after the current event callback returns."""
        self._stopped = True
