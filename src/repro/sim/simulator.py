"""The simulation event loop and clock."""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.errors import SimulationError
from repro.sim.event import Event, Priority
from repro.sim.process import Process
from repro.sim.random import RandomStreams
from repro.sim.scheduler import EventQueue


class Simulator:
    """Discrete-event simulator: a clock plus an ordered event queue.

    Parameters
    ----------
    seed:
        Root seed for :attr:`streams`.  ``None`` draws fresh OS entropy
        (still recorded, so runs can be replayed).
    start_time:
        Initial clock value in seconds.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, *, seed: int | None = None, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events awaiting execution."""
        return len(self._queue)

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: Priority = Priority.NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* to run *delay* seconds from now.

        Raises
        ------
        SimulationError
            If *delay* is negative.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule {delay!r} s into the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: Priority = Priority.NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        self._queue.push(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Idempotent.

        Cancelling an event that already fired is a no-op: the live-event
        count must only be decremented for events still in the queue, or
        :attr:`pending_events` would go negative and :meth:`run` could
        stop while live events remain.
        """
        self._queue.cancel(event)

    # -- processes ----------------------------------------------------------------

    def process(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Launch a generator as a cooperative process (see :mod:`repro.sim.process`)."""
        return Process(self, generator, name)

    # -- execution ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event.

        Returns
        -------
        bool
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or the clock passes *until*.

        When *until* is given, the clock is advanced to exactly *until* even
        if the last event fires earlier — mirroring ns-3's ``Stop`` time —
        so back-to-back ``run(until=...)`` calls tile time contiguously.

        Raises
        ------
        SimulationError
            If called re-entrantly from within an event callback.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            while self._queue and not self._stopped:
                if until is not None and self._queue.peek_time() > until:
                    break
                self.step()
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop :meth:`run` after the current event callback returns."""
        self._stopped = True
