"""The simulation event loop and clock."""

from __future__ import annotations

import gc
from collections.abc import Callable, Generator
from contextlib import contextmanager
from time import perf_counter
from typing import Any

from repro import obs
from repro.errors import SimulationError
from repro.obs.probes import kernel_probes
from repro.sim.event import Event, Priority
from repro.sim.process import Process
from repro.sim.random import RandomStreams
from repro.sim.scheduler import make_event_queue

# Depth of nested gc_paused() scopes, and whether the collector was
# enabled when the outermost scope entered (so nesting restores exactly
# the caller's state, once).
_gc_pause_depth = 0
_gc_was_enabled = False


@contextmanager
def gc_paused():
    """Quiesce cyclic garbage collection while a pending set churns.

    CPython's generational collector re-scans every tracked object each
    collection; a simulation holding ~10⁵ pending events triggers full
    collections that re-walk the entire (live) pending set and roughly
    halve kernel throughput — pure overhead, since pending events are
    reachable by construction.  Reference counting still reclaims the
    acyclic event/frame churn immediately; cycles are swept once the
    outermost scope exits.

    :meth:`Simulator.run` wraps its event loop in this automatically,
    which covers simulations that schedule from callbacks (all the
    scenario builders).  Wrap bulk *pre-loading* phases — scheduling a
    large batch before calling ``run()`` — explicitly:

    >>> sim = Simulator(seed=1)
    >>> with gc_paused():
    ...     for i in range(3):
    ...         _ = sim.schedule(float(i), lambda: None)
    ...     sim.run()

    Scopes nest (depth-counted); the collector is restored to its
    original state when the outermost scope exits, even on error.
    """
    global _gc_pause_depth, _gc_was_enabled
    if _gc_pause_depth == 0:
        _gc_was_enabled = gc.isenabled()
        if _gc_was_enabled:
            gc.disable()
    _gc_pause_depth += 1
    try:
        yield
    finally:
        _gc_pause_depth -= 1
        if _gc_pause_depth == 0 and _gc_was_enabled:
            gc.enable()


class Simulator:
    """Discrete-event simulator: a clock plus an ordered event queue.

    Parameters
    ----------
    seed:
        Root seed for :attr:`streams`.  ``None`` draws fresh OS entropy
        (still recorded, so runs can be replayed).
    start_time:
        Initial clock value in seconds.
    scheduler:
        Pending-event structure: ``"wheel"`` (default) runs the slot-wheel
        calendar queue (:mod:`repro.sim.wheel`); ``"heap"`` the legacy
        binary heap.  Pop order is identical — pinned by the Hypothesis
        equivalence suite — so this is purely a throughput knob, kept so
        A/B arms can cross-check the wheel against the reference.
    wheel_slot_s:
        Bucket width for the wheel scheduler (default: the DSSS MAC
        slot); ignored by the heap.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = (
        "_now", "_queue", "_push_new", "_seq", "_running", "_stopped",
        "streams", "_obs", "_tracer", "_instrumented", "_slot_time",
        "_overflow_reported", "__dict__",
    )

    def __init__(
        self,
        *,
        seed: int | None = None,
        start_time: float = 0.0,
        scheduler: str = "wheel",
        wheel_slot_s: float | None = None,
    ) -> None:
        self._now = start_time
        self._queue = make_event_queue(scheduler, slot_s=wheel_slot_s)
        # Bound once: scheduling is the hottest call site in the kernel.
        self._push_new = self._queue.push_new
        self._seq = 0
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        # Observability is captured at construction (enable the registry /
        # install the tracer *before* building the simulation).  With both
        # off, the only per-event cost left is one attribute load plus an
        # ``is``-test in step() — the ≤2% budget bench_obs.py pins.
        self._obs = kernel_probes()
        self._tracer = obs.tracer()
        self._instrumented = self._obs is not None or self._tracer is not None
        self._slot_time: float | None = None
        # Overflow pushes already exported to the registry (the wheel
        # counts unconditionally; the delta is copied out per fire).
        self._overflow_reported = 0

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events awaiting execution."""
        return len(self._queue)

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: Priority = Priority.NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* to run *delay* seconds from now.

        Raises
        ------
        SimulationError
            If *delay* is negative.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule {delay!r} s into the past")
        # schedule_at inlined (minus its past-check, which a non-negative
        # delay satisfies by construction): this is the kernel's hottest
        # call site and the extra method hop costs ~10% of bench_kernel's
        # event throughput.
        seq = self._seq
        self._seq = seq + 1
        event = self._push_new(self._now + delay, priority, seq, callback, args)
        if self._obs is not None:
            self._obs.pushed.value += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: Priority = Priority.NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = self._push_new(time, priority, seq, callback, args)
        if self._obs is not None:
            self._obs.pushed.value += 1
        return event

    def at_instant_end(
        self, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Run *callback* after every already-queued event of this instant.

        A delay-0 event at :data:`Priority.LATE` — the drain phase of the
        current instant (wheel slot or heap timestamp): every URGENT and
        NORMAL event at the same time fires first, and no NORMAL event at
        this time can be observed after it (callbacks only schedule at
        equal-or-later times with equal-or-lower priority).  The medium's
        cross-broadcast coalescer uses this as its slot-boundary drain
        hook; it is scheduler-agnostic (wheel and heap order identically
        on the ``(time, priority, seq)`` key).
        """
        return self.schedule(0.0, callback, *args, priority=Priority.LATE)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Idempotent.

        Cancelling an event that already fired is a no-op: the live-event
        count must only be decremented for events still in the queue, or
        :attr:`pending_events` would go negative and :meth:`run` could
        stop while live events remain.
        """
        if self._queue.cancel(event) and self._obs is not None:
            self._obs.cancelled.value += 1

    # -- processes ----------------------------------------------------------------

    def process(self, generator: Generator[Any, Any, Any], name: str = "") -> Process:
        """Launch a generator as a cooperative process (see :mod:`repro.sim.process`)."""
        return Process(self, generator, name)

    # -- execution ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event.

        Returns
        -------
        bool
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        if self._instrumented:
            self._step_observed(event)
        else:
            event.callback(*event.args)
        return True

    def _step_observed(self, event: Event) -> None:
        """step() with metrics/tracing on: slot spans, cost centers."""
        tracer = self._tracer
        if tracer is not None and event.time != self._slot_time:
            # A new simulated instant: close the previous slot span and
            # open the next, so the Perfetto timeline shows how much wall
            # clock each simulated instant costs.
            if self._slot_time is not None:
                tracer.end()
            tracer.begin("slot", cat="kernel", sim_time=event.time)
            self._slot_time = event.time
        if self._obs is None:
            event.callback(*event.args)
            return
        start = perf_counter()
        event.callback(*event.args)
        queue = self._queue
        self._obs.record_fire(
            event.callback, perf_counter() - start, len(queue)
        )
        if queue.kind == "wheel":
            self._obs.wheel_slots.set(queue.occupied_slots())
            self._obs.wheel_overflow.set(queue.overflow_len())
            delta = queue.overflow_pushes - self._overflow_reported
            if delta:
                self._obs.overflow_pushed.value += delta
                self._overflow_reported = queue.overflow_pushes

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or the clock passes *until*.

        When *until* is given, the clock is advanced to exactly *until* even
        if the last event fires earlier — mirroring ns-3's ``Stop`` time —
        so back-to-back ``run(until=...)`` calls tile time contiguously.

        Cyclic garbage collection is paused for the duration of the loop
        via :func:`gc_paused` (and restored on exit, even on error); see
        that context manager for the rationale and for covering bulk
        pre-loading phases as well.

        Raises
        ------
        SimulationError
            If called re-entrantly from within an event callback.
        """
        global _gc_pause_depth, _gc_was_enabled
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        # gc_paused() inlined (enter): the context-manager protocol costs
        # matter for scenario code calling run(until=...) in a tight loop.
        if _gc_pause_depth == 0:
            _gc_was_enabled = gc.isenabled()
            if _gc_was_enabled:
                gc.disable()
        _gc_pause_depth += 1
        try:
            queue = self._queue
            if self._instrumented:
                while queue and not self._stopped:
                    if until is not None and queue.peek_time() > until:
                        break
                    self.step()
            else:
                # Uninstrumented drain: the queue's serve() generator
                # replaces a peek_time/pop method pair per event with one
                # generator resumption (bench_kernel pins the resulting
                # events/s; bench_obs pins that instrumentation guards
                # stay off this loop).
                for event in queue.serve(until):
                    self._now = event.time
                    event.callback(*event.args)
                    if self._stopped:
                        break
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
            _gc_pause_depth -= 1
            if _gc_pause_depth == 0 and _gc_was_enabled:
                gc.enable()
            if self._slot_time is not None:
                self._tracer.end()
                self._slot_time = None

    def stop(self) -> None:
        """Stop :meth:`run` after the current event callback returns."""
        self._stopped = True
