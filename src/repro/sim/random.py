"""Named, independently seeded random streams.

Every stochastic component (channel fading, shadowing, MAC back-off, driver
behaviour, …) draws from its own stream obtained by name, so

* results are reproducible from a single root seed;
* changing how many draws one component makes never perturbs another
  component's sequence (no accidental coupling between e.g. the MAC and the
  channel).

Streams are spawned with :class:`numpy.random.SeedSequence`, which
guarantees statistical independence between children.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """A tree of named :class:`numpy.random.Generator` instances.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> channel_rng = streams.get("channel")
    >>> mac_rng = streams.get("mac")
    >>> channel_rng is streams.get("channel")   # cached per name
    True
    """

    __slots__ = ("_seed_sequence", "_generators", "_children",)

    def __init__(self, seed: int | None = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._generators: dict[str, np.random.Generator] = {}
        self._children: dict[str, RandomStreams] = {}

    @property
    def entropy(self) -> int | list[int] | None:
        """The root entropy this tree was created from."""
        return self._seed_sequence.entropy

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        The generator for a given ``(root seed, name)`` pair is always the
        same, regardless of creation order, because children are derived by
        hashing the name into the spawn key.
        """
        if name not in self._generators:
            child_seq = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=(*self._seed_sequence.spawn_key, _stable_hash(name)),
            )
            self._generators[name] = np.random.default_rng(child_seq)
        return self._generators[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child stream tree, e.g. one per simulation round.

        Like :meth:`get`, forking is order-independent and deterministic.
        """
        if name not in self._children:
            child = RandomStreams.__new__(RandomStreams)
            child._seed_sequence = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=(
                    *self._seed_sequence.spawn_key,
                    _stable_hash(name),
                    0x5EED,
                ),
            )
            child._generators = {}
            child._children = {}
            self._children[name] = child
        return self._children[name]


def _stable_hash(name: str) -> int:
    """A deterministic 64-bit hash of *name* (Python's ``hash`` is salted)."""
    value = 0xCBF29CE484222325  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
