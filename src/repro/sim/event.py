"""Scheduled events and their ordering."""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import Any


class Priority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values run first.  The MAC layer uses :attr:`URGENT` for
    frame-end bookkeeping so receivers observe a consistent medium state
    before application callbacks run.
    """

    URGENT = 0
    NORMAL = 1
    LATE = 2


class Event:
    """A callback scheduled at a simulated instant.

    Events are ordered by ``(time, priority, sequence)`` where *sequence* is
    a monotonically increasing insertion counter, making execution order
    fully deterministic.

    Events are created through :meth:`repro.sim.Simulator.schedule` — not
    directly — and may be cancelled via :meth:`cancel` (cancellation is
    O(1); the queue discards dead entries lazily).
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: Priority,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        """The deterministic heap ordering key."""
        return (self.time, int(self.priority), self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"
