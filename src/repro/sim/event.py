"""Scheduled events and their ordering."""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import Any


class Priority(enum.IntEnum):
    """Tie-break priority for events scheduled at the same instant.

    Lower values run first.  The MAC layer uses :attr:`URGENT` for
    frame-end bookkeeping so receivers observe a consistent medium state
    before application callbacks run.
    """

    URGENT = 0
    NORMAL = 1
    LATE = 2


class Event:
    """A callback scheduled at a simulated instant.

    Events are ordered by ``(time, priority, sequence)`` where *sequence* is
    a monotonically increasing insertion counter, making execution order
    fully deterministic.

    Events are created through :meth:`repro.sim.Simulator.schedule` — not
    directly — and may be cancelled via :meth:`cancel` (cancellation is
    O(1); the queue discards dead entries lazily).
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args",
        "_cancelled", "_fired", "owner",
    )

    def __init__(
        self,
        time: float,
        priority: Priority,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        # Stored as-is: IntEnum inherits int's C-level comparisons, so
        # converting here would only slow down construction — the
        # hottest allocation in the kernel.  Note the event itself holds
        # no ordering tuple: the queues build one ``(time, priority,
        # seq, event)`` entry per insertion instead, keeping the
        # GC-tracked allocation count per scheduled event at two (the
        # cyclic collector re-scans every pending entry each collection,
        # which at 10⁵ pending events is a first-order cost).
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        #: The EventQueue holding this event (stamped by ``push``), so a
        #: queue can refuse to adjust its live count for foreign handles.
        self.owner: object | None = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event has already left the queue for execution."""
        return self._fired

    def mark_fired(self) -> None:
        """Record that the queue handed this event to the executor."""
        self._fired = True

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        Cancelling an event that has already fired is a no-op: the
        callback ran (or is running) and there is nothing left to stop.
        Callers holding stale event handles — a retransmit timer whose
        frame just went out, say — can therefore cancel unconditionally.
        """
        if not self._fired:
            self._cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        """The deterministic queue ordering key."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"
